"""Benchmark: repro-lint full-repository analysis cost.

The interprocedural engine (call graph + summary fixpoint, PR 10) made the
linter a whole-program analysis; this benchmark keeps its cost honest by
timing each phase over the real repository:

* **parse** — reading and AST-parsing every analyzed module,
* **graph** — building the import/call graph over the parsed project,
* **summaries** — the dataflow summary fixpoint over the call graph,
* **full** — an end-to-end ``analyze_paths`` run with every rule active
  (which repeats parse/graph/summaries internally — it is the number CI's
  static-analysis job actually pays).

Besides asserting a generous wall-time ceiling, the run writes a
machine-readable ``BENCH_analysis.json`` at the repository root (phase
timings plus call-graph size) so the repo carries a perf trajectory for the
analyzer alongside the kernel benchmarks.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_analysis.py

or through pytest (only collected when addressed explicitly)::

    python -m pytest benchmarks/bench_analysis.py -q
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.analysis.core import (
    ModuleContext,
    Project,
    analyze_paths,
    iter_python_files,
)
from repro.analysis.dataflow import compute_summaries
from repro.analysis.graph import ProjectGraph
from repro.analysis.manifest import InvariantManifest

REPO_ROOT = Path(__file__).resolve().parent.parent
TRAJECTORY_FILE = REPO_ROOT / "BENCH_analysis.json"

ANALYZED_PATHS = ("src", "tests", "benchmarks")

#: Generous ceiling for one full analysis run: the gate is "stays usable in
#: CI and pre-commit", not a micro-benchmark — flag only order-of-magnitude
#: regressions (the full run takes ~5 s on a laptop-class machine).
FULL_RUN_CEILING_SECONDS = 120.0


def run_benchmark() -> dict:
    manifest = InvariantManifest.load()

    started = time.perf_counter()
    modules = []
    for path in iter_python_files(REPO_ROOT, list(ANALYZED_PATHS)):
        modules.append(ModuleContext(REPO_ROOT, path, path.read_text()))
    parse_seconds = time.perf_counter() - started

    project = Project(REPO_ROOT, modules, manifest)
    started = time.perf_counter()
    graph = ProjectGraph.build(project)
    graph_seconds = time.perf_counter() - started

    started = time.perf_counter()
    summaries = compute_summaries(graph, manifest)
    summary_seconds = time.perf_counter() - started

    started = time.perf_counter()
    report = analyze_paths(ANALYZED_PATHS, root=REPO_ROOT, manifest=manifest)
    full_seconds = time.perf_counter() - started

    return {
        "benchmark": "analysis",
        "analyzed_paths": list(ANALYZED_PATHS),
        "analyzed_files": report.analyzed_files,
        "phases": {
            "parse_seconds": round(parse_seconds, 3),
            "graph_seconds": round(graph_seconds, 3),
            "summaries_seconds": round(summary_seconds, 3),
            "full_run_seconds": round(full_seconds, 3),
        },
        "call_graph": graph.stats(),
        "summarized_functions": len(summaries),
    }


def _write_trajectory(payload: dict) -> None:
    TRAJECTORY_FILE.write_text(json.dumps(payload, indent=2) + "\n")


class TestAnalysisBenchmark:
    def test_full_repo_analysis_within_ceiling(self):
        payload = run_benchmark()
        _write_trajectory(payload)
        assert payload["phases"]["full_run_seconds"] < FULL_RUN_CEILING_SECONDS
        # The graph must actually cover the repository: a collapse to a
        # near-empty graph would silently disable the interprocedural rules.
        stats = payload["call_graph"]
        assert stats["functions"] > 500
        assert stats["resolved_call_sites"] > 500
        assert stats["call_sites"] >= stats["resolved_call_sites"]


if __name__ == "__main__":
    result = run_benchmark()
    _write_trajectory(result)
    print(json.dumps(result, indent=2))
    print(f"wrote {TRAJECTORY_FILE}")
