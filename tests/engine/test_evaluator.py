"""Tests for the Method Evaluator (Evaluation mode)."""

import pytest

from repro.engine import (
    ExperimentResources,
    MethodEvaluator,
    relational_config,
    rt_config,
    transaction_config,
)


@pytest.fixture(scope="module")
def rt(request):
    from repro.datasets import generate_rt_dataset

    return generate_rt_dataset(n_records=100, n_items=18, seed=23)


class TestEvaluationReport:
    def test_relational_only_report(self, rt):
        evaluator = MethodEvaluator(rt)
        report = evaluator.evaluate(relational_config("cluster", k=4))
        assert report.are >= 0
        assert "relational_gcp" in report.utility
        assert "discernibility" in report.utility
        assert report.privacy["k_anonymous"] is True
        assert report.privacy["min_class_size"] >= 4
        assert "transaction_ul" not in report.utility
        assert report.generalized_value_frequencies  # Figure 3(c) series
        assert report.runtime_seconds > 0

    def test_transaction_only_report(self, rt):
        evaluator = MethodEvaluator(rt)
        report = evaluator.evaluate(transaction_config("apriori", k=4, m=2))
        assert "transaction_ul" in report.utility
        assert "item_frequency_error" in report.utility
        assert report.privacy["km_anonymous"] is True
        assert report.item_frequency_errors  # Figure 3(d) series
        assert not report.generalized_value_frequencies

    def test_rt_report_checks_k_km(self, rt):
        evaluator = MethodEvaluator(rt)
        report = evaluator.evaluate(
            rt_config("cluster", "apriori", bounding="tmerger", k=4, m=2, delta=0.8)
        )
        assert report.privacy["k_km_anonymous"] is True
        assert "relational_gcp" in report.utility
        assert "transaction_ul" in report.utility

    def test_privacy_verification_can_be_skipped(self, rt):
        evaluator = MethodEvaluator(rt, verify_privacy=False)
        report = evaluator.evaluate(transaction_config("apriori", k=4, m=1))
        assert report.privacy["km_anonymous"] is None

    def test_km_check_skipped_for_large_universes(self, rt):
        evaluator = MethodEvaluator(rt, km_check_limit=1)
        report = evaluator.evaluate(transaction_config("apriori", k=4, m=1))
        assert report.privacy["km_anonymous"] is None

    def test_summary_row_is_flat(self, rt):
        evaluator = MethodEvaluator(rt)
        report = evaluator.evaluate(relational_config("cluster", k=4, label="CL"))
        summary = report.summary()
        assert summary["configuration"] == "CL"
        assert "utility_relational_gcp" in summary
        assert "privacy_k_anonymous" in summary

    def test_resources_are_reused_across_evaluations(self, rt):
        resources = ExperimentResources.prepare(rt, transaction_config("apriori", k=4))
        evaluator = MethodEvaluator(rt, resources)
        first = evaluator.evaluate(transaction_config("apriori", k=4, m=1))
        second = evaluator.evaluate(transaction_config("apriori", k=6, m=1))
        assert resources.workload is not None
        assert first.are <= second.are + 1e9  # both computed with the same workload


class TestUniverseAwareness:
    def test_prepare_captures_domain_snapshot(self, rt):
        resources = ExperimentResources.prepare(rt, transaction_config("apriori", k=4))
        assert resources.domains is not None
        assert resources.domains.universe_for("Items") == frozenset(
            rt.item_universe("Items")
        )
        assert "domains" in resources.summary()

    def test_evaluator_supports_seed_mode(self, rt):
        resources = ExperimentResources.prepare(rt, transaction_config("coat", k=4))
        original = MethodEvaluator(rt, resources).evaluate(
            transaction_config("coat", k=20)
        )
        seed = MethodEvaluator(rt, resources, universe_mode="seed").evaluate(
            transaction_config("coat", k=20)
        )
        assert original.are is not None and seed.are is not None
        # Same workload, same output; only the label resolution differs.
        assert original.are <= seed.are + 1e-9

    def test_unqueryable_dataset_reports_are_none(self):
        from repro.datasets import Attribute, Dataset, Schema
        from repro.engine import relational_config

        schema = Schema([Attribute.categorical("A", quasi_identifier=False)])
        dataset = Dataset(schema, [{"A": value} for value in "xyxyxy"])
        evaluator = MethodEvaluator(dataset, ExperimentResources())
        report = evaluator.evaluate(
            relational_config("cluster", k=2, relational_attributes=["A"])
        )
        assert report.are is None
        assert evaluator.resources.workload is None
        assert report.summary()["are"] is None
