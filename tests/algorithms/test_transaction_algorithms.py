"""Tests for the five transaction anonymization algorithms.

The hierarchy-based algorithms (Apriori, LRA, VPA) must produce
k^m-anonymous outputs; the constraint-based ones (COAT, PCTA) must satisfy
their privacy policy.  All must preserve the number of records, leave other
attributes untouched and report runtime statistics.
"""

import pytest

from repro.algorithms.transaction import (
    AprioriAnonymizer,
    Coat,
    LraAnonymizer,
    Pcta,
    VpaAnonymizer,
)
from repro.datasets import generate_market_basket, generate_rt_dataset
from repro.exceptions import ConfigurationError
from repro.hierarchy import build_item_hierarchy
from repro.metrics import candidate_support, is_km_anonymous, utility_loss
from repro.policies import generate_policies, generate_privacy_policy


@pytest.fixture(scope="module")
def baskets():
    return generate_market_basket(n_records=250, n_items=24, seed=31)


@pytest.fixture(scope="module")
def item_hierarchy(baskets):
    return build_item_hierarchy(baskets.item_universe(), fanout=3)


class TestHierarchyBasedAlgorithms:
    @pytest.mark.parametrize("algorithm_class", [AprioriAnonymizer, LraAnonymizer, VpaAnonymizer])
    def test_output_is_km_anonymous(self, algorithm_class, baskets, item_hierarchy):
        algorithm = algorithm_class(k=4, m=2, hierarchy=item_hierarchy)
        result = algorithm.anonymize(baskets)
        assert len(result.dataset) == len(baskets)
        assert is_km_anonymous(
            result.dataset,
            k=4,
            m=2,
            hierarchy=item_hierarchy,
            universe=baskets.item_universe(),
        )

    @pytest.mark.parametrize("algorithm_class", [AprioriAnonymizer, LraAnonymizer, VpaAnonymizer])
    def test_reports_runtime_and_utility(self, algorithm_class, baskets, item_hierarchy):
        result = algorithm_class(k=3, m=2, hierarchy=item_hierarchy).anonymize(baskets)
        assert result.runtime_seconds > 0
        assert 0.0 <= result.statistics["utility_loss"] <= 1.0
        assert result.phase_seconds

    @pytest.mark.parametrize("algorithm_class", [AprioriAnonymizer, LraAnonymizer, VpaAnonymizer])
    def test_parameter_validation(self, algorithm_class, item_hierarchy):
        with pytest.raises(ConfigurationError):
            algorithm_class(k=1, m=2, hierarchy=item_hierarchy)
        with pytest.raises(ConfigurationError):
            algorithm_class(k=3, m=0, hierarchy=item_hierarchy)

    @pytest.mark.parametrize("algorithm_class", [AprioriAnonymizer, LraAnonymizer, VpaAnonymizer])
    def test_builds_hierarchy_when_missing(self, algorithm_class, baskets):
        result = algorithm_class(k=3, m=1).anonymize(baskets)
        assert len(result.dataset) == len(baskets)

    def test_stricter_privacy_costs_more_utility(self, baskets, item_hierarchy):
        loose = AprioriAnonymizer(k=2, m=1, hierarchy=item_hierarchy).anonymize(baskets)
        strict = AprioriAnonymizer(k=20, m=2, hierarchy=item_hierarchy).anonymize(baskets)
        assert (
            strict.statistics["utility_loss"]
            >= loose.statistics["utility_loss"] - 1e-9
        )

    def test_lra_local_recoding_not_worse_than_global(self, baskets, item_hierarchy):
        global_result = AprioriAnonymizer(k=6, m=2, hierarchy=item_hierarchy).anonymize(baskets)
        local_result = LraAnonymizer(k=6, m=2, hierarchy=item_hierarchy).anonymize(baskets)
        # Local recoding may keep popular items intact inside partitions, so it
        # should not lose substantially more utility than global recoding.
        assert (
            local_result.statistics["utility_loss"]
            <= global_result.statistics["utility_loss"] + 0.25
        )

    def test_vpa_respects_parts_parameter(self, baskets, item_hierarchy):
        result = VpaAnonymizer(k=3, m=2, hierarchy=item_hierarchy, n_parts=4).anonymize(baskets)
        assert result.statistics["parts"] == 4

    def test_rt_dataset_transaction_attribute_only_is_modified(self, item_hierarchy):
        rt = generate_rt_dataset(n_records=100, n_items=20, seed=3)
        hierarchy = build_item_hierarchy(rt.item_universe("Items"), fanout=3)
        result = AprioriAnonymizer(k=4, m=2, hierarchy=hierarchy).anonymize(rt)
        assert result.dataset.column("Age") == rt.column("Age")
        assert result.dataset.column("Education") == rt.column("Education")


class TestCoat:
    def test_satisfies_privacy_policy(self, baskets):
        privacy, utility = generate_policies(baskets, k=5, group_size=4)
        result = Coat(privacy, utility).anonymize(baskets)
        for constraint in privacy:
            support = candidate_support(result.dataset, constraint.items)
            assert support == 0 or support >= 5

    def test_respects_utility_policy_groups(self, baskets):
        privacy, utility = generate_policies(baskets, k=8, group_size=3)
        result = Coat(privacy, utility).anonymize(baskets)
        published_groups = {
            label
            for record in result.dataset
            for label in record["Items"]
            if label.startswith("(")
        }
        allowed_labels = {constraint.label for constraint in utility}
        assert published_groups <= allowed_labels

    def test_zero_support_constraints_are_ignored(self, baskets):
        privacy = generate_privacy_policy(baskets, k=4, strategy="items")
        privacy = type(privacy)(
            list(privacy.constraints) + [["item-that-does-not-exist"]], k=4
        )
        _, utility = generate_policies(baskets, k=4)
        result = Coat(privacy, utility).anonymize(baskets)
        assert len(result.dataset) == len(baskets)

    def test_requires_policies(self, baskets):
        with pytest.raises(ConfigurationError):
            Coat(None, None)

    def test_reports_statistics(self, baskets):
        privacy, utility = generate_policies(baskets, k=5)
        result = Coat(privacy, utility).anonymize(baskets)
        stats = result.statistics
        assert stats["generalized_groups"] >= 0
        assert stats["suppressed_items"] >= 0
        assert 0.0 <= stats["utility_loss"] <= 1.0


class TestPcta:
    def test_satisfies_privacy_policy(self, baskets):
        privacy = generate_privacy_policy(baskets, k=5, strategy="items")
        result = Pcta(privacy).anonymize(baskets)
        for constraint in privacy:
            support = candidate_support(result.dataset, constraint.items)
            assert support == 0 or support >= 5

    def test_satisfies_itemset_constraints(self, baskets):
        privacy = generate_privacy_policy(
            baskets, k=6, strategy="itemsets", constraint_size=2, n_constraints=15, seed=2
        )
        result = Pcta(privacy).anonymize(baskets)
        for constraint in privacy:
            support = candidate_support(result.dataset, constraint.items)
            assert support == 0 or support >= 6

    def test_clusters_are_reported(self, baskets):
        privacy = generate_privacy_policy(baskets, k=10, strategy="items")
        result = Pcta(privacy).anonymize(baskets)
        assert result.statistics["merges"] >= 0
        assert result.statistics["largest_cluster"] >= 1

    def test_requires_policy(self):
        with pytest.raises(ConfigurationError):
            Pcta(None)

    def test_pcta_preserves_more_utility_than_full_generalization(self, baskets, item_hierarchy):
        privacy = generate_privacy_policy(baskets, k=5, strategy="rare")
        pcta_result = Pcta(privacy).anonymize(baskets)
        # Suppressing or generalizing everything would give UL close to 1.
        assert pcta_result.statistics["utility_loss"] < 0.9
