"""The Method Comparator: SECRETA's Comparison mode.

The Comparison mode lets the data publisher design a benchmark: a set of
configurations (each pairing algorithms, a bounding method and fixed
parameters) plus a varying parameter with its start/end/step.  Every
configuration is executed across the sweep and the results are collected into
per-indicator series so they can be plotted side by side — "an interactive
and progressive comparison of sets of algorithms, with respect to their
utility and efficiency".
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.datasets.dataset import Dataset
from repro.engine.config import AnonymizationConfig
from repro.engine.experiment import ParameterSweep, VaryingParameterExperiment
from repro.engine.resources import ExperimentResources
from repro.engine.results import ComparisonReport, SweepResult
from repro.engine.runner import run_many
from repro.exceptions import ConfigurationError


class MethodComparator:
    """Execute and compare multiple configurations over a parameter sweep."""

    def __init__(
        self,
        dataset: Dataset,
        resources: ExperimentResources | None = None,
        verify_privacy: bool = False,
        parallel: bool = False,
        max_workers: int | None = None,
    ):
        self.dataset = dataset
        self.resources = resources or ExperimentResources()
        self.verify_privacy = verify_privacy
        self.parallel = parallel
        self.max_workers = max_workers

    def compare(
        self,
        configurations: Sequence[AnonymizationConfig] | Iterable[AnonymizationConfig],
        sweep: ParameterSweep,
    ) -> ComparisonReport:
        """Run every configuration across the sweep and collect the series."""
        configurations = list(configurations)
        if not configurations:
            raise ConfigurationError("the Comparison mode needs at least one configuration")

        def run_one(config: AnonymizationConfig) -> SweepResult:
            experiment = VaryingParameterExperiment(
                self.dataset, self.resources, verify_privacy=self.verify_privacy
            )
            return experiment.run(config, sweep)

        sweeps = run_many(
            configurations,
            run_one,
            parallel=self.parallel,
            max_workers=self.max_workers,
        )
        return ComparisonReport(
            parameter=sweep.parameter, values=list(sweep.values), sweeps=list(sweeps)
        )

    def compare_fixed(
        self, configurations: Sequence[AnonymizationConfig], parameter: str, value
    ) -> ComparisonReport:
        """Single-parameter-value comparison (a degenerate sweep of length one)."""
        return self.compare(configurations, ParameterSweep(parameter, (value,)))
