"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.datasets import (
    Attribute,
    Dataset,
    Schema,
    generate_adult_like,
    generate_market_basket,
    generate_rt_dataset,
    toy_rt_dataset,
)
from repro.hierarchy import build_hierarchies_for_dataset


@pytest.fixture
def toy_dataset() -> Dataset:
    """The tiny hand-written RT-dataset from the documentation."""
    return toy_rt_dataset()


@pytest.fixture
def relational_dataset() -> Dataset:
    """A small census-like relational dataset (deterministic)."""
    return generate_adult_like(n_records=200, seed=3)


@pytest.fixture
def transaction_dataset() -> Dataset:
    """A small market-basket transaction dataset (deterministic)."""
    return generate_market_basket(n_records=200, n_items=30, seed=5)


@pytest.fixture
def rt_dataset() -> Dataset:
    """A small RT-dataset combining the two above (deterministic)."""
    return generate_rt_dataset(n_records=150, n_items=25, seed=9)


@pytest.fixture
def rt_hierarchies(rt_dataset):
    """Automatically generated hierarchies for every QI attribute."""
    return build_hierarchies_for_dataset(rt_dataset, fanout=3)


@pytest.fixture
def simple_relational() -> Dataset:
    """A minimal purely relational dataset with obvious equivalence classes."""
    schema = Schema(
        [
            Attribute.numeric("Age"),
            Attribute.categorical("Zip"),
            Attribute.categorical("Disease", quasi_identifier=False),
        ]
    )
    rows = [
        {"Age": 21, "Zip": "4370", "Disease": "Flu"},
        {"Age": 22, "Zip": "4370", "Disease": "Flu"},
        {"Age": 23, "Zip": "4371", "Disease": "Cold"},
        {"Age": 24, "Zip": "4371", "Disease": "Cold"},
        {"Age": 51, "Zip": "5500", "Disease": "Asthma"},
        {"Age": 52, "Zip": "5500", "Disease": "Asthma"},
        {"Age": 53, "Zip": "5501", "Disease": "Flu"},
        {"Age": 54, "Zip": "5501", "Disease": "Cold"},
    ]
    return Dataset(schema, rows, name="simple-relational")


@pytest.fixture
def simple_transactions() -> Dataset:
    """A minimal transaction dataset with a small item universe."""
    schema = Schema([Attribute.transaction("Items")])
    rows = [
        {"Items": ["a", "b"]},
        {"Items": ["a", "b", "c"]},
        {"Items": ["a", "c"]},
        {"Items": ["b", "c"]},
        {"Items": ["a", "d"]},
        {"Items": ["d", "e"]},
        {"Items": ["a", "b", "d"]},
        {"Items": ["c", "d", "e"]},
        {"Items": ["a"]},
        {"Items": ["b"]},
    ]
    return Dataset(schema, rows, name="simple-transactions")
