"""Inverted index of a transaction attribute: item → posting list.

The constraint-based transaction algorithms (COAT, PCTA) spend almost all of
their time asking *"which records could contain an item of this group?"* —
the union of the group members' posting lists.  The same groups recur across
constraint iterations, so :class:`InvertedIndex` memoizes unions by the
(frozen) item group.  The memoization is pure: a cached union is exactly the
union that would be recomputed, so algorithm outputs are unchanged.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.datasets.dataset import Dataset
from repro.index.interpreter import evict_when_full

_EMPTY: frozenset[int] = frozenset()


class InvertedIndex:
    """Per-item posting lists over one transaction attribute.

    ``cached=False`` disables union memoization (every union is recomputed);
    it exists so tests can verify the memoization changes nothing.
    """

    def __init__(
        self,
        postings: Mapping[str, Iterable[int]],
        n_records: int = 0,
        cached: bool = True,
    ):
        self._postings: dict[str, frozenset[int]] = {
            str(item): frozenset(records) for item, records in postings.items()
        }
        self.n_records = n_records
        self._cached = cached
        self._unions: dict[frozenset, frozenset[int]] = {}

    @classmethod
    def from_dataset(
        cls, dataset: Dataset, attribute: str | None = None, cached: bool = True
    ) -> "InvertedIndex":
        """Build the index of ``attribute`` (default: the only transaction one)."""
        attribute = attribute or dataset.single_transaction_attribute()
        postings: dict[str, set[int]] = {}
        for index, record in enumerate(dataset):
            for item in record[attribute]:
                postings.setdefault(item, set()).add(index)
        return cls(postings, n_records=len(dataset), cached=cached)

    def __repr__(self) -> str:
        return (
            f"InvertedIndex(items={len(self._postings)}, "
            f"records={self.n_records}, cached_unions={len(self._unions)})"
        )

    def __contains__(self, item: object) -> bool:
        return item in self._postings

    def __len__(self) -> int:
        return len(self._postings)

    @property
    def universe(self) -> frozenset[str]:
        """All indexed items."""
        return frozenset(self._postings)

    def postings(self, item: str) -> frozenset[int]:
        """Records containing ``item`` (empty for unknown items)."""
        return self._postings.get(item, _EMPTY)

    def frequency(self, item: str) -> int:
        """Support of a single item."""
        return len(self._postings.get(item, _EMPTY))

    def union(self, items: Iterable[str]) -> frozenset[int]:
        """Records containing *any* item of the group (memoized per group)."""
        key = items if isinstance(items, frozenset) else frozenset(items)
        if self._cached:
            cached = self._unions.get(key)
            if cached is not None:
                return cached
        combined: set[int] = set()
        for item in key:
            combined |= self._postings.get(item, _EMPTY)
        result = frozenset(combined)
        if self._cached:
            evict_when_full(self._unions)
            self._unions[key] = result
        return result

    def joint_support(self, groups: Iterable[Iterable[str]]) -> int:
        """Records containing an item of *every* group (0 for no groups).

        This is the support computation of COAT/PCTA privacy constraints:
        each constraint item is represented by its current group, and a record
        supports the constraint when it intersects every group.
        """
        covering: frozenset[int] | None = None
        for group in groups:
            records = self.union(group)
            covering = records if covering is None else covering & records
            if not covering:
                return 0
        return len(covering) if covering is not None else 0
