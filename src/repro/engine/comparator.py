"""The Method Comparator: SECRETA's Comparison mode.

The Comparison mode lets the data publisher design a benchmark: a set of
configurations (each pairing algorithms, a bounding method and fixed
parameters) plus a varying parameter with its start/end/step.  Every
configuration is executed across the sweep and the results are collected into
per-indicator series so they can be plotted side by side — "an interactive
and progressive comparison of sets of algorithms, with respect to their
utility and efficiency".

Comparisons can fan out across CPU cores: pass ``mode="process"`` and every
configuration's sweep runs in its own worker process; the dataset is
exported once to shared memory and each task carries only the picklable
manifest (pass ``pool`` to reuse workers and the export across comparisons).
The legacy ``parallel=True`` flag keeps selecting the thread pool.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.columnar.shared import resolve_shared_dataset
from repro.datasets.dataset import Dataset
from repro.datasets.domains import DatasetDomains
from repro.engine.checkpoint import CheckpointStore, configuration_keys
from repro.engine.config import AnonymizationConfig
from repro.engine.experiment import ParameterSweep, VaryingParameterExperiment
from repro.engine.pool import WorkerPool, fan_out_shared
from repro.engine.resilience import ExecutionPolicy, RunReport
from repro.engine.resources import ExperimentResources
from repro.engine.results import ComparisonReport, SweepResult
from repro.engine.runner import resolve_mode, run_many
from repro.exceptions import ConfigurationError


def _run_configuration(task: tuple) -> SweepResult:
    """Run one configuration across the sweep (module-level: picklable).

    The dataset slot holds either the dataset itself or a shared-memory
    manifest (process mode) that the worker attaches without copying arrays.
    The checkpoint slot carries the (picklable) store into the worker, so a
    comparison checkpoints at both granularities: whole-configuration cells
    out here, per-sweep-point cells inside the worker's own experiment.
    """
    (
        dataset,
        resources,
        verify_privacy,
        universe_mode,
        simulate_attacks,
        config,
        sweep,
        checkpoint,
    ) = task
    experiment = VaryingParameterExperiment(
        resolve_shared_dataset(dataset),
        resources,
        verify_privacy=verify_privacy,
        universe_mode=universe_mode,
        checkpoint=checkpoint,
        simulate_attacks=simulate_attacks,
    )
    return experiment.run(config, sweep)


class MethodComparator:
    """Execute and compare multiple configurations over a parameter sweep."""

    def __init__(
        self,
        dataset: Dataset,
        resources: ExperimentResources | None = None,
        verify_privacy: bool = False,
        parallel: bool = False,
        max_workers: int | None = None,
        mode: str | None = None,
        pool: WorkerPool | None = None,
        universe_mode: str = "original",
        policy: ExecutionPolicy | None = None,
        checkpoint: CheckpointStore | None = None,
        simulate_attacks: bool = False,
    ) -> None:
        self.dataset = dataset
        self.resources = resources or ExperimentResources()
        self.verify_privacy = verify_privacy
        self.parallel = parallel
        self.max_workers = max_workers
        self.mode = mode
        self.pool = pool
        self.universe_mode = universe_mode
        self.policy = policy
        self.checkpoint = checkpoint
        self.simulate_attacks = simulate_attacks

    def _tasks(
        self,
        payload: object,
        configurations: Sequence[AnonymizationConfig],
        sweep: ParameterSweep,
    ) -> list[tuple]:
        return [
            (
                payload,
                self.resources,
                self.verify_privacy,
                self.universe_mode,
                self.simulate_attacks,
                config,
                sweep,
                self.checkpoint,
            )
            for config in configurations
        ]

    def compare(
        self,
        configurations: Sequence[AnonymizationConfig] | Iterable[AnonymizationConfig],
        sweep: ParameterSweep,
    ) -> ComparisonReport:
        """Run every configuration across the sweep and collect the series."""
        configurations = list(configurations)
        if not configurations:
            raise ConfigurationError("the Comparison mode needs at least one configuration")

        if self.resources.domains is None and len(self.dataset):
            # One snapshot shared by every configuration's sweep (and every
            # worker process the comparison fans out to).
            self.resources.domains = DatasetDomains.capture(self.dataset)
        resolved = resolve_mode(self.parallel, self.mode)
        # Whole-configuration checkpoint keys, derived in the orchestrating
        # process from the real dataset (workers additionally checkpoint
        # their per-sweep-point cells — see ``_run_configuration``).
        keys = (
            configuration_keys(
                self.dataset,
                self.resources,
                self.verify_privacy,
                self.universe_mode,
                configurations,
                sweep,
                self.simulate_attacks,
            )
            if self.checkpoint is not None
            else None
        )
        if resolved == "process" and len(configurations) > 1:
            report = RunReport()
            sweeps = fan_out_shared(
                self.dataset,
                lambda payload: self._tasks(payload, configurations, sweep),
                _run_configuration,
                pool=self.pool,
                max_workers=self.max_workers,
                policy=self.policy,
                report=report,
                checkpoint=self.checkpoint,
                checkpoint_keys=keys,
            )
        else:
            report = (
                RunReport()
                if self.policy is not None or self.checkpoint is not None
                else None
            )
            sweeps = run_many(
                self._tasks(self.dataset, configurations, sweep),
                _run_configuration,
                mode=resolved,
                max_workers=self.max_workers,
                policy=self.policy,
                report=report,
                checkpoint=self.checkpoint,
                checkpoint_keys=keys,
            )
        return ComparisonReport(
            parameter=sweep.parameter,
            values=list(sweep.values),
            sweeps=list(sweeps),
            run_report=report,
        )

    def compare_fixed(
        self,
        configurations: Sequence[AnonymizationConfig],
        parameter: str,
        value: object,
    ) -> ComparisonReport:
        """Single-parameter-value comparison (a degenerate sweep of length one)."""
        return self.compare(configurations, ParameterSweep(parameter, (value,)))
