"""Unit tests for the re-identification attack simulator.

The hand-computed example: four individuals published in two truthful
equivalence classes of two.  Every matching set is checked against what the
adversary could derive with pencil and paper.
"""

import pytest

from repro.attacks import (
    AttackResult,
    MAX_WITNESSES,
    finalize_sizes,
    item_attack,
    qi_attack,
    rt_attack,
    simulate_attacks,
)
from repro.datasets import Attribute, Dataset, Schema
from repro.exceptions import DatasetError
from repro.metrics import SUPPRESSED


def make_rt(rows) -> Dataset:
    schema = Schema(
        [
            Attribute.numeric("Age"),
            Attribute.categorical("Edu"),
            Attribute.transaction("Items"),
        ]
    )
    return Dataset(schema, rows)


@pytest.fixture
def original() -> Dataset:
    return make_rt(
        [
            {"Age": 25, "Edu": "BSc", "Items": ["a", "b"]},
            {"Age": 28, "Edu": "BSc", "Items": ["a"]},
            {"Age": 52, "Edu": "PhD", "Items": ["b", "c"]},
            {"Age": 58, "Edu": "PhD", "Items": ["c"]},
        ]
    )


@pytest.fixture
def anonymized() -> Dataset:
    """A truthful 2-anonymous generalization of ``original``."""
    return make_rt(
        [
            {"Age": "[25-28]", "Edu": "BSc", "Items": ["(a,b)"]},
            {"Age": "[25-28]", "Edu": "BSc", "Items": ["(a,b)"]},
            {"Age": "[52-58]", "Edu": "PhD", "Items": ["(b,c)"]},
            {"Age": "[52-58]", "Edu": "PhD", "Items": ["(b,c)"]},
        ]
    )


@pytest.mark.parametrize("vectorized", [True, False])
class TestHandComputedMatchingSets:
    def test_qi_attack(self, original, anonymized, vectorized):
        result = qi_attack(original, anonymized, vectorized=vectorized)
        assert result.match_sizes == (2, 2, 2, 2)
        assert result.empirical_k == 2
        assert result.max_risk == 0.5
        assert result.mean_risk == 0.5
        assert result.worst_records == (0, 1, 2, 3)
        assert result.worst_knowledge is None

    def test_item_attack_m1(self, original, anonymized, vectorized):
        # Candidates: a -> {0,1}, b -> all four, c -> {2,3}.
        result = item_attack(original, anonymized, m=1, vectorized=vectorized)
        assert result.match_sizes == (2, 2, 2, 2)
        assert result.empirical_k == 2
        # Record 0's best single item is "a" (2 candidates vs 4 for "b").
        assert result.worst_knowledge == ("a",)

    def test_item_attack_m2_cannot_beat_class_size(
        self, original, anonymized, vectorized
    ):
        result = item_attack(original, anonymized, m=2, vectorized=vectorized)
        assert result.empirical_k == 2

    def test_rt_attack_items_add_nothing_here(self, original, anonymized, vectorized):
        result = rt_attack(original, anonymized, m=2, vectorized=vectorized)
        assert result.match_sizes == (2, 2, 2, 2)
        assert result.empirical_k == 2
        # The QI matching set already equals every intersection, so the
        # seeded minimum is never strictly beaten: no witness.
        assert result.worst_knowledge is None

    def test_identity_output_is_fully_exposed(self, original, vectorized):
        result = qi_attack(original, original, vectorized=vectorized)
        assert result.match_sizes == (1, 1, 1, 1)
        assert result.empirical_k == 1
        assert result.max_risk == 1.0

    def test_suppressed_cells_match_everyone(self, original, vectorized):
        blanked = make_rt(
            [
                {"Age": SUPPRESSED, "Edu": SUPPRESSED, "Items": []}
                for _ in range(len(original))
            ]
        )
        result = qi_attack(original, blanked, vectorized=vectorized)
        assert result.match_sizes == (4, 4, 4, 4)

    def test_wiped_items_mean_failed_item_attack(self, original, vectorized):
        blanked = make_rt(
            [
                {"Age": SUPPRESSED, "Edu": SUPPRESSED, "Items": []}
                for _ in range(len(original))
            ]
        )
        result = item_attack(original, blanked, m=2, vectorized=vectorized)
        assert result.match_sizes == (0, 0, 0, 0)
        assert result.empirical_k is None
        assert result.matched == 0
        assert result.max_risk == 0.0
        assert result.worst_records == ()

    def test_simulate_attacks_runs_all_three(self, original, anonymized, vectorized):
        results = simulate_attacks(original, anonymized, m=2, vectorized=vectorized)
        assert sorted(results) == ["item", "qi", "rt"]
        assert all(value.empirical_k == 2 for value in results.values())


class TestValidation:
    def test_misaligned_datasets_rejected(self, original, anonymized):
        with pytest.raises(DatasetError, match="record-aligned"):
            qi_attack(original, anonymized.subset([0, 1]))

    def test_qi_attack_needs_quasi_identifiers(self):
        schema = Schema([Attribute.transaction("Items")])
        transactions = Dataset(schema, [{"Items": ["a"]}, {"Items": ["b"]}])
        with pytest.raises(DatasetError, match="quasi-identifier"):
            qi_attack(transactions, transactions)

    @pytest.mark.parametrize("m", [0, -1])
    def test_item_and_rt_attacks_reject_non_positive_m(
        self, original, anonymized, m
    ):
        with pytest.raises(DatasetError, match="m must be"):
            item_attack(original, anonymized, m=m)
        with pytest.raises(DatasetError, match="m must be"):
            rt_attack(original, anonymized, m=m)

    def test_knowledge_cap_flags_truncation(self, original, anonymized):
        capped = item_attack(original, anonymized, m=2, knowledge_cap=1)
        assert capped.truncated
        exhaustive = item_attack(original, anonymized, m=2)
        assert not exhaustive.truncated


class TestAttackResult:
    def test_risk_and_summary(self):
        result = finalize_sizes("qi", [3, 0, 1])
        assert result.risk(0) == pytest.approx(1 / 3)
        assert result.risk(1) == 0.0
        assert result.risk(2) == 1.0
        summary = result.summary()
        assert summary["attack"] == "qi"
        assert summary["records"] == 3
        assert summary["matched"] == 2
        assert summary["empirical_k"] == 1
        assert summary["max_risk"] == 1.0
        assert summary["worst_records"] == [2]
        assert summary["worst_knowledge"] is None
        assert summary["truncated"] is False

    def test_finalize_caps_witness_list(self):
        result = finalize_sizes("qi", [1] * (MAX_WITNESSES + 5))
        assert len(result.worst_records) == MAX_WITNESSES
        assert result.worst_records == tuple(range(MAX_WITNESSES))

    def test_finalize_empty(self):
        result = finalize_sizes("qi", [])
        assert result == AttackResult(
            attack="qi",
            n_records=0,
            match_sizes=(),
            empirical_k=None,
            mean_risk=0.0,
            max_risk=0.0,
            worst_records=(),
        )

    def test_results_are_picklable(self, original, anonymized):
        import pickle

        result = rt_attack(original, anonymized, m=2)
        assert pickle.loads(pickle.dumps(result)) == result
