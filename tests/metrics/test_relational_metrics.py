"""Tests for relational information-loss metrics."""

import pytest

from repro.datasets import Attribute, Dataset, Schema
from repro.exceptions import DatasetError
from repro.metrics import (
    average_class_size,
    categorical_value_ncp,
    discernibility_metric,
    global_certainty_penalty,
    ncp_per_attribute,
    numeric_value_ncp,
)


@pytest.fixture
def original(simple_relational):
    return simple_relational


def anonymize_to_labels(dataset, age_label, zip_label):
    """Replace every Age/Zip value by fixed generalized labels."""
    anonymized = dataset.copy()
    for index in range(len(anonymized)):
        anonymized.set_value(index, "Age", age_label)
        anonymized.set_value(index, "Zip", zip_label)
    return anonymized


class TestValueNcp:
    def test_categorical_leaf_has_zero_ncp(self):
        assert categorical_value_ncp("a", None, domain_size=5) == 0.0

    def test_categorical_group_ncp(self):
        assert categorical_value_ncp("(a,b,c)", None, domain_size=5) == pytest.approx(0.5)

    def test_categorical_degenerate_domain(self):
        assert categorical_value_ncp("(a,b)", None, domain_size=1) == 0.0

    def test_categorical_root_label_is_fully_generalized(self):
        # Regression: without a hierarchy the root "*" resolved to an empty
        # leaf set and scored NCP 0 instead of 1 (the relational analogue of
        # the transaction-side root-label utility bug).
        assert categorical_value_ncp("*", None, domain_size=5) == 1.0

    def test_numeric_exact_value_has_zero_ncp(self):
        assert numeric_value_ncp(25, None, 0, 100) == 0.0
        assert numeric_value_ncp("25", None, 0, 100) == 0.0

    def test_numeric_interval_ncp(self):
        assert numeric_value_ncp("[0-50]", None, 0, 100) == pytest.approx(0.5)
        assert numeric_value_ncp("[0-100]", None, 0, 100) == pytest.approx(1.0)

    def test_numeric_uninterpretable_label_is_full_loss(self):
        assert numeric_value_ncp("whatever", None, 0, 100) == 1.0


class TestDatasetMetrics:
    def test_gcp_zero_for_unmodified_data(self, original):
        # The Age column is numeric; identical data means every cell is exact.
        assert global_certainty_penalty(original, original) == pytest.approx(0.0)

    def test_gcp_one_for_fully_generalized_data(self, original):
        domain = original.domain("Age")
        full_age = f"[{min(domain)}-{max(domain)}]"
        anonymized = anonymize_to_labels(original, full_age, "(4370,4371,5500,5501)")
        assert global_certainty_penalty(original, anonymized) == pytest.approx(1.0)

    def test_gcp_monotone_in_generalization(self, original):
        mild = anonymize_to_labels(original, "[21-24]", "4370")
        severe = anonymize_to_labels(original, "[21-54]", "(4370,4371,5500,5501)")
        assert global_certainty_penalty(original, mild) < global_certainty_penalty(
            original, severe
        )

    def test_ncp_per_attribute_keys(self, original):
        anonymized = anonymize_to_labels(original, "[21-54]", "4370")
        per_attribute = ncp_per_attribute(original, anonymized)
        assert set(per_attribute) == {"Age", "Zip"}
        assert per_attribute["Age"] > 0
        assert per_attribute["Zip"] == 0.0

    def test_non_quasi_identifiers_are_ignored(self, original):
        anonymized = original.copy()
        for index in range(len(anonymized)):
            anonymized.set_value(index, "Disease", "(Flu,Cold)")
        assert global_certainty_penalty(original, anonymized) == pytest.approx(0.0)


class TestClassStructureMetrics:
    def test_discernibility_identity(self, original):
        # Every record is unique on (Age, Zip): 8 classes of size 1.
        assert discernibility_metric(original) == 8

    def test_discernibility_grouped(self, original):
        anonymized = anonymize_to_labels(original, "[21-54]", "*")
        assert discernibility_metric(anonymized) == 64

    def test_average_class_size(self, original):
        anonymized = anonymize_to_labels(original, "[21-54]", "*")
        assert average_class_size(anonymized, k=4) == pytest.approx(2.0)
        assert average_class_size(original, k=1) == pytest.approx(1.0)

    def test_average_class_size_requires_positive_k(self, original):
        with pytest.raises(DatasetError):
            average_class_size(original, k=0)
