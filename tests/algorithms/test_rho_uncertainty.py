"""Tests for the ρ-uncertainty extension (the paper's named future work)."""

import itertools

import pytest

from repro.algorithms.transaction import RhoUncertainty
from repro.datasets import Attribute, Dataset, Schema, generate_market_basket
from repro.exceptions import ConfigurationError


def rule_confidences(dataset, sensitive_items, max_antecedent=1, attribute="Items"):
    """Confidence of every rule X -> s on ``dataset`` (brute force, for tests)."""
    itemsets = [record[attribute] for record in dataset]
    non_empty = sum(1 for itemset in itemsets if itemset) or 1
    universe = set().union(*itemsets) if itemsets else set()
    confidences = {}
    for sensitive in sensitive_items & universe:
        support_s = sum(1 for itemset in itemsets if sensitive in itemset)
        confidences[(frozenset(), sensitive)] = support_s / non_empty
        others = sorted(universe - {sensitive})
        for size in range(1, max_antecedent + 1):
            for antecedent in itertools.combinations(others, size):
                support_x = sum(1 for itemset in itemsets if set(antecedent) <= itemset)
                if not support_x:
                    continue
                support_xs = sum(
                    1
                    for itemset in itemsets
                    if set(antecedent) <= itemset and sensitive in itemset
                )
                confidences[(frozenset(antecedent), sensitive)] = support_xs / support_x
    return confidences


@pytest.fixture
def clinical():
    """A small dataset where knowing 'a' strongly implies the sensitive 'hiv'."""
    schema = Schema([Attribute.transaction("Items")])
    rows = (
        [{"Items": ["a", "hiv"]}] * 6
        + [{"Items": ["a", "flu"]}] * 2
        + [{"Items": ["b", "flu"]}] * 8
        + [{"Items": ["b"]}] * 4
    )
    return Dataset(schema, rows)


class TestValidation:
    def test_parameter_checks(self):
        with pytest.raises(ConfigurationError):
            RhoUncertainty(rho=0.0, sensitive_items=["s"])
        with pytest.raises(ConfigurationError):
            RhoUncertainty(rho=1.0, sensitive_items=["s"])
        with pytest.raises(ConfigurationError):
            RhoUncertainty(rho=0.5, sensitive_items=[])
        with pytest.raises(ConfigurationError):
            RhoUncertainty(rho=0.5, sensitive_items=["s"], max_antecedent=-1)


class TestProtection:
    def test_violating_rules_are_removed(self, clinical):
        algorithm = RhoUncertainty(rho=0.5, sensitive_items={"hiv"}, max_antecedent=1)
        result = algorithm.anonymize(clinical)
        confidences = rule_confidences(result.dataset, {"hiv"})
        assert all(value <= 0.5 + 1e-9 for value in confidences.values())
        assert result.statistics["residual_violations"] == 0

    def test_already_safe_data_is_untouched(self, clinical):
        algorithm = RhoUncertainty(rho=0.99, sensitive_items={"hiv"}, max_antecedent=1)
        result = algorithm.anonymize(clinical)
        assert result.statistics["suppressed_items"] == []
        assert result.statistics["suppression_ratio"] == 0.0

    def test_non_sensitive_items_survive_where_possible(self, clinical):
        algorithm = RhoUncertainty(rho=0.5, sensitive_items={"hiv"}, max_antecedent=1)
        result = algorithm.anonymize(clinical)
        remaining = result.dataset.item_universe()
        # 'b' and 'flu' are unrelated to the sensitive inference and must stay.
        assert {"b", "flu"} <= remaining

    def test_zero_antecedent_limits_overall_frequency(self):
        schema = Schema([Attribute.transaction("Items")])
        rows = [{"Items": ["s"]}] * 9 + [{"Items": ["x"]}] * 1
        dataset = Dataset(schema, rows)
        result = RhoUncertainty(
            rho=0.5, sensitive_items={"s"}, max_antecedent=0
        ).anonymize(dataset)
        supports = sum(1 for record in result.dataset if "s" in record["Items"])
        non_empty = sum(1 for record in result.dataset if record["Items"]) or 1
        assert supports / non_empty <= 0.5 or supports == 0

    def test_scales_to_generated_baskets(self):
        baskets = generate_market_basket(n_records=150, n_items=20, seed=9)
        sensitive = {"i000", "i001"}
        result = RhoUncertainty(rho=0.3, sensitive_items=sensitive).anonymize(baskets)
        confidences = rule_confidences(result.dataset, sensitive)
        assert all(value <= 0.3 + 1e-9 for value in confidences.values())
        assert 0.0 <= result.statistics["utility_loss"] <= 1.0
