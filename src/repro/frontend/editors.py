"""Headless counterparts of SECRETA's Configuration and Queries editors.

The Dataset Editor lives in :mod:`repro.datasets.editor`; this module adds
the remaining two frontend panes:

* :class:`ConfigurationEditor` — loads, browses, edits and generates
  hierarchies and privacy/utility policies (the top-mid pane of the main
  screen), and
* :class:`QueriesEditor` — loads, edits and generates query workloads (the
  top-right pane).

Both produce the objects consumed by :class:`repro.engine.ExperimentResources`.
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence

from repro.datasets.dataset import Dataset
from repro.exceptions import ConfigurationError, QueryError
from repro.hierarchy.builders import build_hierarchies_for_dataset
from repro.hierarchy.hierarchy import Hierarchy
from repro.hierarchy.io import load_hierarchies, load_hierarchy, save_hierarchies
from repro.policies.generation import generate_privacy_policy, generate_utility_policy
from repro.policies.io import (
    load_privacy_policy,
    load_utility_policy,
    save_privacy_policy,
    save_utility_policy,
)
from repro.policies.privacy import PrivacyPolicy
from repro.policies.utility import UtilityPolicy
from repro.queries.query import Query
from repro.queries.workload import QueryWorkload, generate_query_workload


class ConfigurationEditor:
    """Manage hierarchies and policies for a dataset."""

    def __init__(self, dataset: Dataset):
        self.dataset = dataset
        self.hierarchies: dict[str, Hierarchy] = {}
        self.privacy_policy: PrivacyPolicy | None = None
        self.utility_policy: UtilityPolicy | None = None

    # -- hierarchies ---------------------------------------------------------------
    def load_hierarchy(self, attribute: str, path: str | Path) -> Hierarchy:
        hierarchy = load_hierarchy(path, attribute=attribute)
        self.hierarchies[attribute] = hierarchy
        return hierarchy

    def load_hierarchy_directory(self, directory: str | Path) -> dict[str, Hierarchy]:
        loaded = load_hierarchies(directory)
        self.hierarchies.update(loaded)
        return loaded

    def generate_hierarchies(
        self, attributes: Sequence[str] | None = None, fanout: int = 4
    ) -> dict[str, Hierarchy]:
        generated = build_hierarchies_for_dataset(
            self.dataset, fanout=fanout, attributes=attributes
        )
        self.hierarchies.update(generated)
        return generated

    def save_hierarchies(self, directory: str | Path) -> dict[str, Path]:
        if not self.hierarchies:
            raise ConfigurationError("no hierarchies to save")
        return save_hierarchies(self.hierarchies, directory)

    def browse_hierarchy(self, attribute: str) -> list[list[str]]:
        """Leaf-to-root paths of one hierarchy (what the GUI tree view shows)."""
        if attribute not in self.hierarchies:
            raise ConfigurationError(f"no hierarchy loaded for {attribute!r}")
        return self.hierarchies[attribute].to_mapping_rows()

    # -- policies --------------------------------------------------------------------
    def load_privacy_policy(self, path: str | Path) -> PrivacyPolicy:
        self.privacy_policy = load_privacy_policy(path)
        return self.privacy_policy

    def load_utility_policy(self, path: str | Path) -> UtilityPolicy:
        self.utility_policy = load_utility_policy(path)
        return self.utility_policy

    def generate_policies(
        self,
        k: int,
        privacy_strategy: str = "items",
        utility_strategy: str = "frequency",
        attribute: str | None = None,
        group_size: int = 4,
    ) -> tuple[PrivacyPolicy, UtilityPolicy]:
        attribute = attribute or self.dataset.single_transaction_attribute()
        self.privacy_policy = generate_privacy_policy(
            self.dataset, k=k, strategy=privacy_strategy, attribute=attribute
        )
        self.utility_policy = generate_utility_policy(
            self.dataset,
            strategy=utility_strategy,
            attribute=attribute,
            group_size=group_size,
            hierarchy=self.hierarchies.get(attribute),
        )
        return self.privacy_policy, self.utility_policy

    def save_policies(self, directory: str | Path) -> dict[str, Path]:
        directory = Path(directory)
        written: dict[str, Path] = {}
        if self.privacy_policy is not None:
            written["privacy"] = save_privacy_policy(
                self.privacy_policy, directory / "privacy_policy.txt"
            )
        if self.utility_policy is not None:
            written["utility"] = save_utility_policy(
                self.utility_policy, directory / "utility_policy.txt"
            )
        if not written:
            raise ConfigurationError("no policies to save")
        return written


class QueriesEditor:
    """Manage the query workload used by the ARE utility indicator."""

    def __init__(self, dataset: Dataset):
        self.dataset = dataset
        self.workload: QueryWorkload | None = None

    def load(self, path: str | Path) -> QueryWorkload:
        self.workload = QueryWorkload.load(path)
        return self.workload

    def generate(self, n_queries: int = 50, seed: int = 0, **kwargs) -> QueryWorkload:
        self.workload = generate_query_workload(
            self.dataset, n_queries=n_queries, seed=seed, **kwargs
        )
        return self.workload

    def add_query(self, query: Query) -> None:
        if self.workload is None:
            self.workload = QueryWorkload([query])
        else:
            self.workload.add(query)

    def remove_query(self, index: int) -> None:
        if self.workload is None:
            raise QueryError("no workload loaded")
        self.workload.remove(index)

    def save(self, path: str | Path) -> Path:
        if self.workload is None:
            raise QueryError("no workload to save")
        return self.workload.save(path)

    def describe(self) -> list[str]:
        """One human-readable line per query (the workload list widget)."""
        if self.workload is None:
            return []
        return [query.describe() for query in self.workload]
