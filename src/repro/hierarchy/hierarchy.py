"""Domain generalization hierarchies (DGH).

Every anonymization algorithm in SECRETA except COAT and PCTA transforms
values by climbing a *generalization hierarchy*: a tree whose leaves are the
original domain values and whose internal nodes are progressively more general
labels, up to a single root (``*``).  The same structure serves

* categorical relational attributes (e.g. ``Tech → White-collar → *``),
* numeric relational attributes (leaves are values, internal nodes are
  interval labels such as ``[20-40)``), and
* transaction item domains (Terrovitis-style item hierarchies).

:class:`Hierarchy` is a read-only tree with fast lookups of parents,
ancestors, leaf sets and lowest common ancestors — the primitives the
algorithms and the information-loss metrics need.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from repro.exceptions import HierarchyError


class HierarchyNode:
    """A single node of a generalization hierarchy."""

    __slots__ = ("label", "parent", "children", "depth", "_leaf_count", "interval")

    def __init__(self, label: str, parent: "HierarchyNode | None" = None):
        self.label = label
        self.parent = parent
        self.children: list[HierarchyNode] = []
        self.depth = 0 if parent is None else parent.depth + 1
        self._leaf_count: int | None = None
        #: Optional ``(low, high)`` bounds for interval nodes of numeric
        #: hierarchies; ``None`` for categorical nodes.
        self.interval: tuple[float, float] | None = None

    def __repr__(self) -> str:
        return f"HierarchyNode({self.label!r}, depth={self.depth})"

    @property
    def is_leaf(self) -> bool:
        return not self.children

    @property
    def is_root(self) -> bool:
        return self.parent is None


class Hierarchy:
    """A generalization hierarchy over one attribute's domain.

    Build hierarchies with :class:`HierarchyBuilder`, the functions in
    :mod:`repro.hierarchy.builders`, or :func:`repro.hierarchy.io.load_hierarchy`.
    """

    def __init__(self, root: HierarchyNode, attribute: str = ""):
        self.attribute = attribute
        self._root = root
        self._nodes: dict[str, HierarchyNode] = {}
        self._index_nodes(root)
        self._height = max(node.depth for node in self._nodes.values())

    def _index_nodes(self, node: HierarchyNode) -> None:
        if node.label in self._nodes:
            raise HierarchyError(
                f"duplicate node label {node.label!r} in hierarchy "
                f"{self.attribute or '<unnamed>'}"
            )
        self._nodes[node.label] = node
        for child in node.children:
            self._index_nodes(child)

    # -- basic accessors -----------------------------------------------------
    @property
    def root(self) -> HierarchyNode:
        return self._root

    @property
    def height(self) -> int:
        """Maximum depth of any node (root has depth 0)."""
        return self._height

    @property
    def labels(self) -> list[str]:
        """All node labels."""
        return list(self._nodes)

    def __contains__(self, label: object) -> bool:
        return label in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def node(self, label: str) -> HierarchyNode:
        """The node with the given label."""
        try:
            return self._nodes[str(label)]
        except KeyError:
            raise HierarchyError(
                f"value {label!r} is not part of hierarchy "
                f"{self.attribute or '<unnamed>'}"
            ) from None

    def leaves(self, label: str | None = None) -> list[str]:
        """Leaf labels under ``label`` (or under the root)."""
        start = self._root if label is None else self.node(label)
        result: list[str] = []
        stack = [start]
        while stack:
            current = stack.pop()
            if current.is_leaf:
                result.append(current.label)
            else:
                stack.extend(current.children)
        return result

    def leaf_count(self, label: str | None = None) -> int:
        """Number of leaves under ``label`` (cached)."""
        node = self._root if label is None else self.node(label)
        if node._leaf_count is None:
            if node.is_leaf:
                node._leaf_count = 1
            else:
                node._leaf_count = sum(
                    self.leaf_count(child.label) for child in node.children
                )
        return node._leaf_count

    def parent(self, label: str) -> str | None:
        """Label of the parent node, or ``None`` for the root."""
        node = self.node(label)
        return node.parent.label if node.parent else None

    def children(self, label: str) -> list[str]:
        return [child.label for child in self.node(label).children]

    def ancestors(self, label: str, include_self: bool = False) -> list[str]:
        """Ancestor labels from the node (exclusive by default) up to the root."""
        node = self.node(label)
        result = [node.label] if include_self else []
        while node.parent is not None:
            node = node.parent
            result.append(node.label)
        return result

    def depth(self, label: str) -> int:
        return self.node(label).depth

    def level(self, label: str) -> int:
        """Generalization level of a node: 0 for leaves, ``height`` for the root.

        Levels are counted as distance from the *deepest* leaf in the
        hierarchy, so climbing one edge always increases the level by one.
        """
        return self._height - self.node(label).depth

    def is_leaf(self, label: str) -> bool:
        return self.node(label).is_leaf

    # -- generalization primitives ---------------------------------------------
    def generalize(self, value: str, steps: int = 1) -> str:
        """Replace ``value`` by its ancestor ``steps`` levels up (capped at root)."""
        node = self.node(str(value))
        for _ in range(steps):
            if node.parent is None:
                break
            node = node.parent
        return node.label

    def generalize_to_level(self, value: str, level: int) -> str:
        """Full-domain generalization of ``value`` to the given level.

        Level 0 returns the value itself; each increment climbs one edge; the
        result never climbs past the root.  This is the mapping Incognito and
        the full-subtree algorithm apply uniformly to a whole column.
        """
        if level < 0:
            raise HierarchyError("generalization level must be non-negative")
        node = self.node(str(value))
        target_depth = max(self._height - level, 0)
        while node.parent is not None and node.depth > target_depth:
            node = node.parent
        return node.label

    def lowest_common_ancestor(self, values: Iterable[str]) -> str:
        """Label of the lowest common ancestor of ``values``."""
        values = [str(v) for v in values]
        if not values:
            raise HierarchyError("cannot take the LCA of an empty set of values")
        ancestor_paths = []
        for value in values:
            path = list(reversed(self.ancestors(value, include_self=True)))
            ancestor_paths.append(path)  # root .. value
        lca = ancestor_paths[0][0]
        for depth in range(min(len(path) for path in ancestor_paths)):
            candidate = ancestor_paths[0][depth]
            if all(path[depth] == candidate for path in ancestor_paths):
                lca = candidate
            else:
                break
        return lca

    def is_ancestor(self, ancestor: str, descendant: str) -> bool:
        """Whether ``ancestor`` lies on the path from ``descendant`` to the root."""
        if ancestor == descendant:
            return True
        return ancestor in self.ancestors(descendant)

    def covers(self, general: str, specific: str) -> bool:
        """Alias of :meth:`is_ancestor` (reads better in constraint code)."""
        return self.is_ancestor(general, specific)

    # -- traversal ---------------------------------------------------------------
    def iter_nodes(self) -> Iterator[HierarchyNode]:
        """All nodes, in depth-first pre-order."""
        stack = [self._root]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def nodes_at_depth(self, depth: int) -> list[str]:
        return [node.label for node in self.iter_nodes() if node.depth == depth]

    def to_mapping_rows(self) -> list[list[str]]:
        """One row per leaf: ``[leaf, parent, ..., root]`` (hierarchy file format)."""
        rows = []
        for leaf in sorted(self.leaves()):
            rows.append([leaf] + self.ancestors(leaf))
        return rows


class HierarchyBuilder:
    """Incrementally construct a :class:`Hierarchy`.

    The builder enforces that every node has a single parent and that labels
    are unique, then produces an immutable :class:`Hierarchy`.
    """

    def __init__(self, root_label: str = "*", attribute: str = ""):
        self.attribute = attribute
        self._root = HierarchyNode(root_label)
        self._nodes: dict[str, HierarchyNode] = {root_label: self._root}

    @property
    def root_label(self) -> str:
        return self._root.label

    def add(self, label: str, parent: str) -> "HierarchyBuilder":
        """Add node ``label`` as a child of ``parent`` (which must exist)."""
        label = str(label)
        parent = str(parent)
        if label in self._nodes:
            raise HierarchyError(f"node {label!r} already exists")
        if parent not in self._nodes:
            raise HierarchyError(f"parent node {parent!r} does not exist")
        parent_node = self._nodes[parent]
        node = HierarchyNode(label, parent_node)
        parent_node.children.append(node)
        self._nodes[label] = node
        return self

    def add_path(self, labels: Sequence[str]) -> "HierarchyBuilder":
        """Add a root-to-leaf path ``[child-of-root, ..., leaf]``, reusing
        already existing prefixes."""
        parent = self._root.label
        for label in labels:
            label = str(label)
            if label not in self._nodes:
                self.add(label, parent)
            elif self._nodes[label].parent is not self._nodes[parent]:
                raise HierarchyError(
                    f"node {label!r} already exists with a different parent"
                )
            parent = label
        return self

    def set_interval(self, label: str, low: float, high: float) -> "HierarchyBuilder":
        """Attach numeric bounds to a node (used for numeric hierarchies)."""
        if label not in self._nodes:
            raise HierarchyError(f"node {label!r} does not exist")
        self._nodes[label].interval = (float(low), float(high))
        return self

    def build(self) -> Hierarchy:
        return Hierarchy(self._root, attribute=self.attribute)
