"""Unit tests for the execution runner (`repro.engine.runner`).

Covers mode resolution (including the legacy ``parallel=True`` alias and the
unknown-mode error), order preservation across all three backends, the
empty/single-task shortcuts, ``max_workers`` validation, and the clear error
process mode raises for unpicklable workers.
"""

from __future__ import annotations

import os
import threading
import time

import pytest

from repro.engine.pool import WorkerPool, validate_max_workers
from repro.engine.runner import EXECUTION_MODES, resolve_mode, run_many
from repro.exceptions import ConfigurationError, TaskError


# Module-level workers: process mode must be able to pickle them.
def _square(value: int) -> int:
    return value * value


def _slow_identity(value: float) -> float:
    # Later tasks finish first unless the backend preserves submission order.
    time.sleep(0.05 / (1.0 + value))
    return value


def _explode(value):  # pragma: no cover - must never be called
    raise AssertionError("worker must not run for an empty task list")


class TestResolveMode:
    def test_defaults_to_sequential(self):
        assert resolve_mode() == "sequential"

    def test_legacy_parallel_flag_is_thread_alias(self):
        assert resolve_mode(parallel=True) == "thread"

    @pytest.mark.parametrize("mode", EXECUTION_MODES)
    def test_explicit_modes_pass_through(self, mode):
        assert resolve_mode(mode=mode) == mode

    def test_explicit_mode_wins_over_legacy_flag(self):
        assert resolve_mode(parallel=True, mode="sequential") == "sequential"
        assert resolve_mode(parallel=True, mode="process") == "process"

    @pytest.mark.parametrize("mode", ["threads", "parallel", "", "PROCESS"])
    def test_unknown_mode_raises_configuration_error(self, mode):
        with pytest.raises(ConfigurationError, match="unknown execution mode"):
            resolve_mode(mode=mode)


class TestRunMany:
    @pytest.mark.parametrize("mode", EXECUTION_MODES)
    def test_empty_tasks_shortcut(self, mode):
        assert run_many([], _explode, mode=mode) == []

    @pytest.mark.parametrize("mode", EXECUTION_MODES)
    def test_single_task_runs_in_this_process(self, mode):
        # The one-task shortcut never pays pool startup: even in process
        # mode the worker executes in the calling process.
        assert run_many([os.getpid()], _same_pid, mode=mode) == [True]

    def test_iterable_tasks_are_accepted(self):
        assert run_many(iter(range(4)), _square) == [0, 1, 4, 9]

    @pytest.mark.parametrize("mode", EXECUTION_MODES)
    def test_order_preserved(self, mode):
        values = [3.0, 0.0, 2.0, 1.0, 4.0]
        assert run_many(values, _slow_identity, mode=mode, max_workers=2) == values

    def test_thread_mode_actually_uses_threads(self):
        seen: set[str] = set()

        def worker(value):
            seen.add(threading.current_thread().name)
            time.sleep(0.02)
            return value

        run_many(list(range(4)), worker, mode="thread", max_workers=2)
        assert len(seen) > 1

    def test_process_mode_computes_results(self):
        assert run_many([1, 2, 3], _square, mode="process", max_workers=2) == [1, 4, 9]

    @pytest.mark.parametrize("bad_workers", [0, -1, -8])
    @pytest.mark.parametrize("mode", EXECUTION_MODES)
    def test_nonpositive_max_workers_rejected(self, mode, bad_workers):
        with pytest.raises(ConfigurationError, match="max_workers"):
            run_many([1, 2], _square, mode=mode, max_workers=bad_workers)

    def test_max_workers_one_is_allowed(self):
        assert run_many([1, 2], _square, mode="thread", max_workers=1) == [1, 4]
        assert validate_max_workers(1) is None
        assert validate_max_workers(None) is None

    def test_unpicklable_worker_raises_clear_error(self):
        with pytest.raises(ConfigurationError, match="module-level function"):
            # repro: allow[REP006] -- deliberately unpicklable: tests the error
            run_many([1, 2], lambda value: value, mode="process")

    def test_unpicklable_worker_error_names_the_worker(self):
        def local_closure(value):
            return value

        with pytest.raises(ConfigurationError, match="picklable worker"):
            # repro: allow[REP006] -- deliberately unpicklable: tests the error
            run_many([1, 2], local_closure, mode="process")

    def test_unpicklable_task_raises_clear_error(self):
        tasks = [(1, threading.Lock()), (2, threading.Lock())]
        with pytest.raises(ConfigurationError, match="could not pickle a task"):
            run_many(tasks, _square, mode="process")

    def test_worker_type_error_surfaces_with_task_identity(self):
        # A genuine TypeError raised *by the worker* must not be mislabelled
        # as a pickling problem: it surfaces as a TaskError naming the failed
        # task, with the original TypeError chained as __cause__.
        with pytest.raises(TaskError, match="task 0") as excinfo:
            run_many([1, 2], _raise_type_error, mode="process")
        error = excinfo.value
        assert error.task_index == 0
        assert error.attempts == 1
        assert error.backend == "process"
        assert isinstance(error.__cause__, TypeError)
        assert "boom-from-the-worker" in str(error.__cause__)

    def test_explicit_pool_is_used_and_survives(self):
        with WorkerPool(max_workers=1) as pool:
            assert run_many([1, 2, 3], _square, mode="process", pool=pool) == [1, 4, 9]
            # The pool stays open for further calls (persistent workers).
            assert run_many([4, 5], _square, mode="process", pool=pool) == [16, 25]
        with pytest.raises(ConfigurationError, match="closed"):
            pool.map(_square, [1, 2])


def _same_pid(parent_pid: int) -> bool:
    return os.getpid() == parent_pid


def _raise_type_error(value):
    raise TypeError("boom-from-the-worker")
