"""Tests for utility constraints and policies."""

import pytest

from repro.exceptions import PolicyError
from repro.policies import UtilityConstraint, UtilityPolicy, generalized_label


class TestGeneralizedLabel:
    def test_singleton_keeps_item_name(self):
        assert generalized_label(["a"]) == "a"

    def test_group_label_is_sorted_and_parenthesised(self):
        assert generalized_label(["c", "a", "b"]) == "(a,b,c)"


class TestUtilityConstraint:
    def test_label(self):
        assert UtilityConstraint(["b", "a"]).label == "(a,b)"

    def test_empty_rejected(self):
        with pytest.raises(PolicyError):
            UtilityConstraint([])

    def test_contains(self):
        constraint = UtilityConstraint(["a", "b"])
        assert "a" in constraint
        assert "z" not in constraint


class TestUtilityPolicy:
    def test_overlapping_constraints_rejected(self):
        with pytest.raises(PolicyError):
            UtilityPolicy([["a", "b"], ["b", "c"]])

    def test_constraint_for_and_covered_items(self):
        policy = UtilityPolicy([["a", "b"], ["c"]])
        assert policy.constraint_for("a").items == frozenset({"a", "b"})
        assert policy.constraint_for("z") is None
        assert policy.covered_items == {"a", "b", "c"}

    def test_allowed_generalizations(self):
        policy = UtilityPolicy([["a", "b"], ["c"]])
        options = policy.allowed_generalizations("a")
        assert options[0] == frozenset({"a"})
        assert frozenset({"a", "b"}) in options
        # Singleton constraints and uncovered items only allow themselves.
        assert policy.allowed_generalizations("c") == [frozenset({"c"})]
        assert policy.allowed_generalizations("z") == [frozenset({"z"})]

    def test_permits(self):
        policy = UtilityPolicy([["a", "b"], ["c", "d"]])
        assert policy.permits(["a"])
        assert policy.permits(["a", "b"])
        assert not policy.permits(["a", "c"])
        assert not policy.permits(["a", "z"])

    def test_label_for_delegates(self):
        policy = UtilityPolicy([["a", "b"]])
        assert policy.label_for(["b", "a"]) == "(a,b)"
