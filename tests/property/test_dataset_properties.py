"""Property-based tests for the dataset model and its CSV round trip."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import Attribute, Dataset, Schema, read_csv_text, write_csv_text

# Restricted alphabets keep generated values CSV- and item-separator-safe,
# matching what the loaders document (items must not contain the separator).
category_values = st.text(alphabet="abcdefXYZ", min_size=1, max_size=8)
item_values = st.text(alphabet="ijklmn0123", min_size=1, max_size=6)

records = st.fixed_dictionaries(
    {
        "Age": st.integers(min_value=0, max_value=120),
        "City": category_values,
        "Items": st.sets(item_values, min_size=0, max_size=5),
    }
)


def make_dataset(rows) -> Dataset:
    schema = Schema(
        [
            Attribute.numeric("Age"),
            Attribute.categorical("City"),
            Attribute.transaction("Items"),
        ]
    )
    return Dataset(schema, rows)


class TestDatasetInvariants:
    @given(rows=st.lists(records, min_size=1, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_group_by_partitions_all_records(self, rows):
        dataset = make_dataset(rows)
        groups = dataset.group_by(["Age", "City"])
        indices = sorted(index for members in groups.values() for index in members)
        assert indices == list(range(len(dataset)))

    @given(rows=st.lists(records, min_size=1, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_to_rows_round_trip(self, rows):
        dataset = make_dataset(rows)
        rebuilt = Dataset.from_rows(dataset.schema, dataset.to_rows())
        assert rebuilt == dataset

    @given(rows=st.lists(records, min_size=1, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_copy_is_independent(self, rows):
        dataset = make_dataset(rows)
        clone = dataset.copy()
        clone.set_value(0, "Age", 999)
        assert dataset[0]["Age"] != 999 or rows[0]["Age"] == 999

    @given(rows=st.lists(records, min_size=1, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_item_universe_is_union_of_itemsets(self, rows):
        dataset = make_dataset(rows)
        expected = set()
        for row in rows:
            expected.update(row["Items"])
        assert dataset.item_universe() == expected


class TestCsvRoundTripProperties:
    @given(rows=st.lists(records, min_size=1, max_size=25))
    @settings(max_examples=50, deadline=None)
    def test_write_then_read_preserves_values(self, rows):
        dataset = make_dataset(rows)
        text = write_csv_text(dataset)
        loaded = read_csv_text(
            text, schema=dataset.schema, transaction_columns=["Items"]
        )
        assert len(loaded) == len(dataset)
        for original, reloaded in zip(dataset, loaded):
            assert reloaded["Age"] == original["Age"]
            assert reloaded["City"] == original["City"]
            assert reloaded["Items"] == original["Items"]
