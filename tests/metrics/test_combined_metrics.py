"""Tests for combined RT utility metrics."""

import pytest

from repro.exceptions import DatasetError
from repro.metrics import rt_utility


class TestRtUtility:
    def test_identity_has_zero_utility_loss(self, toy_dataset):
        utility = rt_utility(toy_dataset, toy_dataset)
        assert utility.relational_gcp == pytest.approx(0.0)
        assert utility.transaction_ul == pytest.approx(0.0)
        assert utility.combined == pytest.approx(0.0)

    def test_weight_validation(self, toy_dataset):
        with pytest.raises(DatasetError):
            rt_utility(toy_dataset, toy_dataset, weight=1.5)

    def test_combined_is_convex_combination(self, toy_dataset):
        anonymized = toy_dataset.copy()
        for index in range(len(anonymized)):
            anonymized.set_value(index, "Age", "[25-58]")
            anonymized.set_value(index, "Items", [])
        low_weight = rt_utility(toy_dataset, anonymized, weight=0.0)
        high_weight = rt_utility(toy_dataset, anonymized, weight=1.0)
        assert low_weight.combined == pytest.approx(low_weight.transaction_ul)
        assert high_weight.combined == pytest.approx(high_weight.relational_gcp)

    def test_as_dict_round_trip(self, toy_dataset):
        utility = rt_utility(toy_dataset, toy_dataset, weight=0.3)
        data = utility.as_dict()
        assert set(data) == {"relational_gcp", "transaction_ul", "combined", "weight"}
        assert data["weight"] == 0.3
