"""Exception hierarchy for the SECRETA reproduction library.

Every error raised deliberately by the library derives from
:class:`SecretaError`, so callers can guard an entire workflow with a single
``except SecretaError`` clause while still being able to distinguish
configuration problems from data problems or privacy violations.
"""

from __future__ import annotations


class SecretaError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class DatasetError(SecretaError):
    """A dataset is malformed or an operation on it is invalid."""


class SchemaError(DatasetError):
    """An attribute reference does not match the dataset schema."""


class HierarchyError(SecretaError):
    """A generalization hierarchy is malformed or incomplete."""


class PolicyError(SecretaError):
    """A privacy or utility policy is malformed or unsatisfiable."""


class QueryError(SecretaError):
    """A query or query workload is malformed."""


class ConfigurationError(SecretaError):
    """An anonymization configuration is invalid for the selected algorithm."""


class ExecutionError(SecretaError):
    """The execution engine could not complete a task run."""


class TaskError(ExecutionError):
    """One task of a fan-out failed after exhausting its execution policy.

    Carries the identity the bare executor errors used to lose: which task
    failed (``task_index``), how often it was tried (``attempts``) and on
    which backend it last ran (``backend``).  The original worker exception
    is chained as ``__cause__`` when one exists.
    """

    def __init__(
        self,
        message: str,
        task_index: int = -1,
        attempts: int = 0,
        backend: str = "",
    ) -> None:
        super().__init__(message)
        self.task_index = task_index
        self.attempts = attempts
        self.backend = backend


class CheckpointError(ExecutionError):
    """The durable checkpoint store could not be used as configured.

    Raised for *caller* mistakes — malformed keys, key/task count mismatch,
    unpicklable values, undigestable key material.  Damage to the store
    itself (torn writes, bit rot, stale formats) deliberately never raises:
    it degrades to a recompute with a structured warning on the
    :class:`~repro.engine.resilience.RunReport`.
    """


class AlgorithmError(SecretaError):
    """An anonymization algorithm failed to produce a valid result."""


class PrivacyViolationError(AlgorithmError):
    """An anonymization result does not satisfy its declared privacy model."""


class ExportError(SecretaError):
    """Exporting datasets, results or figures to disk failed."""


class AnalysisError(SecretaError):
    """The static-analysis tooling was misconfigured or misused."""
