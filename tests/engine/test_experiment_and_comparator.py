"""Tests for varying-parameter execution and the Comparison mode."""

import pytest

from repro.datasets import generate_rt_dataset
from repro.engine import (
    MethodComparator,
    ParameterSweep,
    VaryingParameterExperiment,
    run_many,
    rt_config,
    transaction_config,
)
from repro.exceptions import ConfigurationError


def _add_one(value):
    """Module-level worker: process mode must be able to pickle it."""
    return value + 1


@pytest.fixture(scope="module")
def rt():
    return generate_rt_dataset(n_records=90, n_items=15, seed=29)


class TestParameterSweep:
    def test_from_range_inclusive(self):
        sweep = ParameterSweep.from_range("k", 2, 10, 2)
        assert sweep.values == (2, 4, 6, 8, 10)
        assert len(sweep) == 5

    def test_from_range_float_parameter(self):
        sweep = ParameterSweep.from_range("delta", 0.0, 1.0, 0.25)
        assert sweep.values == (0.0, 0.25, 0.5, 0.75, 1.0)

    def test_k_values_are_integers(self):
        sweep = ParameterSweep.from_range("k", 2, 4, 1)
        assert all(isinstance(value, int) for value in sweep.values)

    def test_invalid_ranges(self):
        with pytest.raises(ConfigurationError):
            ParameterSweep.from_range("k", 5, 2, 1)
        with pytest.raises(ConfigurationError):
            ParameterSweep.from_range("k", 2, 5, 0)
        with pytest.raises(ConfigurationError):
            ParameterSweep("fanout", (1, 2))
        with pytest.raises(ConfigurationError):
            ParameterSweep("k", ())


class TestVaryingParameterExperiment:
    def test_sweep_produces_series_per_indicator(self, rt):
        experiment = VaryingParameterExperiment(rt)
        sweep = experiment.run(
            transaction_config("apriori", m=1), ParameterSweep("k", (2, 5, 10))
        )
        assert sweep.values == [2, 5, 10]
        assert set(sweep.series) >= {"are", "runtime_seconds", "transaction_ul"}
        assert len(sweep.series["are"]) == 3
        assert len(sweep.reports) == 3

    def test_utility_loss_grows_with_k(self, rt):
        experiment = VaryingParameterExperiment(rt)
        sweep = experiment.run(
            transaction_config("apriori", m=2), ParameterSweep("k", (2, 25))
        )
        ul = sweep.series["transaction_ul"].y
        assert ul[1] >= ul[0] - 1e-9

    def test_rt_delta_sweep(self, rt):
        experiment = VaryingParameterExperiment(rt)
        sweep = experiment.run(
            rt_config("cluster", "apriori", k=3, m=1),
            ParameterSweep("delta", (0.2, 1.0)),
        )
        assert "relational_gcp" in sweep.series
        assert len(sweep.series["relational_gcp"]) == 2


class TestComparator:
    def test_comparison_report_structure(self, rt):
        comparator = MethodComparator(rt)
        configurations = [
            transaction_config("apriori", m=1, label="AA"),
            transaction_config("lra", m=1, label="LRA"),
        ]
        report = comparator.compare(configurations, ParameterSweep("k", (2, 6)))
        assert report.parameter == "k"
        assert len(report.sweeps) == 2
        assert {s.configuration["label"] for s in report.sweeps} == {"AA", "LRA"}
        are_series = report.series_for("are")
        assert len(are_series) == 2
        table = report.table("are")
        assert len(table) == 2
        assert set(table[0]) == {"k", "AA", "LRA"}

    def test_empty_configuration_list_rejected(self, rt):
        with pytest.raises(ConfigurationError):
            MethodComparator(rt).compare([], ParameterSweep("k", (2,)))

    def test_fixed_value_comparison(self, rt):
        comparator = MethodComparator(rt)
        report = comparator.compare_fixed(
            [transaction_config("apriori", m=1, label="AA")], "k", 4
        )
        assert report.values == [4]

    def test_parallel_execution_matches_sequential(self, rt):
        configurations = [
            transaction_config("apriori", m=1, label="AA"),
            transaction_config("vpa", m=1, label="VPA"),
        ]
        sweep = ParameterSweep("k", (3,))
        sequential = MethodComparator(rt, parallel=False).compare(configurations, sweep)
        parallel = MethodComparator(rt, parallel=True).compare(configurations, sweep)
        assert [s.configuration["label"] for s in sequential.sweeps] == [
            s.configuration["label"] for s in parallel.sweeps
        ]
        for left, right in zip(sequential.sweeps, parallel.sweeps):
            assert left.series["transaction_ul"].y == pytest.approx(
                right.series["transaction_ul"].y
            )


class TestRunner:
    def test_run_many_preserves_order(self):
        results = run_many([3, 1, 2], lambda value: value * 10, parallel=False)
        assert results == [30, 10, 20]

    def test_run_many_parallel(self):
        results = run_many(list(range(20)), lambda value: value + 1, parallel=True, max_workers=4)
        assert results == list(range(1, 21))

    def test_run_many_empty(self):
        assert run_many([], lambda value: value) == []

    def test_run_many_process_mode(self):
        results = run_many(list(range(8)), _add_one, mode="process", max_workers=2)
        assert results == list(range(1, 9))

    def test_run_many_mode_overrides_parallel_flag(self):
        assert run_many([1, 2], _add_one, parallel=True, mode="sequential") == [2, 3]

    def test_run_many_rejects_unknown_mode(self):
        with pytest.raises(ConfigurationError):
            run_many([1], _add_one, mode="gpu")


class TestProcessExecution:
    def test_process_sweep_matches_sequential(self, rt):
        config = transaction_config("apriori", m=1)
        sweep = ParameterSweep("k", (2, 5))
        sequential = VaryingParameterExperiment(rt).run(config, sweep)
        processed = VaryingParameterExperiment(rt, mode="process", max_workers=2).run(
            config, sweep
        )
        assert processed.values == sequential.values
        assert processed.series["transaction_ul"].y == pytest.approx(
            sequential.series["transaction_ul"].y
        )
        assert processed.series["are"].y == pytest.approx(sequential.series["are"].y)

    def test_process_comparison_matches_sequential(self, rt):
        configurations = [
            transaction_config("apriori", m=1, label="AA"),
            transaction_config("vpa", m=1, label="VPA"),
        ]
        sweep = ParameterSweep("k", (3,))
        sequential = MethodComparator(rt).compare(configurations, sweep)
        processed = MethodComparator(rt, mode="process", max_workers=2).compare(
            configurations, sweep
        )
        assert [s.configuration["label"] for s in processed.sweeps] == [
            s.configuration["label"] for s in sequential.sweeps
        ]
        for left, right in zip(sequential.sweeps, processed.sweeps):
            assert left.series["transaction_ul"].y == pytest.approx(
                right.series["transaction_ul"].y
            )
