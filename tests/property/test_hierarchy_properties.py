"""Property-based tests for hierarchies, lattices and interval labels."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hierarchy import (
    GeneralizationLattice,
    build_categorical_hierarchy,
    build_numeric_hierarchy,
    format_interval,
    parse_interval,
)

value_names = st.lists(
    st.text(alphabet="abcdefghij", min_size=1, max_size=6),
    min_size=1,
    max_size=40,
    unique=True,
)
numeric_domains = st.lists(
    st.integers(min_value=-1000, max_value=1000), min_size=1, max_size=60, unique=True
)
fanouts = st.integers(min_value=2, max_value=5)


class TestCategoricalHierarchyProperties:
    @given(values=value_names, fanout=fanouts)
    @settings(max_examples=50, deadline=None)
    def test_values_are_exactly_the_leaves(self, values, fanout):
        hierarchy = build_categorical_hierarchy(values, fanout=fanout)
        assert sorted(hierarchy.leaves()) == sorted(values)

    @given(values=value_names, fanout=fanouts)
    @settings(max_examples=50, deadline=None)
    def test_every_value_generalizes_to_the_root(self, values, fanout):
        hierarchy = build_categorical_hierarchy(values, fanout=fanout)
        for value in values:
            assert hierarchy.generalize_to_level(value, hierarchy.height) == "*"

    @given(values=value_names, fanout=fanouts)
    @settings(max_examples=50, deadline=None)
    def test_generalization_widens_monotonically(self, values, fanout):
        hierarchy = build_categorical_hierarchy(values, fanout=fanout)
        value = sorted(values)[0]
        previous = 0
        for level in range(hierarchy.height + 1):
            label = hierarchy.generalize_to_level(value, level)
            width = hierarchy.leaf_count(label)
            assert width >= previous
            previous = width

    @given(values=value_names, fanout=fanouts)
    @settings(max_examples=50, deadline=None)
    def test_lca_is_a_common_ancestor(self, values, fanout):
        hierarchy = build_categorical_hierarchy(values, fanout=fanout)
        ordered = sorted(values)
        first, last = ordered[0], ordered[-1]
        ancestor = hierarchy.lowest_common_ancestor([first, last])
        assert hierarchy.is_ancestor(ancestor, first)
        assert hierarchy.is_ancestor(ancestor, last)


class TestNumericHierarchyProperties:
    @given(values=numeric_domains, fanout=fanouts)
    @settings(max_examples=50, deadline=None)
    def test_root_interval_spans_the_domain(self, values, fanout):
        hierarchy = build_numeric_hierarchy(values, fanout=fanout)
        low, high = hierarchy.node(hierarchy.root.label).interval
        assert low == float(min(values))
        assert high == float(max(values))

    @given(values=numeric_domains, fanout=fanouts)
    @settings(max_examples=50, deadline=None)
    def test_child_intervals_are_nested_in_parents(self, values, fanout):
        hierarchy = build_numeric_hierarchy(values, fanout=fanout)
        for node in hierarchy.iter_nodes():
            if node.parent is None or node.interval is None or node.parent.interval is None:
                continue
            assert node.parent.interval[0] <= node.interval[0]
            assert node.interval[1] <= node.parent.interval[1]


class TestIntervalLabelProperties:
    @given(
        low=st.integers(min_value=-10_000, max_value=10_000),
        span=st.integers(min_value=0, max_value=10_000),
    )
    def test_format_parse_round_trip(self, low, span):
        label = format_interval(low, low + span)
        assert parse_interval(label) == (float(low), float(low + span))


class TestLatticeProperties:
    @given(values=numeric_domains, categories=value_names, fanout=fanouts)
    @settings(max_examples=25, deadline=None)
    def test_lattice_size_matches_enumeration(self, values, categories, fanout):
        hierarchies = {
            "N": build_numeric_hierarchy(values, fanout=fanout),
            "C": build_categorical_hierarchy(categories, fanout=fanout),
        }
        lattice = GeneralizationLattice(hierarchies, ["N", "C"])
        assert lattice.size() == len(list(lattice.iter_nodes()))

    @given(values=numeric_domains, categories=value_names, fanout=fanouts)
    @settings(max_examples=25, deadline=None)
    def test_successors_differ_in_exactly_one_level(self, values, categories, fanout):
        hierarchies = {
            "N": build_numeric_hierarchy(values, fanout=fanout),
            "C": build_categorical_hierarchy(categories, fanout=fanout),
        }
        lattice = GeneralizationLattice(hierarchies, ["N", "C"])
        for successor in lattice.successors(lattice.bottom):
            differences = sum(
                1 for a, b in zip(successor, lattice.bottom) if a != b
            )
            assert differences == 1
