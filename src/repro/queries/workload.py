"""Query workloads: collections of COUNT queries plus their generation and I/O.

The Queries Editor of SECRETA lets the user load a workload from a file, edit
it, or have one generated.  Workloads are the input of the Average Relative
Error (ARE) utility indicator.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.datasets.dataset import Dataset
from repro.exceptions import QueryError
from repro.queries.query import Query, RangeCondition, ValueCondition


class QueryWorkload:
    """An ordered collection of :class:`~repro.queries.query.Query` objects."""

    def __init__(self, queries: Iterable[Query], name: str = "workload"):
        self._queries = list(queries)
        self.name = name
        if not self._queries:
            raise QueryError("a query workload needs at least one query")

    def __len__(self) -> int:
        return len(self._queries)

    def __iter__(self) -> Iterator[Query]:
        return iter(self._queries)

    def __getitem__(self, index: int) -> Query:
        return self._queries[index]

    def __repr__(self) -> str:
        return f"QueryWorkload(name={self.name!r}, queries={len(self._queries)})"

    @property
    def queries(self) -> list[Query]:
        return list(self._queries)

    def add(self, query: Query) -> None:
        """Append a query (the Queries Editor's "insert directly" action)."""
        self._queries.append(query)

    def remove(self, index: int) -> None:
        """Delete the query at ``index``; the last query cannot be removed.

        Draining a workload to zero queries would break the constructor
        invariant every consumer relies on (ARE divides by the workload
        size), so the Queries Editor's delete action refuses it.
        """
        try:
            self._queries[index]
        except IndexError:
            raise QueryError(f"no query at index {index}") from None
        if len(self._queries) == 1:
            raise QueryError("cannot remove the last query of a workload")
        del self._queries[index]

    # -- serialisation ----------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "queries": [query.to_dict() for query in self._queries],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "QueryWorkload":
        queries = [Query.from_dict(entry) for entry in data.get("queries", [])]
        return cls(queries, name=data.get("name", "workload"))

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2), encoding="utf-8")
        return path

    @classmethod
    def load(cls, path: str | Path) -> "QueryWorkload":
        path = Path(path)
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except OSError as error:
            raise QueryError(f"cannot read workload file {path}: {error}") from error
        except json.JSONDecodeError as error:
            raise QueryError(f"workload file {path} is not valid JSON: {error}") from error
        return cls.from_dict(data)


def generate_query_workload(
    dataset: Dataset,
    n_queries: int = 50,
    relational_attributes: Sequence[str] | None = None,
    n_items: int = 2,
    range_width: float = 0.25,
    seed: int = 0,
    name: str | None = None,
    rng: np.random.Generator | None = None,
) -> QueryWorkload:
    """Generate a workload of COUNT queries grounded in the data.

    Each query is seeded from a randomly drawn record so that its exact answer
    on the original data is rarely zero: numeric predicates are ranges of
    width ``range_width`` (fraction of the attribute's domain) centred on the
    record's value, categorical predicates accept the record's value, and item
    predicates require up to ``n_items`` items from the record's basket.

    A drawn record can yield no predicates at all (all chosen relational
    values ``None`` and an empty basket); such draws are redrawn, up to a
    bounded ``10 * n_queries`` total attempts, so sparse datasets still get
    full-size workloads.  Only when the attempt budget is exhausted may the
    workload come back smaller than ``n_queries`` (it is never empty — that
    raises :class:`~repro.exceptions.QueryError`).

    Pass an explicit ``numpy.random.Generator`` as ``rng`` to draw from a
    shared stream instead of the per-``seed`` one (``seed`` is then ignored).
    """
    if n_queries <= 0:
        raise QueryError("n_queries must be positive")
    if not 0 < range_width <= 1:
        raise QueryError("range_width must be in (0, 1]")
    rng = rng if rng is not None else np.random.default_rng(seed)

    if relational_attributes is None:
        relational_attributes = [
            attribute.name
            for attribute in dataset.schema.relational
            if attribute.quasi_identifier
        ]
    transaction_names = dataset.schema.transaction_names
    transaction_attribute = transaction_names[0] if transaction_names else None
    if not relational_attributes and transaction_attribute is None:
        raise QueryError("the dataset has no attributes to query")

    domains = {
        name: dataset.domain(name)
        for name in relational_attributes
    }

    queries = []
    n_records = len(dataset)
    if n_records == 0:
        raise QueryError("cannot generate queries for an empty dataset")
    attempts = 0
    max_attempts = 10 * n_queries
    while len(queries) < n_queries and attempts < max_attempts:
        attempts += 1
        record = dataset[int(rng.integers(n_records))]
        conditions = {}
        # Use one or two relational predicates per query, like the paper's
        # example workloads (selective but not degenerate).
        if relational_attributes:
            chosen = rng.choice(
                relational_attributes,
                size=min(len(relational_attributes), int(rng.integers(1, 3))),
                replace=False,
            )
            for attribute in chosen:
                value = record[attribute]
                if value is None:
                    continue
                if dataset.schema[attribute].is_numeric:
                    domain = domains[attribute]
                    width = max(1.0, (max(domain) - min(domain)) * range_width)
                    conditions[attribute] = RangeCondition(
                        low=float(value) - width / 2, high=float(value) + width / 2
                    )
                else:
                    conditions[attribute] = ValueCondition([value])
        items: list[str] = []
        if transaction_attribute is not None:
            basket = sorted(record[transaction_attribute])
            if basket:
                size = min(len(basket), max(1, int(rng.integers(1, n_items + 1))))
                items = list(rng.choice(basket, size=size, replace=False))
        if not conditions and not items:
            continue
        queries.append(
            Query(
                conditions=conditions,
                items=items,
                transaction_attribute=transaction_attribute,
            )
        )
    if not queries:
        raise QueryError("workload generation produced no queries")
    return QueryWorkload(queries, name=name or f"workload-{dataset.name}")
