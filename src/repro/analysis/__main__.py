"""Entry point for ``python -m repro.analysis``."""

from __future__ import annotations

import os
import sys

from repro.analysis.cli import main

if __name__ == "__main__":
    try:
        code = main()
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; redirect stdout to devnull
        # so the interpreter's shutdown flush does not crash again.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        code = 0
    raise SystemExit(code)
