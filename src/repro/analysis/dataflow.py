"""Per-function dataflow: CFG, reaching definitions, escape/taint lattices.

This is the analysis half of the interprocedural engine (the structural half
— call resolution — lives in :mod:`repro.analysis.graph`).  It provides:

* a **control-flow graph** per function (:func:`build_cfg`) with explicit
  exception edges: every statement that may raise gets an edge to the
  innermost handler/finally (or to the synthetic raise-exit), which is what
  lets REP009 reason about "a crash between acquisition and cleanup";
* **reaching definitions** (:class:`ReachingDefinitions`) over that CFG,
  used by REP011 to trace a kernel argument back to its construction sites;
* a **resource escape analysis** (:class:`ResourceAnalysis`) — a small
  may-analysis over the lattice ``ACQ < {REL, ESC}`` per resource token,
  where a token still ``ACQ`` at any exit is a potential leak;
* **function summaries** (:class:`FunctionSummary`) — which parameters a
  function releases/adopts, whether it returns a fresh resource or a
  snapshot, which datasets it mutates, and which dtypes its parameters must
  carry — propagated over the call graph to a fixpoint
  (:func:`compute_summaries`) so the per-function analyses see through
  helper calls.

All of it is pure ``ast`` + stdlib, like the rest of the linter.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Iterator, Mapping, Sequence

from repro.analysis.graph import CallSite, FunctionInfo, ProjectGraph, call_name
from repro.exceptions import AnalysisError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.analysis.core import Project
    from repro.analysis.manifest import InvariantManifest

# ---------------------------------------------------------------------------
# Control-flow graph


@dataclass
class CFGNode:
    """One node of a function's control-flow graph."""

    index: int
    stmt: ast.stmt | None  # None for synthetic entry/exit/dispatch nodes
    kind: str  # "entry" | "exit" | "raise" | "stmt" | "branch" | "with" | "dispatch"
    succ: list[int] = field(default_factory=list)
    #: Exception successors: taken when the statement raises.
    exc: list[int] = field(default_factory=list)


class CFG:
    """Control-flow graph of one function body.

    Three synthetic nodes always exist: ``entry`` (0), ``exit`` (1, normal
    returns and fall-through) and ``raise_exit`` (2, uncaught exceptions).
    """

    def __init__(self) -> None:
        self.nodes: list[CFGNode] = []
        self.entry = self._new(None, "entry")
        self.exit = self._new(None, "exit")
        self.raise_exit = self._new(None, "raise")

    def _new(self, stmt: ast.stmt | None, kind: str) -> int:
        node = CFGNode(index=len(self.nodes), stmt=stmt, kind=kind)
        self.nodes.append(node)
        return node.index

    def node(self, index: int) -> CFGNode:
        return self.nodes[index]

    def statement_nodes(self) -> Iterator[CFGNode]:
        for node in self.nodes:
            if node.stmt is not None:
                yield node


@dataclass
class _LoopContext:
    head: int
    breaks: list[int] = field(default_factory=list)


class _CFGBuilder:
    def __init__(self, fn: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        self.cfg = CFG()
        self.fn = fn

    def build(self) -> CFG:
        frontier = self._body(
            self.fn.body, {self.cfg.entry}, self.cfg.raise_exit, None
        )
        for index in frontier:
            self.cfg.node(index).succ.append(self.cfg.exit)
        return self.cfg

    # -- helpers --------------------------------------------------------------
    def _statement(
        self,
        stmt: ast.stmt,
        kind: str,
        frontier: set[int],
        exc_target: int,
    ) -> int:
        index = self.cfg._new(stmt, kind)
        for pred in frontier:
            self.cfg.node(pred).succ.append(index)
        # Only the parts this node itself executes decide whether it can
        # raise: an If's body belongs to the body's own nodes.
        if any(_may_raise(part) for part in executed_parts(self.cfg.node(index))):
            self.cfg.node(index).exc.append(exc_target)
        return index

    def _body(
        self,
        stmts: Sequence[ast.stmt],
        frontier: set[int],
        exc_target: int,
        loop: _LoopContext | None,
    ) -> set[int]:
        for stmt in stmts:
            if not frontier:
                break  # unreachable code after return/raise/break
            frontier = self._dispatch(stmt, frontier, exc_target, loop)
        return frontier

    def _dispatch(
        self,
        stmt: ast.stmt,
        frontier: set[int],
        exc_target: int,
        loop: _LoopContext | None,
    ) -> set[int]:
        cfg = self.cfg
        if isinstance(stmt, ast.If):
            test = self._statement(stmt, "branch", frontier, exc_target)
            then = self._body(stmt.body, {test}, exc_target, loop)
            orelse = self._body(stmt.orelse, {test}, exc_target, loop)
            return then | orelse
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            head = self._statement(stmt, "branch", frontier, exc_target)
            context = _LoopContext(head=head)
            body = self._body(stmt.body, {head}, exc_target, context)
            for index in body:
                cfg.node(index).succ.append(head)
            after = self._body(stmt.orelse, {head}, exc_target, loop)
            return after | set(context.breaks) | ({head} if not stmt.orelse else set())
        if isinstance(stmt, ast.Try):
            return self._try(stmt, frontier, exc_target, loop)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            enter = self._statement(stmt, "with", frontier, exc_target)
            return self._body(stmt.body, {enter}, exc_target, loop)
        if isinstance(stmt, ast.Return):
            index = self._statement(stmt, "stmt", frontier, exc_target)
            cfg.node(index).succ.append(cfg.exit)
            return set()
        if isinstance(stmt, ast.Raise):
            index = self._statement(stmt, "stmt", frontier, exc_target)
            cfg.node(index).succ.append(exc_target)
            return set()
        if isinstance(stmt, ast.Break):
            index = self._statement(stmt, "stmt", frontier, exc_target)
            if loop is not None:
                loop.breaks.append(index)
            return set()
        if isinstance(stmt, ast.Continue):
            index = self._statement(stmt, "stmt", frontier, exc_target)
            if loop is not None:
                cfg.node(index).succ.append(loop.head)
            return set()
        # Plain statement (including nested defs, which are opaque here).
        return {self._statement(stmt, "stmt", frontier, exc_target)}

    def _try(
        self,
        stmt: ast.Try,
        frontier: set[int],
        exc_target: int,
        loop: _LoopContext | None,
    ) -> set[int]:
        cfg = self.cfg
        dispatch = cfg._new(None, "dispatch")
        inner_target = dispatch if (stmt.handlers or stmt.finalbody) else exc_target
        body = self._body(stmt.body, frontier, inner_target, loop)
        normal = self._body(stmt.orelse, body, exc_target, loop) if stmt.orelse else body

        handler_exits: set[int] = set()
        handler_exc = exc_target
        if stmt.finalbody:
            handler_exc = dispatch  # handler failure still runs finally
        for handler in stmt.handlers:
            handler_exits |= self._body(
                handler.body, {dispatch}, handler_exc, loop
            )

        if stmt.finalbody:
            sources = normal | handler_exits | {dispatch}
            final = self._body(stmt.finalbody, sources, exc_target, loop)
            # The exception-continuation path: finally may complete and the
            # pending exception keeps propagating.
            for index in final:
                cfg.node(index).exc.append(exc_target)
            return final
        # No finally: an exception no handler matches keeps propagating.
        cfg.node(dispatch).succ.append(exc_target)
        return normal | handler_exits


def build_cfg(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> CFG:
    """Build the control-flow graph of one function body."""
    return _CFGBuilder(fn).build()


def executed_parts(node: CFGNode) -> list[ast.AST]:
    """The sub-trees a CFG node itself executes.

    A compound statement's node only evaluates its header (an If's test, a
    For's iterable, a With's context expressions); the body statements have
    their own nodes.  Simple statements execute whole.
    """
    stmt = node.stmt
    if stmt is None:
        return []
    if node.kind == "branch":
        if isinstance(stmt, (ast.If, ast.While)):
            return [stmt.test]
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return [stmt.iter]
    if node.kind == "with" and isinstance(stmt, (ast.With, ast.AsyncWith)):
        return [item.context_expr for item in stmt.items]
    return [stmt]


def _may_raise(node: ast.AST) -> bool:
    """Whether executing a sub-tree can transfer control to a handler.

    Conservative but useful approximation: calls and asserts raise; pure
    assignments, constants and name rebindings do not.  This is what makes
    ``x = acquire(); x.close()`` clean while ``x = acquire(); work(); ...``
    needs a ``finally``.
    """
    if isinstance(node, (ast.Assert, ast.Raise)):
        return True
    for inner in _walk_executed(node):
        if isinstance(inner, (ast.Call, ast.Await, ast.Yield, ast.YieldFrom)):
            return True
    return False


def _walk_executed(root: ast.AST) -> Iterator[ast.AST]:
    """Walk an AST without descending into nested function/class bodies."""
    stack: list[ast.AST] = [root]
    first = True
    while stack:
        node = stack.pop()
        if not first and isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)
        ):
            continue
        first = False
        yield node
        stack.extend(ast.iter_child_nodes(node))


def walk_executed(root: ast.AST) -> Iterator[ast.AST]:
    """Public walk over the nodes a statement executes (nested defs opaque)."""
    return _walk_executed(root)


def calls_in(stmt: ast.AST) -> Iterator[ast.Call]:
    """Calls executed by a statement (nested defs/lambdas excluded)."""
    for node in _walk_executed(stmt):
        if isinstance(node, ast.Call):
            yield node


def binding_key(expr: ast.expr) -> str | None:
    """The alias-tracking key of an expression: a name or a dotted chain.

    ``seg`` -> ``"seg"``; ``self._segment`` -> ``"self._segment"``;
    anything else (subscripts, calls) -> ``None``.
    """
    if isinstance(expr, ast.Name):
        return expr.id
    parts: list[str] = []
    current: ast.expr = expr
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None


# ---------------------------------------------------------------------------
# Generic forward fixpoint


def forward_fixpoint(
    cfg: CFG,
    initial: dict[str, object],
    transfer: "TransferFn",
) -> dict[int, dict[str, object]]:
    """Run a forward dataflow to fixpoint; returns the IN state per node.

    ``transfer(node, state)`` returns ``(normal_out, exception_out)``.
    States are mappings var -> frozenset of facts; join is pointwise union.
    """
    in_states: dict[int, dict[str, object]] = {cfg.entry: initial}
    worklist: list[int] = [cfg.entry]
    while worklist:
        index = worklist.pop()
        node = cfg.node(index)
        state = in_states.get(index, {})
        normal, exceptional = transfer(node, state)
        for target, out in [(succ, normal) for succ in node.succ] + [
            (succ, exceptional) for succ in node.exc
        ]:
            merged = _join(in_states.get(target), out)
            if merged != in_states.get(target):
                in_states[target] = merged
                worklist.append(target)
    return in_states


if TYPE_CHECKING:
    from typing import Callable

    TransferFn = Callable[
        [CFGNode, dict[str, object]],
        tuple[dict[str, object], dict[str, object]],
    ]


def _join(
    left: dict[str, object] | None, right: dict[str, object]
) -> dict[str, object]:
    if left is None:
        return dict(right)
    merged = dict(left)
    for key, value in right.items():
        existing = merged.get(key)
        if existing is None:
            merged[key] = value
        elif isinstance(existing, frozenset) and isinstance(value, frozenset):
            merged[key] = existing | value
        elif existing != value:
            merged[key] = existing if existing is not None else value
    return merged


# ---------------------------------------------------------------------------
# Reaching definitions


class ReachingDefinitions:
    """Which assignment nodes may define each variable at each point."""

    def __init__(self, cfg: CFG) -> None:
        self.cfg = cfg
        self._defs_by_node: dict[int, frozenset[str]] = {}
        for node in cfg.statement_nodes():
            names = frozenset(self._defined_names(node))
            if names:
                self._defs_by_node[node.index] = names
        self._in_states = forward_fixpoint(cfg, {}, self._transfer)

    def _defined_names(self, node: CFGNode) -> Iterator[str]:
        stmt = node.stmt
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                yield from _target_names(target)
        elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
            yield from _target_names(stmt.target)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            yield from _target_names(stmt.target)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                if item.optional_vars is not None:
                    yield from _target_names(item.optional_vars)
        for part in executed_parts(node):
            for inner in _walk_executed(part):
                if isinstance(inner, ast.NamedExpr) and isinstance(
                    inner.target, ast.Name
                ):
                    yield inner.target.id

    def _transfer(
        self, node: CFGNode, state: dict[str, object]
    ) -> tuple[dict[str, object], dict[str, object]]:
        defined = self._defs_by_node.get(node.index)
        if not defined:
            return state, state
        out = dict(state)
        for name in defined:
            out[name] = frozenset({node.index})
        # Exception edges carry the pre-state: the assignment may not have
        # completed when the right-hand side raised.
        return out, state

    def definitions_at(self, node_index: int) -> dict[str, frozenset[int]]:
        """var -> node indices of assignments reaching the node's entry."""
        state = self._in_states.get(node_index, {})
        return {
            name: value
            for name, value in state.items()
            if isinstance(value, frozenset)
        }

    def defining_statements(
        self, node_index: int, name: str
    ) -> list[ast.stmt]:
        result = []
        for index in self.definitions_at(node_index).get(name, frozenset()):
            stmt = self.cfg.node(index).stmt
            if stmt is not None:
                result.append(stmt)
        return result


def _target_names(target: ast.expr) -> Iterator[str]:
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _target_names(element)
    elif isinstance(target, ast.Starred):
        yield from _target_names(target.value)


# ---------------------------------------------------------------------------
# Function summaries


@dataclass(frozen=True)
class FunctionSummary:
    """What a function does to its arguments, as seen from call sites."""

    #: Parameter indices guaranteed a cleanup sink on every path.
    releases: frozenset[int] = frozenset()
    #: Parameter indices whose ownership the function takes (stored into a
    #: container, an attribute, or re-escaped) — the caller's duty ends.
    escapes: frozenset[int] = frozenset()
    #: Parameter index -> attribute name for ``self.<attr> = param`` adoption.
    adopts: Mapping[int, str] = field(default_factory=dict)
    #: The function returns a freshly acquired resource.
    returns_resource: bool = False
    #: Parameter indices the function (transitively) mutates.
    mutates: frozenset[int] = frozenset()
    #: The function returns a snapshot-derived value (REP010 sources).
    returns_snapshot: bool = False
    #: The function returns a nested function or lambda (REP006: the result
    #: can never pickle under spawn).
    returns_nested_function: bool = False
    #: Parameter index -> dtypes required downstream (REP011 contracts).
    dtype_requirements: Mapping[int, frozenset[str]] = field(default_factory=dict)


class SummaryTable:
    """Fixpoint summaries for every function in the project graph."""

    def __init__(self) -> None:
        self._summaries: dict[str, FunctionSummary] = {}

    def get(self, fid: str | None) -> FunctionSummary | None:
        if fid is None:
            return None
        return self._summaries.get(fid)

    def set(self, fid: str, summary: FunctionSummary) -> bool:
        """Store a summary; True when it changed."""
        changed = self._summaries.get(fid) != summary
        self._summaries[fid] = summary
        return changed

    def __len__(self) -> int:
        return len(self._summaries)

    def items(self) -> Iterator[tuple[str, FunctionSummary]]:
        yield from self._summaries.items()


@dataclass(frozen=True)
class ResourceModel:
    """The manifest-derived vocabulary of the resource analysis."""

    #: Call names that acquire a leakable resource (beyond the built-in
    #: ``SharedMemory(create=True)`` detection).
    acquisition_calls: frozenset[str] = frozenset()
    #: Names that release: as a method on the resource (``seg.close()``) or
    #: as a callable taking it (``_unlink_quietly(tmp)``, ``os.replace(tmp, t)``).
    cleanup_sinks: frozenset[str] = frozenset({"close", "unlink"})

    def is_acquisition(
        self, call: ast.Call, summary: FunctionSummary | None
    ) -> bool:
        if summary is not None and summary.returns_resource:
            return True
        name = call_name(call)
        if name in self.acquisition_calls:
            return True
        if name == "SharedMemory":
            for keyword in call.keywords:
                if keyword.arg == "create":
                    value = keyword.value
                    return isinstance(value, ast.Constant) and value.value is True
        return False


def resource_model(manifest: "InvariantManifest") -> ResourceModel:
    sinks = frozenset(manifest.rep009_cleanup_sinks) or frozenset(
        {"close", "unlink"}
    )
    return ResourceModel(
        acquisition_calls=frozenset(manifest.rep009_acquisition_calls),
        cleanup_sinks=sinks,
    )


# Resource token facts.
ACQ = "ACQ"
REL = "REL"
ESC = "ESC"

_STATUS_PREFIX = "!tok:"


@dataclass
class ResourceOutcome:
    """Result of one per-function resource analysis."""

    #: token -> union of statuses over every exit (normal and raising).
    exit_status: dict[int, frozenset[str]]
    #: token -> acquisition call (None for parameter tokens).
    acquisitions: dict[int, ast.Call | None]
    #: token -> binding keys that still hold it at some exit.
    exit_bindings: dict[int, set[str]]
    #: tokens that escaped through a ``return``.
    returned: set[int]
    #: token -> ``self.<attr>`` adoption key observed at any point.
    adopted: dict[int, str]

    def leaked(self, token: int) -> bool:
        return ACQ in self.exit_status.get(token, frozenset())


class ResourceAnalysis:
    """May-leak analysis over one function's CFG.

    Tokens are integers: parameter tokens are their parameter index;
    acquisition tokens are allocated per acquisition call expression.  The
    state maps binding keys to token sets and, under reserved ``!tok:n``
    keys, each token to its status set — so one :func:`forward_fixpoint`
    drives both.
    """

    def __init__(
        self,
        info: FunctionInfo,
        graph: ProjectGraph,
        summaries: SummaryTable,
        model: ResourceModel,
        track_params: bool = True,
    ) -> None:
        self.info = info
        self.graph = graph
        self.summaries = summaries
        self.model = model
        self.track_params = track_params
        self.cfg = build_cfg(info.node)
        self._tokens: dict[int, int] = {}  # id(ast.Call) -> token
        self._acquisitions: dict[int, ast.Call | None] = {}
        self._next_token = len(info.params)
        self._returned: set[int] = set()
        self._adopted: dict[int, str] = {}
        self._sites_by_call: dict[int, CallSite] = {
            id(site.call): site for site in graph.call_sites(info.id)
        }

    # -- public ---------------------------------------------------------------
    def run(self) -> ResourceOutcome:
        initial: dict[str, object] = {}
        if self.track_params:
            for index, name in enumerate(self.info.params):
                if name in ("self", "cls"):
                    continue
                initial[name] = frozenset({index})
                initial[f"{_STATUS_PREFIX}{index}"] = frozenset({ACQ})
                self._acquisitions[index] = None
        in_states = forward_fixpoint(self.cfg, initial, self._transfer)
        exit_status: dict[int, frozenset[str]] = {}
        exit_bindings: dict[int, set[str]] = {}
        for exit_index in (self.cfg.exit, self.cfg.raise_exit):
            state = in_states.get(exit_index)
            if state is None:
                continue
            for key, value in state.items():
                if not isinstance(value, frozenset):
                    continue
                if key.startswith(_STATUS_PREFIX):
                    token = int(key[len(_STATUS_PREFIX) :])
                    exit_status[token] = exit_status.get(token, frozenset()) | value
                else:
                    for token_obj in value:
                        token = int(token_obj)
                        exit_bindings.setdefault(token, set()).add(key)
        return ResourceOutcome(
            exit_status=exit_status,
            acquisitions=dict(self._acquisitions),
            exit_bindings=exit_bindings,
            returned=set(self._returned),
            adopted=dict(self._adopted),
        )

    # -- state helpers --------------------------------------------------------
    def _token_for(self, call: ast.Call) -> int:
        token = self._tokens.get(id(call))
        if token is None:
            token = self._next_token
            self._next_token += 1
            self._tokens[id(call)] = token
            self._acquisitions[token] = call
        return token

    @staticmethod
    def _tokens_of(state: dict[str, object], key: str | None) -> frozenset[int]:
        if key is None:
            return frozenset()
        value = state.get(key)
        if isinstance(value, frozenset):
            return frozenset(int(token) for token in value)
        return frozenset()

    @staticmethod
    def _set_status(
        state: dict[str, object], token: int, facts: frozenset[str]
    ) -> None:
        state[f"{_STATUS_PREFIX}{token}"] = facts

    @staticmethod
    def _mark(state: dict[str, object], tokens: Iterable[int], fact: str) -> None:
        for token in tokens:
            key = f"{_STATUS_PREFIX}{token}"
            current = state.get(key)
            if isinstance(current, frozenset) and ACQ in current:
                state[key] = (current - {ACQ}) | {fact}
            elif current is None:
                state[key] = frozenset({fact})

    # -- transfer -------------------------------------------------------------
    def _transfer(
        self, node: CFGNode, state: dict[str, object]
    ) -> tuple[dict[str, object], dict[str, object]]:
        stmt = node.stmt
        if stmt is None:
            return state, state
        out = dict(state)
        released = dict(state)  # pre-state plus releases only (exception edge)
        parts = executed_parts(node)

        # 1. releases and ownership transfers performed by the calls.  The
        # exception edge also sees them: a sink that was *attempted* counts
        # (its own failure is the sink's problem, not a leak).
        for part in parts:
            for call in calls_in(part):
                for target_state in (out, released):
                    self._apply_call_effects(call, target_state)

        # 2. acquisitions + binding updates (normal edge only).
        if node.kind == "with" and isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                for call in calls_in(item.context_expr):
                    if self._acquires(call):
                        token = self._token_for(call)
                        # A context manager owns its resource: __exit__ runs
                        # on every path out of the with-block.
                        self._set_status(out, token, frozenset({REL}))
                if item.optional_vars is not None:
                    for name in _target_names(item.optional_vars):
                        out.pop(name, None)
        elif isinstance(stmt, ast.Assign):
            self._transfer_assign(stmt.targets, stmt.value, out)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._transfer_assign([stmt.target], stmt.value, out)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._escape_value(stmt.value, out, returned=True)
                self._acquire_into_escape(stmt.value, out, returned=True)
        elif isinstance(stmt, ast.Expr):
            self._acquire_unbound(stmt.value, out)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                key = binding_key(target)
                if key is not None:
                    out.pop(key, None)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            for name in _target_names(stmt.target):
                out.pop(name, None)
            for part in parts:
                self._acquire_unbound(part, out)
        elif isinstance(stmt, (ast.Raise, ast.Assert)):
            pass
        else:
            for part in parts:
                self._acquire_unbound(part, out)
        return out, released

    def _acquires(self, call: ast.Call) -> bool:
        site = self._sites_by_call.get(id(call))
        summary = self.summaries.get(site.callee) if site is not None else None
        if site is not None and site.constructs is not None:
            # Constructors own what they acquire; the instance's lifecycle
            # is the class's problem (REP009 checks adoption separately).
            return False
        return self.model.is_acquisition(call, summary)

    def _transfer_assign(
        self,
        targets: Sequence[ast.expr],
        value: ast.expr,
        out: dict[str, object],
    ) -> None:
        # Determine the token set carried by the right-hand side.
        direct_call = value if isinstance(value, ast.Call) else None
        source_key = binding_key(value)
        tokens: frozenset[int] = frozenset()
        if direct_call is not None and self._acquires(direct_call):
            tokens = frozenset({self._token_for(direct_call)})
            for token in tokens:
                self._set_status(out, token, frozenset({ACQ}))
        elif source_key is not None:
            tokens = self._tokens_of(out, source_key)
        else:
            # Nested acquisitions not consumed by a summary stay unbound.
            self._acquire_unbound(value, out, skip=direct_call)

        for target in targets:
            if isinstance(target, (ast.Tuple, ast.List)) and direct_call is not None and tokens:
                # ``fd, name = mkstemp()``: every facet of the acquisition
                # shares the token — releasing any facet releases it.
                for element in target.elts:
                    key = binding_key(element)
                    if key is not None:
                        out[key] = tokens
                continue
            key = binding_key(target)
            if key is None:
                # Subscript/starred target: ownership moves to a container.
                self._mark(out, tokens, ESC)
                continue
            if key != source_key:
                out[key] = tokens if tokens else frozenset()
            if "." in key and tokens:
                attr = key.split(".", 1)[1]
                root = key.split(".", 1)[0]
                if root in ("self", "cls"):
                    for token in tokens:
                        self._adopted[token] = attr

    def _acquire_unbound(
        self,
        root: ast.AST,
        out: dict[str, object],
        skip: ast.Call | None = None,
    ) -> None:
        for call in calls_in(root):
            if call is skip or not self._acquires(call):
                continue
            token = self._token_for(call)
            consumed = False
            # The acquisition may be an argument of a consuming call.
            for outer in calls_in(root):
                if outer is call:
                    continue
                if any(arg is call for arg in outer.args) or any(
                    kw.value is call for kw in outer.keywords
                ):
                    if self._consumes_argument(outer, call):
                        consumed = True
            if not consumed:
                current = out.get(f"{_STATUS_PREFIX}{token}")
                if not isinstance(current, frozenset) or ACQ not in current:
                    if current is None or current == frozenset():
                        self._set_status(out, token, frozenset({ACQ}))

    def _consumes_argument(self, outer: ast.Call, arg: ast.Call) -> bool:
        name = call_name(outer)
        if name in self.model.cleanup_sinks or name == "finalize":
            return True
        site = self._sites_by_call.get(id(outer))
        summary = self.summaries.get(site.callee) if site is not None else None
        if summary is None:
            return False
        index = self._argument_index(outer, site, arg)
        if index is None:
            return False
        return index in summary.releases or index in summary.escapes

    def _argument_index(
        self, call: ast.Call, site: CallSite | None, arg: ast.expr
    ) -> int | None:
        offset = 0
        if site is not None and site.callee is not None:
            callee = self.graph.function(site.callee)
            if (
                callee is not None
                and callee.owner_class
                and isinstance(call.func, ast.Attribute)
            ):
                offset = 1  # self is parameter 0
            if site.constructs is not None:
                offset = 1
        for position, value in enumerate(call.args):
            if value is arg:
                return position + offset
        if site is not None and site.callee is not None:
            callee = self.graph.function(site.callee)
            if callee is not None:
                for keyword in call.keywords:
                    if keyword.value is arg and keyword.arg is not None:
                        return callee.param_index(keyword.arg)
        return None

    def _escape_value(
        self, value: ast.expr, out: dict[str, object], returned: bool
    ) -> None:
        elements = (
            value.elts if isinstance(value, (ast.Tuple, ast.List)) else [value]
        )
        for element in elements:
            key = binding_key(element)
            tokens = self._tokens_of(out, key)
            self._mark(out, tokens, ESC)
            if returned:
                self._returned |= tokens

    def _acquire_into_escape(
        self, value: ast.expr, out: dict[str, object], returned: bool
    ) -> None:
        for call in calls_in(value):
            if self._acquires(call):
                token = self._token_for(call)
                self._set_status(out, token, frozenset({ESC}))
                if returned:
                    self._returned.add(token)

    def _apply_call_effects(self, call: ast.Call, state: dict[str, object]) -> None:
        name = call_name(call)
        # Method-style sink: ``seg.close()`` / ``self._segment.unlink()``.
        if isinstance(call.func, ast.Attribute) and name in self.model.cleanup_sinks:
            receiver = binding_key(call.func.value)
            self._mark(state, self._tokens_of(state, receiver), REL)
        # Callable-style sink and finalize guards: every bound argument.
        if name in self.model.cleanup_sinks or name == "finalize":
            for value in [*call.args, *(kw.value for kw in call.keywords)]:
                self._mark(state, self._tokens_of(state, binding_key(value)), REL)
        # Summary-based effects of resolved project callees.
        site = self._sites_by_call.get(id(call))
        summary = self.summaries.get(site.callee) if site is not None else None
        if summary is None or (not summary.releases and not summary.escapes):
            return
        for value in [*call.args, *(kw.value for kw in call.keywords)]:
            tokens = self._tokens_of(state, binding_key(value))
            if not tokens:
                continue
            index = self._argument_index(call, site, value)
            if index is None:
                continue
            if index in summary.releases:
                self._mark(state, tokens, REL)
            elif index in summary.escapes:
                self._mark(state, tokens, ESC)
        # The receiver of a resolved method call is parameter 0.
        if isinstance(call.func, ast.Attribute):
            receiver_tokens = self._tokens_of(state, binding_key(call.func.value))
            if receiver_tokens:
                if 0 in summary.releases:
                    self._mark(state, receiver_tokens, REL)
                elif 0 in summary.escapes:
                    self._mark(state, receiver_tokens, ESC)


# ---------------------------------------------------------------------------
# Summary computation


def _mentions_any(fn: ast.AST, names: frozenset[str]) -> bool:
    for node in _walk_executed(fn):
        if isinstance(node, ast.Attribute) and node.attr in names:
            return True
        if isinstance(node, ast.Name) and node.id in names:
            return True
    return False


def _resource_relevant(
    info: FunctionInfo, model: ResourceModel, interesting: frozenset[str]
) -> bool:
    """Cheap pre-filter: can this function's summary be non-trivial?"""
    fn = info.node
    if _mentions_any(fn, interesting):
        return True
    params = frozenset(info.params) - {"self", "cls"}
    if not params:
        return False
    for node in _walk_executed(fn):
        if isinstance(node, ast.Return) and node.value is not None:
            if _mentions_any(node.value, params):
                return True
        if isinstance(node, ast.Assign):
            if any(not isinstance(t, ast.Name) for t in node.targets) and _mentions_any(
                node.value, params
            ):
                return True
    return False


def _mutates_summary(
    info: FunctionInfo,
    graph: ProjectGraph,
    summaries: SummaryTable,
    mutators: frozenset[str],
) -> frozenset[int]:
    result: set[int] = set()
    params = {name: index for index, name in enumerate(info.params)}
    for site in graph.call_sites(info.id):
        call = site.call
        name = site.name
        receiver = (
            binding_key(call.func.value)
            if isinstance(call.func, ast.Attribute)
            else None
        )
        if name in mutators and receiver is not None:
            root = receiver.split(".", 1)[0]
            if root in params:
                result.add(params[root])
        summary = summaries.get(site.callee)
        if summary is not None and summary.mutates:
            callee = graph.function(site.callee) if site.callee else None
            offset = (
                1
                if callee is not None
                and callee.owner_class
                and isinstance(call.func, ast.Attribute)
                else 0
            )
            if offset and receiver is not None and 0 in summary.mutates:
                root = receiver.split(".", 1)[0]
                if root in params:
                    result.add(params[root])
            for position, value in enumerate(call.args):
                if position + offset in summary.mutates and isinstance(
                    value, ast.Name
                ):
                    if value.id in params:
                        result.add(params[value.id])
    return frozenset(result)


def _returns_snapshot(
    info: FunctionInfo,
    graph: ProjectGraph,
    summaries: SummaryTable,
    sources: frozenset[str],
) -> bool:
    snapshot_calls: set[int] = set()
    for site in graph.call_sites(info.id):
        summary = summaries.get(site.callee)
        if site.name in sources or (
            summary is not None and summary.returns_snapshot
        ):
            snapshot_calls.add(id(site.call))
    if not snapshot_calls:
        return False
    snapshot_vars: set[str] = set()
    for node in _walk_executed(info.node):
        if isinstance(node, ast.Assign):
            if any(
                id(call) in snapshot_calls for call in calls_in(node.value)
            ):
                for target in node.targets:
                    snapshot_vars.update(_target_names(target))
    for node in _walk_executed(info.node):
        if isinstance(node, ast.Return) and node.value is not None:
            for inner in _walk_executed(node.value):
                if isinstance(inner, ast.Call) and id(inner) in snapshot_calls:
                    return True
                if isinstance(inner, ast.Name) and inner.id in snapshot_vars:
                    return True
    return False


def _returns_nested_function(info: FunctionInfo) -> bool:
    nested = {
        node.name
        for node in ast.walk(info.node)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        and node is not info.node
    }
    for node in _walk_executed(info.node):
        if isinstance(node, ast.Return) and node.value is not None:
            value = node.value
            if isinstance(value, ast.Lambda):
                return True
            if isinstance(value, ast.Name) and value.id in nested:
                return True
    return False


def _dtype_requirements(
    info: FunctionInfo,
    graph: ProjectGraph,
    summaries: SummaryTable,
    contracts: Mapping[str, Mapping[int, frozenset[str]]],
) -> dict[int, frozenset[str]]:
    result: dict[int, frozenset[str]] = {}
    params = {name: index for index, name in enumerate(info.params)}
    for site in graph.call_sites(info.id):
        if site.callee is None:
            continue
        required = contracts.get(site.callee)
        if required is None:
            summary = summaries.get(site.callee)
            required = summary.dtype_requirements if summary is not None else None
        if not required:
            continue
        callee = graph.function(site.callee)
        offset = (
            1
            if callee is not None
            and callee.owner_class
            and isinstance(site.call.func, ast.Attribute)
            else 0
        )
        for position, value in enumerate(site.call.args):
            requirement = required.get(position + offset)
            if requirement and isinstance(value, ast.Name) and value.id in params:
                index = params[value.id]
                result[index] = result.get(index, frozenset()) | requirement
        for keyword in site.call.keywords:
            if keyword.arg is None or callee is None:
                continue
            target = callee.param_index(keyword.arg)
            if target is None:
                continue
            requirement = required.get(target)
            if (
                requirement
                and isinstance(keyword.value, ast.Name)
                and keyword.value.id in params
            ):
                index = params[keyword.value.id]
                result[index] = result.get(index, frozenset()) | requirement
    return result


def compute_summaries(
    graph: ProjectGraph,
    manifest: "InvariantManifest",
    max_passes: int = 12,
) -> SummaryTable:
    """Propagate per-function summaries over the call graph to a fixpoint."""
    model = resource_model(manifest)
    mutators = frozenset(manifest.rep010_mutators)
    sources = frozenset(manifest.rep010_snapshot_sources)
    contracts = dtype_contracts(graph, manifest)
    interesting = (
        model.cleanup_sinks
        | model.acquisition_calls
        | frozenset({"finalize", "SharedMemory"})
    )
    table = SummaryTable()
    relevant = {
        fid: _resource_relevant(info, model, interesting)
        for fid, info in graph.functions.items()
    }
    for _ in range(max_passes):
        changed = False
        for fid, info in graph.functions.items():
            releases: frozenset[int] = frozenset()
            escapes: frozenset[int] = frozenset()
            adopts: dict[int, str] = {}
            returns_resource = False
            if relevant[fid]:
                outcome = ResourceAnalysis(
                    info, graph, table, model, track_params=True
                ).run()
                n_params = len(info.params)
                for index, name in enumerate(info.params):
                    if name in ("self", "cls"):
                        continue
                    status = outcome.exit_status.get(index, frozenset({ACQ}))
                    if ACQ not in status and REL in status:
                        releases |= {index}
                    elif ACQ not in status and ESC in status:
                        escapes |= {index}
                    if index in outcome.adopted:
                        adopts[index] = outcome.adopted[index]
                        escapes |= {index}
                returns_resource = any(
                    token >= n_params for token in outcome.returned
                )
            summary = FunctionSummary(
                releases=releases,
                escapes=escapes,
                adopts=adopts,
                returns_resource=returns_resource,
                mutates=_mutates_summary(info, graph, table, mutators),
                returns_snapshot=_returns_snapshot(info, graph, table, sources),
                returns_nested_function=_returns_nested_function(info),
                dtype_requirements=_dtype_requirements(
                    info, graph, table, contracts
                ),
            )
            if table.set(fid, summary):
                changed = True
        if not changed:
            break
    return table


def dtype_contracts(
    graph: ProjectGraph, manifest: "InvariantManifest"
) -> dict[str, dict[int, frozenset[str]]]:
    """Resolve the manifest's REP011 contracts to function ids + indices."""
    contracts: dict[str, dict[int, frozenset[str]]] = {}
    for contract in manifest.dtype_contracts:
        info = graph.function(contract.function)
        if info is None:
            continue
        index = info.param_index(contract.param)
        if index is None:
            continue
        per_function = contracts.setdefault(contract.function, {})
        per_function[index] = per_function.get(index, frozenset()) | frozenset(
            {contract.dtype}
        )
    return contracts


def project_summaries(project: "Project") -> SummaryTable:
    """The cached summary table of one analysis run."""
    graph = project.graph()
    if graph.summary_cache is None:
        graph.summary_cache = compute_summaries(graph, project.manifest)
    if not isinstance(graph.summary_cache, SummaryTable):
        raise AnalysisError("summary cache holds a non-summary value")
    return graph.summary_cache


# ---------------------------------------------------------------------------
# NumPy dtype facts (REP011)

_CONSTRUCTOR_DTYPE_POSITION = {
    "zeros": 1,
    "ones": 1,
    "empty": 1,
    "full": 2,
    "array": 1,
    "asarray": 1,
    "arange": 3,
    "fromiter": 1,
    "frombuffer": 1,
    "astype": 0,
    "view": 0,
}

_DTYPE_NAMES = frozenset(
    {
        "bool_",
        "int8",
        "int16",
        "int32",
        "int64",
        "uint8",
        "uint16",
        "uint32",
        "uint64",
        "float16",
        "float32",
        "float64",
        "complex64",
        "complex128",
    }
)


def dtype_of_expression(expr: ast.expr) -> str | None:
    """The dtype an expression constructs, when statically evident.

    Recognizes ``np.zeros(..., dtype=np.uint64)``-style constructors,
    ``x.astype("int64")`` and ``x.view(np.uint64)``; returns the canonical
    dtype name or ``None`` when unknown.
    """
    if not isinstance(expr, ast.Call):
        return None
    name = call_name(expr)
    position = _CONSTRUCTOR_DTYPE_POSITION.get(name)
    if position is None:
        return None
    dtype_expr: ast.expr | None = None
    for keyword in expr.keywords:
        if keyword.arg == "dtype":
            dtype_expr = keyword.value
    if dtype_expr is None and position < len(expr.args):
        dtype_expr = expr.args[position]
    if dtype_expr is None:
        return None
    return _dtype_name(dtype_expr)


def _dtype_name(expr: ast.expr) -> str | None:
    if isinstance(expr, ast.Attribute) and expr.attr in _DTYPE_NAMES:
        return expr.attr
    if isinstance(expr, ast.Name) and expr.id in _DTYPE_NAMES:
        return expr.id
    if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
        return expr.value if expr.value in _DTYPE_NAMES else None
    if isinstance(expr, ast.Call) and call_name(expr) == "dtype" and expr.args:
        return _dtype_name(expr.args[0])
    return None


def dtype_of_definition(stmt: ast.stmt) -> str | None:
    """The dtype a definition statement assigns, when statically evident."""
    if isinstance(stmt, ast.Assign):
        return dtype_of_expression(stmt.value)
    if isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
        return dtype_of_expression(stmt.value)
    return None


__all__ = [
    "ACQ",
    "CFG",
    "CFGNode",
    "ESC",
    "FunctionSummary",
    "REL",
    "ReachingDefinitions",
    "ResourceAnalysis",
    "ResourceModel",
    "ResourceOutcome",
    "SummaryTable",
    "binding_key",
    "build_cfg",
    "calls_in",
    "compute_summaries",
    "dtype_contracts",
    "dtype_of_definition",
    "dtype_of_expression",
    "executed_parts",
    "forward_fixpoint",
    "project_summaries",
    "resource_model",
    "walk_executed",
]
