"""The typed-core gate: strict packages stay fully annotated.

mypy itself may not be installed in every environment (CI installs it for
the static-analysis job); the structural tests below do not depend on it
and keep the gate honest locally by checking the two things the strict
config demands — the pyproject overrides exist, and every function in the
strict packages carries complete annotations.
"""

from __future__ import annotations

import ast
import subprocess
import sys
import tomllib
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]

STRICT_PACKAGES = (
    "src/repro/columnar",
    "src/repro/index",
    "src/repro/engine",
    "src/repro/analysis",
    "src/repro/attacks",
)


def _strict_override() -> dict:
    config = tomllib.loads((REPO_ROOT / "pyproject.toml").read_text())
    overrides = config["tool"]["mypy"]["overrides"]
    for override in overrides:
        if "repro.columnar.*" in override["module"]:
            return override
    raise AssertionError("no strict override block for repro.columnar.*")


class TestMypyConfig:
    def test_pyproject_declares_the_strict_core(self):
        override = _strict_override()
        modules = set(override["module"])
        assert {
            "repro.columnar.*",
            "repro.index.*",
            "repro.engine.*",
            "repro.analysis.*",
            "repro.attacks.*",
        } <= modules

    def test_strict_flags_are_enabled(self):
        override = _strict_override()
        for flag in (
            "disallow_untyped_defs",
            "disallow_incomplete_defs",
            "check_untyped_defs",
            "strict_equality",
        ):
            assert override[flag] is True, flag


def _unannotated_defs(path: Path) -> list[str]:
    tree = ast.parse(path.read_text(), filename=str(path))
    problems = []
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        args = [
            *node.args.posonlyargs,
            *node.args.args,
            *node.args.kwonlyargs,
        ]
        missing = [
            arg.arg
            for arg in args
            if arg.annotation is None and arg.arg not in ("self", "cls")
        ]
        if node.args.vararg and node.args.vararg.annotation is None:
            missing.append("*" + node.args.vararg.arg)
        if node.args.kwarg and node.args.kwarg.annotation is None:
            missing.append("**" + node.args.kwarg.arg)
        if node.returns is None:
            missing.append("return")
        if missing:
            problems.append(f"{path}:{node.lineno} {node.name}: {missing}")
    return problems


class TestStrictPackagesAreAnnotated:
    @pytest.mark.parametrize("package", STRICT_PACKAGES)
    def test_every_def_is_fully_annotated(self, package):
        problems = []
        for path in sorted((REPO_ROOT / package).rglob("*.py")):
            problems.extend(_unannotated_defs(path))
        assert problems == []

    @pytest.mark.parametrize("package", STRICT_PACKAGES)
    def test_future_annotations_everywhere(self, package):
        missing = []
        for path in sorted((REPO_ROOT / package).rglob("*.py")):
            if "from __future__ import annotations" not in path.read_text():
                missing.append(str(path))
        assert missing == []


class TestMypyRun:
    def test_strict_core_passes_mypy(self):
        pytest.importorskip("mypy")
        result = subprocess.run(
            [sys.executable, "-m", "mypy", "src"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0, result.stdout + result.stderr
