"""Tests for privacy constraints and policies."""

import pytest

from repro.exceptions import PolicyError
from repro.policies import PrivacyConstraint, PrivacyPolicy


class TestPrivacyConstraint:
    def test_items_are_normalised_to_strings(self):
        constraint = PrivacyConstraint([1, "b"])
        assert constraint.items == frozenset({"1", "b"})

    def test_empty_constraint_rejected(self):
        with pytest.raises(PolicyError):
            PrivacyConstraint([])

    def test_iteration_is_sorted(self):
        assert list(PrivacyConstraint(["c", "a", "b"])) == ["a", "b", "c"]


class TestPrivacyPolicy:
    def test_requires_k_at_least_two(self):
        with pytest.raises(PolicyError):
            PrivacyPolicy([["a"]], k=1)

    def test_deduplicates_constraints(self):
        policy = PrivacyPolicy([["a", "b"], ["b", "a"], ["c"]], k=2)
        assert len(policy) == 2

    def test_protected_items_union(self):
        policy = PrivacyPolicy([["a", "b"], ["c"]], k=2)
        assert policy.protected_items == {"a", "b", "c"}
        assert policy.max_constraint_size() == 2

    def test_constraint_support_counts_supersets(self, simple_transactions):
        policy = PrivacyPolicy([["a", "b"]], k=2)
        constraint = policy.constraints[0]
        assert policy.constraint_support(simple_transactions, constraint) == 3

    def test_constraint_support_with_mapping_and_suppression(self, simple_transactions):
        policy = PrivacyPolicy([["a", "b"]], k=2)
        constraint = policy.constraints[0]
        # Suppressing "a" makes the constraint unsupportable.
        assert (
            policy.constraint_support(
                simple_transactions, constraint, item_mapping={"a": None}
            )
            == 0
        )

    def test_violations_and_satisfaction(self, simple_transactions):
        # "e" appears in only 2 records; with k=3 a constraint on it is violated.
        policy = PrivacyPolicy([["e"], ["a"]], k=3)
        violations = policy.violations(simple_transactions)
        assert len(violations) == 1
        violated_constraint, support = violations[0]
        assert violated_constraint.items == frozenset({"e"})
        assert support == 2
        assert not policy.is_satisfied_by(simple_transactions)

    def test_zero_support_is_not_a_violation(self, simple_transactions):
        policy = PrivacyPolicy([["missing-item"]], k=5)
        assert policy.is_satisfied_by(simple_transactions)
