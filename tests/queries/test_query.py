"""Tests for COUNT queries and their probabilistic estimation."""

import pytest

from repro.datasets import Attribute, Dataset, DatasetDomains, Schema, toy_rt_dataset
from repro.exceptions import QueryError
from repro.hierarchy import build_hierarchies_for_dataset
from repro.queries import (
    UNIVERSE_MODES,
    Query,
    RangeCondition,
    ValueCondition,
    condition_from_dict,
)


@pytest.fixture
def dataset():
    return toy_rt_dataset()


class TestConditions:
    def test_range_condition_exact_values(self):
        condition = RangeCondition(20, 30)
        assert condition.match_probability(25) == 1.0
        assert condition.match_probability(31) == 0.0
        assert condition.match_probability(None) == 0.0

    def test_range_condition_interval_overlap(self):
        condition = RangeCondition(20, 30)
        assert condition.match_probability("[20-40]") == pytest.approx(0.5)
        assert condition.match_probability("[40-60]") == 0.0
        assert condition.match_probability("[25-25]") == 1.0

    def test_range_condition_rejects_empty_range(self):
        with pytest.raises(QueryError):
            RangeCondition(5, 1)

    def test_value_condition_exact(self):
        condition = ValueCondition(["Bachelors"])
        assert condition.match_probability("Bachelors") == 1.0
        assert condition.match_probability("Masters") == 0.0

    def test_value_condition_generalized_label(self):
        condition = ValueCondition(["Bachelors"])
        # Explicit group covering 2 values, one of which matches.
        assert condition.match_probability("(Bachelors,Masters)") == pytest.approx(0.5)

    def test_value_condition_requires_values(self):
        with pytest.raises(QueryError):
            ValueCondition([])

    def test_condition_round_trip(self):
        range_condition = RangeCondition(1, 2)
        assert condition_from_dict(range_condition.to_dict()) == range_condition
        value_condition = ValueCondition(["a", "b"])
        assert condition_from_dict(value_condition.to_dict()) == value_condition
        with pytest.raises(QueryError):
            condition_from_dict({"type": "bogus"})


class TestQueryCount:
    def test_requires_some_predicate(self):
        with pytest.raises(QueryError):
            Query()

    def test_relational_count(self, dataset):
        query = Query(conditions={"Age": RangeCondition(20, 40)})
        assert query.count(dataset) == 4

    def test_item_count(self, dataset):
        query = Query(items=["bread", "milk"])
        assert query.count(dataset) == 2

    def test_combined_count(self, dataset):
        query = Query(
            conditions={"Education": ValueCondition(["HS-grad"])}, items=["wine"]
        )
        assert query.count(dataset) == 1

    def test_item_query_on_relational_dataset_raises(self, dataset):
        relational = dataset.project(["Age", "Education"])
        query = Query(items=["bread"])
        with pytest.raises(QueryError):
            query.count(relational)


class TestQueryEstimate:
    def test_estimate_equals_count_on_original_data(self, dataset):
        hierarchies = build_hierarchies_for_dataset(dataset, fanout=3)
        query = Query(
            conditions={"Age": RangeCondition(20, 40), "Education": ValueCondition(["Masters"])},
            items=["wine"],
        )
        assert query.estimate(dataset, hierarchies) == pytest.approx(query.count(dataset))

    def test_estimate_with_generalized_relational_values(self):
        schema = Schema([Attribute.categorical("Age"), Attribute.categorical("Education")])
        anonymized = Dataset(
            schema,
            [
                {"Age": "[20-29]", "Education": "Bachelors"},
                {"Age": "[30-39]", "Education": "Masters"},
            ],
        )
        query = Query(conditions={"Age": RangeCondition(20, 24.5)})
        # Uniformity: the record generalized to [20-29] matches with p=0.5.
        assert query.estimate(anonymized) == pytest.approx(0.5)

    def test_estimate_with_generalized_items(self):
        schema = Schema([Attribute.transaction("Items")])
        anonymized = Dataset(schema, [{"Items": ["(bread,milk)"]}, {"Items": ["beer"]}])
        query = Query(items=["bread"])
        assert query.estimate(anonymized) == pytest.approx(0.5)

    def test_estimate_zero_for_suppressed_items(self):
        schema = Schema([Attribute.transaction("Items")])
        anonymized = Dataset(schema, [{"Items": []}])
        query = Query(items=["bread"])
        assert query.estimate(anonymized) == 0.0

    def test_describe_mentions_all_predicates(self, dataset):
        query = Query(
            conditions={"Age": RangeCondition(20, 30), "Education": ValueCondition(["X"])},
            items=["beer"],
        )
        description = query.describe()
        assert "Age" in description
        assert "Education" in description
        assert "beer" in description

    def test_query_dict_round_trip(self, dataset):
        query = Query(
            conditions={"Age": RangeCondition(20, 30)},
            items=["beer"],
            transaction_attribute="Items",
        )
        rebuilt = Query.from_dict(query.to_dict())
        assert rebuilt.count(dataset) == query.count(dataset)
        assert rebuilt.items == query.items


class TestUniverseModes:
    """The ``"original"`` mode resolves hierarchy-free labels to the domain."""

    def test_unknown_mode_rejected(self, dataset):
        with pytest.raises(QueryError):
            Query(items=["bread"]).estimate(dataset, universe_mode="bogus")

    def test_root_items_resolve_against_item_universe(self):
        schema = Schema([Attribute.transaction("Items")])
        original = Dataset(
            schema, [{"Items": ["a", "b"]}, {"Items": ["b", "c"]}, {"Items": ["c"]}]
        )
        rooted = Dataset(schema, [{"Items": ["*"]}] * 3)
        domains = DatasetDomains.capture(original)
        query = Query(items=["b"])
        # Seed semantics: the hierarchy-free root stands for nothing.
        assert query.estimate(rooted, universe_mode="seed") == 0.0
        # Universe semantics: leaf-uniform over the 3-item universe.
        assert query.estimate(rooted, domains=domains) == pytest.approx(1.0)
        # Without a snapshot the original mode has nothing to resolve against.
        assert query.estimate(rooted) == 0.0

    def test_root_numeric_label_resolves_against_domain(self):
        schema = Schema([Attribute.numeric("Age")])
        original = Dataset(schema, [{"Age": age} for age in (20, 30, 40, 60)])
        rooted = Dataset(schema, [{"Age": "*"}] * 4)
        domains = DatasetDomains.capture(original)
        query = Query(conditions={"Age": RangeCondition(10, 50)})
        assert query.estimate(rooted, universe_mode="seed") == 0.0
        # 3 of the 4 original ages fall inside the range: 3/4 per record.
        assert query.estimate(rooted, domains=domains) == pytest.approx(3.0)
        assert query.estimate(
            rooted, domains=domains, vectorized=False
        ) == query.estimate(rooted, domains=domains)

    def test_root_relational_label_resolves_against_domain(self):
        schema = Schema([Attribute.categorical("Edu")])
        original = Dataset(schema, [{"Edu": level} for level in ("BS", "MS", "PhD")])
        rooted = Dataset(schema, [{"Edu": "*"}] * 3)
        domains = DatasetDomains.capture(original)
        query = Query(conditions={"Edu": ValueCondition(["BS"])})
        assert query.estimate(rooted, universe_mode="seed") == 0.0
        assert query.estimate(rooted, domains=domains) == pytest.approx(1.0)

    def test_group_labels_restricted_to_domain(self):
        schema = Schema([Attribute.transaction("Items")])
        original = Dataset(schema, [{"Items": ["a", "b"]}, {"Items": ["a"]}])
        # The group mentions an item the original data never contained.
        grouped = Dataset(schema, [{"Items": ["(a,b,z)"]}] * 2)
        domains = DatasetDomains.capture(original)
        query = Query(items=["a"])
        assert query.estimate(grouped, universe_mode="seed") == pytest.approx(2 / 3)
        assert query.estimate(grouped, domains=domains) == pytest.approx(1.0)

    def test_seed_mode_ignores_supplied_domains(self):
        schema = Schema([Attribute.transaction("Items")])
        original = Dataset(schema, [{"Items": ["a", "b"]}])
        rooted = Dataset(schema, [{"Items": ["*"]}])
        domains = DatasetDomains.capture(original)
        query = Query(items=["a"])
        assert (
            query.estimate(rooted, domains=domains, universe_mode="seed") == 0.0
        )

    def test_modes_are_documented_pair(self):
        assert UNIVERSE_MODES == ("original", "seed")


class TestColumnarKernel:
    """The vectorized count/estimate paths match the per-record reference."""

    def test_count_kernel_matches_scan(self, dataset):
        queries = [
            Query(conditions={"Age": RangeCondition(20, 40)}),
            Query(items=["bread", "milk"]),
            Query(
                conditions={"Education": ValueCondition(["HS-grad"])}, items=["wine"]
            ),
            Query(items=["no-such-item"]),
        ]
        for query in queries:
            assert query.count(dataset) == query.count(dataset, vectorized=False)

    def test_estimate_kernel_bit_for_bit(self, dataset):
        hierarchies = build_hierarchies_for_dataset(dataset, fanout=3)
        domains = DatasetDomains.capture(dataset)
        query = Query(
            conditions={
                "Age": RangeCondition(20, 40),
                "Education": ValueCondition(["Masters"]),
            },
            items=["wine"],
        )
        for mode in ("seed", "original"):
            kernel = query.estimate(
                dataset, hierarchies, domains=domains, universe_mode=mode
            )
            scalar = query.estimate(
                dataset,
                hierarchies,
                domains=domains,
                universe_mode=mode,
                vectorized=False,
            )
            assert kernel == scalar

    def test_kernel_multiplication_order_with_several_items(self):
        # The scalar path multiplies the whole itemset product into the
        # record probability once; folding the factors in one at a time
        # differs in the last ulp (float multiplication is not associative).
        schema = Schema(
            [Attribute.categorical("City"), Attribute.transaction("Items")]
        )
        original = Dataset(
            schema,
            [
                {"City": city, "Items": ["a", "b", "c", "d", "e"]}
                for city in ("x", "y", "z")
            ],
        )
        anonymized = Dataset(
            schema, [{"City": "*", "Items": ["(a,b,c,d,e)", "(a,c,e)"]}] * 3
        )
        domains = DatasetDomains.capture(original)
        query = Query(conditions={"City": ValueCondition(["x"])}, items=["a", "c"])
        kernel = query.estimate(anonymized, domains=domains)
        scalar = query.estimate(anonymized, domains=domains, vectorized=False)
        assert kernel == scalar  # bit-for-bit, not approximately

    def test_kernel_handles_empty_itemsets(self):
        schema = Schema([Attribute.transaction("Items")])
        anonymized = Dataset(schema, [{"Items": []}, {"Items": ["a"]}])
        query = Query(items=["a"])
        assert query.estimate(anonymized) == query.estimate(
            anonymized, vectorized=False
        )
        assert query.estimate(anonymized) == pytest.approx(1.0)

    def test_kernel_handles_empty_dataset(self):
        schema = Schema([Attribute.categorical("Edu")])
        empty = Dataset(schema, [])
        query = Query(conditions={"Edu": ValueCondition(["BS"])})
        assert query.count(empty) == 0
        assert query.estimate(empty) == 0.0
