"""Registry of the anonymization algorithms integrated by SECRETA.

The registry is how the engine's configurations refer to algorithms by name
(exactly like the GUI's drop-down selectors): four relational algorithms,
five transaction algorithms and three RT bounding methods.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algorithms.base import Anonymizer
from repro.algorithms.relational.cluster import ClusterAnonymizer
from repro.algorithms.relational.fullsubtree import FullSubtreeBottomUp
from repro.algorithms.relational.incognito import Incognito
from repro.algorithms.relational.topdown import TopDownSpecialization
from repro.algorithms.rt.bounding import Rmerger, RTmerger, Tmerger
from repro.algorithms.transaction.apriori import AprioriAnonymizer
from repro.algorithms.transaction.coat import Coat
from repro.algorithms.transaction.lra import LraAnonymizer
from repro.algorithms.transaction.pcta import Pcta
from repro.algorithms.transaction.vpa import VpaAnonymizer
from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class AlgorithmSpec:
    """Metadata describing one registered algorithm."""

    name: str
    kind: str  # "relational" | "transaction" | "rt"
    cls: type[Anonymizer]
    uses_hierarchies: bool
    uses_policies: bool
    description: str


_SPECS: dict[str, AlgorithmSpec] = {}


def _register(spec: AlgorithmSpec) -> None:
    _SPECS[spec.name] = spec


_register(
    AlgorithmSpec(
        "incognito",
        "relational",
        Incognito,
        uses_hierarchies=True,
        uses_policies=False,
        description="Full-domain k-anonymity via bottom-up lattice search (LeFevre et al. 2005)",
    )
)
_register(
    AlgorithmSpec(
        "top-down",
        "relational",
        TopDownSpecialization,
        uses_hierarchies=True,
        uses_policies=False,
        description="Top-down specialization from the fully generalized table (Fung et al. 2005)",
    )
)
_register(
    AlgorithmSpec(
        "cluster",
        "relational",
        ClusterAnonymizer,
        uses_hierarchies=True,
        uses_policies=False,
        description="Greedy k-member clustering with local recoding (Poulis et al. 2013)",
    )
)
_register(
    AlgorithmSpec(
        "full-subtree",
        "relational",
        FullSubtreeBottomUp,
        uses_hierarchies=True,
        uses_policies=False,
        description="Greedy bottom-up full-subtree (full-domain) generalization",
    )
)
_register(
    AlgorithmSpec(
        "coat",
        "transaction",
        Coat,
        uses_hierarchies=False,
        uses_policies=True,
        description="Constraint-based anonymization of transactions (Loukides et al. 2011)",
    )
)
_register(
    AlgorithmSpec(
        "pcta",
        "transaction",
        Pcta,
        uses_hierarchies=False,
        uses_policies=True,
        description="Privacy-constrained clustering-based transaction anonymization (2012)",
    )
)
_register(
    AlgorithmSpec(
        "apriori",
        "transaction",
        AprioriAnonymizer,
        uses_hierarchies=True,
        uses_policies=False,
        description="Apriori-based k^m-anonymization (Terrovitis et al. 2011)",
    )
)
_register(
    AlgorithmSpec(
        "lra",
        "transaction",
        LraAnonymizer,
        uses_hierarchies=True,
        uses_policies=False,
        description="Local recoding k^m-anonymization (Terrovitis et al. 2011)",
    )
)
_register(
    AlgorithmSpec(
        "vpa",
        "transaction",
        VpaAnonymizer,
        uses_hierarchies=True,
        uses_policies=False,
        description="Vertical partitioning k^m-anonymization (Terrovitis et al. 2011)",
    )
)
_register(
    AlgorithmSpec(
        "rmerger",
        "rt",
        Rmerger,
        uses_hierarchies=True,
        uses_policies=False,
        description="RT bounding method favouring relational utility (Poulis et al. 2013)",
    )
)
_register(
    AlgorithmSpec(
        "tmerger",
        "rt",
        Tmerger,
        uses_hierarchies=True,
        uses_policies=False,
        description="RT bounding method favouring transaction utility (Poulis et al. 2013)",
    )
)
_register(
    AlgorithmSpec(
        "rtmerger",
        "rt",
        RTmerger,
        uses_hierarchies=True,
        uses_policies=False,
        description="RT bounding method balancing both utilities (Poulis et al. 2013)",
    )
)


def algorithm_names(kind: str | None = None) -> list[str]:
    """Registered algorithm names, optionally filtered by kind."""
    return [
        spec.name
        for spec in _SPECS.values()
        if kind is None or spec.kind == kind
    ]


def get_spec(name: str) -> AlgorithmSpec:
    """The registry entry for ``name`` (raising a configuration error if unknown)."""
    try:
        return _SPECS[name]
    except KeyError:
        known = ", ".join(sorted(_SPECS))
        raise ConfigurationError(
            f"unknown algorithm {name!r}; known algorithms: {known}"
        ) from None


def relational_algorithms() -> list[str]:
    return algorithm_names("relational")


def transaction_algorithms() -> list[str]:
    return algorithm_names("transaction")


def bounding_methods() -> list[str]:
    return algorithm_names("rt")
