"""CLAIM-POLICY — the Policy Specification Module (Section 2.2).

SECRETA can automatically generate generalization hierarchies and the
privacy/utility policies consumed by COAT and PCTA.  The benchmark times
hierarchy generation and the policy-generation strategies at several dataset
sizes and verifies that the generated artefacts drive COAT end to end.
"""

from __future__ import annotations

import pytest

from repro.algorithms import Coat
from repro.datasets import generate_market_basket, generate_rt_dataset
from repro.hierarchy import build_hierarchies_for_dataset
from repro.metrics import candidate_support
from repro.policies import generate_policies, policy_summary

SIZES = (200, 400, 800)


@pytest.mark.parametrize("n_records", SIZES)
def test_hierarchy_generation(benchmark, n_records, record):
    dataset = generate_rt_dataset(n_records=n_records, n_items=30, seed=71)
    hierarchies = benchmark(build_hierarchies_for_dataset, dataset, 4)
    record(
        f"claim_policy_hierarchies_{n_records}",
        {
            "records": n_records,
            "hierarchies": {
                name: {"height": h.height, "nodes": len(h)} for name, h in hierarchies.items()
            },
        },
    )
    assert set(hierarchies) >= {"Age", "Education", "Items"}


@pytest.mark.parametrize("n_records", SIZES)
def test_policy_generation(benchmark, n_records, record):
    baskets = generate_market_basket(n_records=n_records, n_items=40, seed=72)

    def generate():
        return generate_policies(baskets, k=10, group_size=5)

    privacy, utility = benchmark(generate)
    record(
        f"claim_policy_policies_{n_records}",
        {"records": n_records, **policy_summary(privacy, utility)},
    )
    assert privacy.k == 10
    assert utility.covered_items == baskets.item_universe()


def test_generated_policies_drive_coat(benchmark, record):
    """End-to-end: generated policies + COAT satisfy every constraint."""
    baskets = generate_market_basket(n_records=400, n_items=30, seed=73)
    privacy, utility = generate_policies(baskets, k=10, group_size=5)

    result = benchmark.pedantic(
        lambda: Coat(privacy, utility).anonymize(baskets), rounds=1, iterations=1
    )
    satisfied = all(
        candidate_support(result.dataset, constraint.items) == 0
        or candidate_support(result.dataset, constraint.items) >= privacy.k
        for constraint in privacy
    )
    record(
        "claim_policy_coat",
        {
            "constraints": len(privacy),
            "satisfied": satisfied,
            "utility_loss": result.statistics["utility_loss"],
            "suppressed_items": result.statistics["suppressed_items"],
        },
    )
    assert satisfied
