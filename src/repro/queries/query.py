"""COUNT queries over RT-datasets.

SECRETA evaluates data utility "in query answering" with the query type of
Xu et al. (KDD 2006): COUNT queries that combine range or equality predicates
on relational attributes with containment predicates on the transaction
attribute, e.g. *"how many customers aged 25–35 with a Bachelors degree bought
bread and milk?"*.

A query can be answered exactly on the original dataset
(:meth:`Query.count`) and only estimated on an anonymized dataset
(:meth:`Query.estimate`): a generalized value may or may not stand for a
matching original value, so each record contributes the probability that it
matches, under the standard uniformity assumption.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from repro.datasets.dataset import Dataset, Record
from repro.exceptions import QueryError
from repro.hierarchy.hierarchy import Hierarchy
from repro.index import LabelInterpreter, interpreter_for


@dataclass(frozen=True)
class RangeCondition:
    """A numeric predicate ``low <= value <= high``."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if self.low > self.high:
            raise QueryError(f"empty range [{self.low}, {self.high}]")

    def match_probability(
        self,
        value: Any,
        hierarchy: Hierarchy | None = None,
        interpreter: LabelInterpreter | None = None,
    ) -> float:
        """Probability that a (possibly generalized) value satisfies the range."""
        if value is None:
            return 0.0
        if isinstance(value, (int, float)):
            return 1.0 if self.low <= value <= self.high else 0.0
        if interpreter is None:
            interpreter = interpreter_for(hierarchy)
        span = interpreter.span(value)
        if span is None:
            return 0.0
        low, high = span
        if high < self.low or low > self.high:
            return 0.0
        if high == low:
            return 1.0
        overlap = min(high, self.high) - max(low, self.low)
        return max(0.0, min(1.0, overlap / (high - low)))

    def to_dict(self) -> dict:
        return {"type": "range", "low": self.low, "high": self.high}


@dataclass(frozen=True)
class ValueCondition:
    """A categorical predicate ``value IN accepted``."""

    accepted: frozenset[str]

    def __init__(self, accepted: Iterable[str]):
        object.__setattr__(
            self, "accepted", frozenset(str(value) for value in accepted)
        )
        if not self.accepted:
            raise QueryError("a value condition needs at least one accepted value")

    def match_probability(
        self,
        value: Any,
        hierarchy: Hierarchy | None = None,
        interpreter: LabelInterpreter | None = None,
    ) -> float:
        """Probability that a (possibly generalized) value is an accepted one."""
        if value is None:
            return 0.0
        value = str(value)
        if value in self.accepted:
            return 1.0
        if interpreter is None:
            interpreter = interpreter_for(hierarchy)
        leaves = interpreter.leaves(value)
        if not leaves:
            return 0.0
        matching = len(leaves & self.accepted)
        if matching == 0:
            return 0.0
        return matching / len(leaves)

    def to_dict(self) -> dict:
        return {"type": "values", "accepted": sorted(self.accepted)}


Condition = RangeCondition | ValueCondition


def condition_from_dict(data: Mapping) -> Condition:
    """Inverse of ``Condition.to_dict`` (used by the workload file format)."""
    kind = data.get("type")
    if kind == "range":
        return RangeCondition(float(data["low"]), float(data["high"]))
    if kind == "values":
        return ValueCondition(data["accepted"])
    raise QueryError(f"unknown condition type {kind!r}")


@dataclass(frozen=True)
class Query:
    """A COUNT query over relational predicates and required items."""

    conditions: Mapping[str, Condition] = field(default_factory=dict)
    items: frozenset[str] = field(default_factory=frozenset)
    transaction_attribute: str | None = None

    def __init__(
        self,
        conditions: Mapping[str, Condition] | None = None,
        items: Iterable[str] = (),
        transaction_attribute: str | None = None,
    ):
        object.__setattr__(self, "conditions", dict(conditions or {}))
        object.__setattr__(self, "items", frozenset(str(item) for item in items))
        object.__setattr__(self, "transaction_attribute", transaction_attribute)
        if not self.conditions and not self.items:
            raise QueryError("a query needs at least one predicate")

    # -- exact evaluation -------------------------------------------------------
    def _matches_exactly(self, record: Record, transaction_attribute: str | None) -> bool:
        for attribute, condition in self.conditions.items():
            if condition.match_probability(record[attribute]) < 1.0:
                return False
        if self.items:
            if transaction_attribute is None:
                raise QueryError(
                    "query has item predicates but the dataset has no "
                    "transaction attribute"
                )
            if not self.items <= record[transaction_attribute]:
                return False
        return True

    def count(self, dataset: Dataset) -> int:
        """Exact number of matching records (for original, truthful data)."""
        transaction_attribute = self._transaction_attribute(dataset)
        return sum(
            1
            for record in dataset
            if self._matches_exactly(record, transaction_attribute)
        )

    # -- probabilistic evaluation -------------------------------------------------
    def estimate(
        self,
        dataset: Dataset,
        hierarchies: Mapping[str, Hierarchy] | None = None,
        interpreters: Mapping[str, LabelInterpreter] | None = None,
    ) -> float:
        """Expected number of matching records in an anonymized dataset.

        Every record contributes the product of the per-predicate match
        probabilities (independence + uniformity assumptions, as in the
        query-answering evaluations of the anonymization literature).
        ``interpreters`` maps attribute names to pre-built label interpreters
        (one per hierarchy); missing entries are resolved through the shared
        interpreter cache, so label resolution is memoized either way.
        """
        hierarchies = hierarchies or {}
        interpreters = dict(interpreters or {})
        transaction_attribute = self._transaction_attribute(dataset)
        if self.items and transaction_attribute is None:
            raise QueryError(
                "query has item predicates but the dataset has no "
                "transaction attribute"
            )
        for attribute in (*self.conditions, transaction_attribute):
            if attribute is not None and attribute not in interpreters:
                interpreters[attribute] = interpreter_for(hierarchies.get(attribute))
        total = 0.0
        for record in dataset:
            probability = 1.0
            for attribute, condition in self.conditions.items():
                probability *= condition.match_probability(
                    record[attribute],
                    hierarchies.get(attribute),
                    interpreters[attribute],
                )
                if probability == 0.0:
                    break
            if probability and self.items:
                probability *= self._itemset_probability(
                    record[transaction_attribute], interpreters[transaction_attribute]
                )
            total += probability
        return total

    def _itemset_probability(
        self, itemset: frozenset, interpreter: LabelInterpreter
    ) -> float:
        probability = 1.0
        for item in self.items:
            if item in itemset:
                continue
            best = 0.0
            for generalized in itemset:
                leaves = interpreter.leaves(generalized)
                if item in leaves:
                    best = max(best, 1.0 / len(leaves))
            probability *= best
            if probability == 0.0:
                return 0.0
        return probability

    def _transaction_attribute(self, dataset: Dataset) -> str | None:
        if self.transaction_attribute is not None:
            return self.transaction_attribute
        names = dataset.schema.transaction_names
        if not names:
            return None
        return names[0]

    # -- serialisation --------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "conditions": {
                attribute: condition.to_dict()
                for attribute, condition in self.conditions.items()
            },
            "items": sorted(self.items),
            "transaction_attribute": self.transaction_attribute,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "Query":
        conditions = {
            attribute: condition_from_dict(condition)
            for attribute, condition in dict(data.get("conditions", {})).items()
        }
        return cls(
            conditions=conditions,
            items=data.get("items", ()),
            transaction_attribute=data.get("transaction_attribute"),
        )

    def describe(self) -> str:
        """Human-readable one-line description of the query."""
        parts = []
        for attribute, condition in self.conditions.items():
            if isinstance(condition, RangeCondition):
                parts.append(f"{attribute} in [{condition.low}, {condition.high}]")
            else:
                parts.append(f"{attribute} in {sorted(condition.accepted)}")
        if self.items:
            parts.append(f"items ⊇ {sorted(self.items)}")
        return "COUNT where " + " and ".join(parts)
