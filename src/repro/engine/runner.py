"""Execution of multiple anonymization requests, sequentially or in parallel.

SECRETA's backend "invokes one or more instances (threads) of the
Anonymization Module" and collects their results.  The pure-Python equivalent
uses a thread pool; because the algorithms are CPU-bound Python code the
parallel mode mostly helps when the per-run work releases the GIL (NumPy) or
when results are produced incrementally, so sequential execution remains the
default.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

TaskT = TypeVar("TaskT")
ResultT = TypeVar("ResultT")


def run_many(
    tasks: Sequence[TaskT] | Iterable[TaskT],
    worker: Callable[[TaskT], ResultT],
    parallel: bool = False,
    max_workers: int | None = None,
) -> list[ResultT]:
    """Apply ``worker`` to every task, preserving input order.

    With ``parallel=True`` a thread pool of ``max_workers`` threads (default:
    one per task, capped at 8) is used, mirroring the N anonymization-module
    instances of the SECRETA architecture diagram.
    """
    tasks = list(tasks)
    if not tasks:
        return []
    if not parallel or len(tasks) == 1:
        return [worker(task) for task in tasks]
    workers = max_workers or min(len(tasks), 8)
    with ThreadPoolExecutor(max_workers=workers) as executor:
        return list(executor.map(worker, tasks))
