"""Per-record scalar reference implementation of the attack simulator.

The brute-force oracle behind the ``vectorized=False`` switch of
:mod:`repro.attacks.simulator`: matching sets are plain Python sets of
record indices, built by probing every published record against the shared
coverage semantics (:mod:`repro.attacks.coverage`).  No bitsets, no NumPy
reductions — only the set algebra a pencil-and-paper check would use.  The
REP003 manifest pins each kernel to its function here, and the Hypothesis
property suite asserts the two paths produce equal :class:`AttackResult`
values on arbitrary small instances.

Per-value and per-combination matching sets are memoized (the semantics are
pure functions of the value/combination), which keeps the oracle runnable at
benchmark scale while leaving the per-record logic untouched.
"""

from __future__ import annotations

from typing import Sequence

from repro.attacks.coverage import AttributeCoverage, best_knowledge
from repro.datasets.dataset import Dataset, Record
from repro.hierarchy.hierarchy import Hierarchy
from repro.index import interpreter_for


def _value_match_sets(
    original: Dataset,
    anonymized: Dataset,
    attributes: Sequence[str],
    coverages: dict[str, AttributeCoverage],
) -> list[tuple[str, dict]]:
    """Per attribute: original cell value -> records whose labels cover it."""
    matchers: list[tuple[str, dict]] = []
    for attribute in attributes:
        coverage = coverages[attribute]
        labels = [record[attribute] for record in anonymized]
        per_value: dict = {}
        for record in original:
            value = record[attribute]
            if value not in per_value:
                per_value[value] = frozenset(
                    index
                    for index, label in enumerate(labels)
                    if coverage.covers(label, value)
                )
        matchers.append((attribute, per_value))
    return matchers


def _qi_match_set(
    record: Record, matchers: Sequence[tuple[str, dict]]
) -> frozenset[int]:
    """One target's QI matching set: the intersection across attributes."""
    candidate_sets = sorted(
        (per_value[record[attribute]] for attribute, per_value in matchers),
        key=len,
    )
    matched = candidate_sets[0]
    for candidates in candidate_sets[1:]:
        matched = matched & candidates
        if not matched:
            break
    return matched


def qi_sizes_scalar(
    original: Dataset,
    anonymized: Dataset,
    attributes: Sequence[str],
    coverages: dict[str, AttributeCoverage],
) -> list[int]:
    """Per-record QI matching-set sizes via per-record set intersection."""
    matchers = _value_match_sets(original, anonymized, attributes, coverages)
    return [len(_qi_match_set(record, matchers)) for record in original]


def _item_candidate_sets(
    anonymized: Dataset,
    attribute: str,
    ordered_items: Sequence[str],
    hierarchy: Hierarchy | None,
) -> dict[str, frozenset[int]]:
    """Item -> records whose published itemsets could contain it."""
    interpreter = interpreter_for(hierarchy, set(ordered_items))
    wanted = set(ordered_items)
    per_item: dict[str, set[int]] = {item: set() for item in ordered_items}
    for index, record in enumerate(anonymized):
        for item in interpreter.covered_items(record[attribute]):
            if item in wanted:
                per_item[item].add(index)
    return {item: frozenset(records) for item, records in per_item.items()}


def _combo_support(
    combo: tuple[str, ...],
    candidates: dict[str, frozenset[int]],
    memo: dict[tuple[str, ...], frozenset[int]],
) -> frozenset[int]:
    matched = memo.get(combo)
    if matched is None:
        matched = candidates[combo[0]]
        for item in combo[1:]:
            matched = matched & candidates[item]
        memo[combo] = matched
    return matched


def item_sizes_scalar(
    original: Dataset,
    anonymized: Dataset,
    m: int,
    attribute: str,
    ordered_items: Sequence[str],
    hierarchy: Hierarchy | None,
    knowledge_cap: int | None,
) -> tuple[list[int], dict[int, tuple[str, ...]], bool]:
    """Per-record worst item-knowledge matching-set sizes via set algebra."""
    candidates = _item_candidate_sets(anonymized, attribute, ordered_items, hierarchy)
    combo_memo: dict[tuple[str, ...], frozenset[int]] = {}
    basket_memo: dict[frozenset, tuple[int, tuple[str, ...] | None, bool]] = {}
    wanted = set(ordered_items)
    sizes: list[int] = []
    knowledge: dict[int, tuple[str, ...]] = {}
    truncated = False
    for index, record in enumerate(original):
        basket = frozenset(
            str(item) for item in record[attribute] if str(item) in wanted
        )
        outcome = basket_memo.get(basket)
        if outcome is None:
            outcome = best_knowledge(
                basket,
                m,
                lambda combo: len(_combo_support(combo, candidates, combo_memo)),
                cap=knowledge_cap,
            )
            basket_memo[basket] = outcome
        best, witness, hit_cap = outcome
        sizes.append(best)
        if witness is not None:
            knowledge[index] = witness
        truncated = truncated or hit_cap
    return sizes, knowledge, truncated


def rt_sizes_scalar(
    original: Dataset,
    anonymized: Dataset,
    m: int,
    attributes: Sequence[str],
    coverages: dict[str, AttributeCoverage],
    attribute: str,
    ordered_items: Sequence[str],
    hierarchy: Hierarchy | None,
    knowledge_cap: int | None,
) -> tuple[list[int], dict[int, tuple[str, ...]], bool]:
    """Combined QI + item matching-set sizes, one target at a time."""
    matchers = _value_match_sets(original, anonymized, attributes, coverages)
    candidates = _item_candidate_sets(anonymized, attribute, ordered_items, hierarchy)
    combo_memo: dict[tuple[str, ...], frozenset[int]] = {}
    wanted = set(ordered_items)
    sizes: list[int] = []
    knowledge: dict[int, tuple[str, ...]] = {}
    truncated = False
    for index, record in enumerate(original):
        qi_matched = _qi_match_set(record, matchers)
        basket = frozenset(
            str(item) for item in record[attribute] if str(item) in wanted
        )
        best, witness, hit_cap = best_knowledge(
            basket,
            m,
            lambda combo: len(
                qi_matched & _combo_support(combo, candidates, combo_memo)
            ),
            cap=knowledge_cap,
            initial=len(qi_matched),
        )
        sizes.append(best)
        if witness is not None:
            knowledge[index] = witness
        truncated = truncated or hit_cap
    return sizes, knowledge, truncated
