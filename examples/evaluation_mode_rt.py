"""Demonstration scenario 1: "Evaluating a method for RT-datasets".

Follows Section 3 of the SECRETA paper step by step:

1. load an RT-dataset and edit it in the Dataset Editor,
2. load (here: generate and save, then reload) a hierarchy and a query
   workload,
3. set the parameters k, m and δ, pick one relational and one transaction
   algorithm plus a bounding method,
4. run the anonymization and read the summary "message box",
5. produce the four visualizations of the Evaluation screen:
   (a) ARE for a varying δ with fixed k and m,
   (b) runtime of the algorithm and its phases,
   (c) the frequency of generalized values in a relational attribute,
   (d) the relative error of transaction item frequencies.

Run with::

    python examples/evaluation_mode_rt.py [output-directory]
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro import Session, rt_config
from repro.frontend.plotting import (
    frequency_figure,
    phase_runtime_figure,
    render_line_chart,
)


def main(output_directory: str | None = None) -> None:
    output = Path(output_directory) if output_directory else None

    # -- Dataset Editor -----------------------------------------------------------
    session = Session.generate_rt(n_records=400, n_items=30, seed=11)
    editor = session.dataset_editor
    editor.rename_attribute("Hours", "HoursPerWeek")   # edit an attribute name
    editor.set_value(0, "Education", "Masters")         # edit a value
    print(session.histogram_text("Age", bins=8))

    # -- Configuration and Queries editors ------------------------------------------
    session.configuration_editor.generate_hierarchies(fanout=4)
    print("Browsable hierarchy for Education (first 3 paths):")
    for path in session.configuration_editor.browse_hierarchy("Education")[:3]:
        print("   ", " -> ".join(path))
    workload = session.queries_editor.generate(n_queries=40, seed=3)
    print(f"Query workload with {len(workload)} COUNT queries; first one:")
    print("   ", workload[0].describe())
    print()

    # -- Method evaluation -------------------------------------------------------------
    config = rt_config(
        "cluster", "apriori", bounding="rtmerger", k=10, m=2, delta=0.5,
        label="Cluster+Apriori/RTmerger",
    )
    report = session.evaluate(config)

    print("=== summary (message box) ===")
    for key, value in report.summary().items():
        print(f"  {key}: {value}")
    print()

    # (a) ARE for varying delta, fixed k and m.
    sweep = session.sweep(config, "delta", 0.0, 1.0, 0.25)
    print(render_line_chart([sweep.series["are"]], title="(a) ARE vs delta (k=10, m=2)"))

    # (b) runtime of the algorithm and its phases.
    print(phase_runtime_figure(report.phase_seconds, title="(b) runtime per phase").to_text())

    # (c) frequency of generalized values in a relational attribute.
    education_frequencies = report.generalized_value_frequencies["Education"]
    print(
        frequency_figure(
            education_frequencies, title="(c) generalized Education values", max_rows=10
        ).to_text()
    )

    # (d) relative error of transaction item frequencies.
    print(
        frequency_figure(
            report.item_frequency_errors,
            title="(d) item frequency relative error",
            max_rows=10,
        ).to_text()
    )

    # -- Data Export Module --------------------------------------------------------------
    if output is not None:
        exporter = session.exporter(output)
        exporter.export_evaluation(report, stem="scenario1")
        exporter.export_sweep(sweep, stem="scenario1_delta_sweep")
        session.export_all_inputs(output)
        print(f"Exported datasets, inputs and figures to {output}")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else None)
