"""Relational (single-valued attribute) anonymization algorithms."""

from __future__ import annotations

from repro.algorithms.relational.cluster import ClusterAnonymizer
from repro.algorithms.relational.fullsubtree import FullSubtreeBottomUp
from repro.algorithms.relational.incognito import Incognito
from repro.algorithms.relational.topdown import TopDownSpecialization

__all__ = [
    "ClusterAnonymizer",
    "FullSubtreeBottomUp",
    "Incognito",
    "TopDownSpecialization",
]
