"""Utility policies for constraint-based transaction anonymization.

A *utility constraint* (Loukides et al., KAIS 2011) is a set of items that the
data publisher considers semantically interchangeable: replacing any of them
by the generalized item that represents the whole set preserves the intended
analyses.  A utility policy partitions (part of) the item universe into such
sets; COAT and PCTA may only generalize an item within its utility
constraint — anything beyond that must be suppression.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.exceptions import PolicyError


def generalized_label(items: Iterable[str]) -> str:
    """Canonical label of the generalized item representing ``items``."""
    members = sorted(str(item) for item in items)
    if len(members) == 1:
        return members[0]
    return "(" + ",".join(members) + ")"


@dataclass(frozen=True)
class UtilityConstraint:
    """A set of items that may be generalized to a single generalized item."""

    items: frozenset[str]

    def __init__(self, items: Iterable[str]):
        object.__setattr__(self, "items", frozenset(str(item) for item in items))
        if not self.items:
            raise PolicyError("a utility constraint needs at least one item")

    def __len__(self) -> int:
        return len(self.items)

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self.items))

    def __contains__(self, item: object) -> bool:
        return item in self.items

    def __repr__(self) -> str:
        return f"UtilityConstraint({sorted(self.items)})"

    @property
    def label(self) -> str:
        """Label of the most general item this constraint allows."""
        return generalized_label(self.items)


class UtilityPolicy:
    """A collection of disjoint utility constraints over the item universe.

    Items not covered by any constraint form implicit singleton constraints:
    they may never be generalized, only kept intact or suppressed.
    """

    def __init__(self, constraints: Iterable[UtilityConstraint | Iterable[str]]):
        self._constraints: list[UtilityConstraint] = []
        self._constraint_of: dict[str, int] = {}
        for constraint in constraints:
            if not isinstance(constraint, UtilityConstraint):
                constraint = UtilityConstraint(constraint)
            for item in constraint.items:
                if item in self._constraint_of:
                    raise PolicyError(
                        f"item {item!r} appears in more than one utility constraint"
                    )
            position = len(self._constraints)
            self._constraints.append(constraint)
            for item in constraint.items:
                self._constraint_of[item] = position

    def __len__(self) -> int:
        return len(self._constraints)

    def __iter__(self) -> Iterator[UtilityConstraint]:
        return iter(self._constraints)

    def __repr__(self) -> str:
        return f"UtilityPolicy(constraints={len(self._constraints)})"

    @property
    def constraints(self) -> list[UtilityConstraint]:
        return list(self._constraints)

    @property
    def covered_items(self) -> set[str]:
        return set(self._constraint_of)

    def constraint_for(self, item: str) -> UtilityConstraint | None:
        """The constraint containing ``item`` (``None`` if uncovered)."""
        position = self._constraint_of.get(str(item))
        return self._constraints[position] if position is not None else None

    def allowed_generalizations(self, item: str) -> list[frozenset[str]]:
        """Item groups ``item`` may be generalized to, most specific first.

        With a flat policy this is the singleton ``{item}`` followed by the
        full constraint set (when the item is covered by one).
        """
        item = str(item)
        options = [frozenset({item})]
        constraint = self.constraint_for(item)
        if constraint is not None and len(constraint) > 1:
            options.append(constraint.items)
        return options

    def label_for(self, items: Iterable[str]) -> str:
        """Canonical generalized-item label for an item group."""
        return generalized_label(items)

    def permits(self, items: Iterable[str]) -> bool:
        """Whether generalizing ``items`` to a single item respects the policy.

        Allowed groups are singletons or (subsets of) one utility constraint.
        """
        group = frozenset(str(item) for item in items)
        if len(group) <= 1:
            return True
        constraints = {self._constraint_of.get(item) for item in group}
        if None in constraints or len(constraints) != 1:
            return False
        return True
