"""Property tests: the bitset kernels are element-for-element equal to sets.

The bitset rewrite of :class:`repro.index.InvertedIndex` and the bitset-backed
k^m checker must be pure representation changes.  The references below are the
PR 1 ``frozenset`` implementations, re-stated verbatim; hypothesis drives
random schemas/datasets against them, and explicit cases cover the edges that
random data rarely hits (empty postings, unknown items, all-records groups,
>64 and >4096 records to cross word and block boundaries).
"""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import Attribute, Dataset, Schema, generate_market_basket
from repro.index import InvertedIndex
from repro.metrics import km_violations, label_leaves

ITEMS = [f"i{n}" for n in range(12)]

baskets = st.lists(
    st.sets(st.sampled_from(ITEMS), max_size=5),
    min_size=0,
    max_size=30,
)

groups = st.lists(
    st.sets(st.sampled_from(ITEMS + ["unknown-x", "unknown-y"]), max_size=4),
    min_size=0,
    max_size=4,
)


def make_dataset(itemsets) -> Dataset:
    schema = Schema([Attribute.transaction("Items")])
    return Dataset(schema, [{"Items": sorted(itemset)} for itemset in itemsets])


class FrozensetIndex:
    """The PR 1 pure-frozenset inverted index (reference implementation)."""

    def __init__(self, dataset: Dataset, attribute: str = "Items"):
        self._postings: dict[str, frozenset[int]] = {}
        raw: dict[str, set[int]] = {}
        for position, record in enumerate(dataset):
            for item in record[attribute]:
                raw.setdefault(item, set()).add(position)
        self._postings = {item: frozenset(records) for item, records in raw.items()}

    def postings(self, item):
        return self._postings.get(item, frozenset())

    def frequency(self, item):
        return len(self.postings(item))

    def union(self, items):
        combined: set[int] = set()
        for item in items:
            combined |= self.postings(item)
        return frozenset(combined)

    def joint_support(self, group_list):
        covering = None
        for group in group_list:
            records = self.union(group)
            covering = records if covering is None else covering & records
            if not covering:
                return 0
        return len(covering) if covering is not None else 0


class TestIndexEquivalence:
    @given(itemsets=baskets, group_list=groups)
    @settings(max_examples=80, deadline=None)
    def test_union_and_joint_support_match_frozensets(self, itemsets, group_list):
        dataset = make_dataset(itemsets)
        bitset = InvertedIndex.from_dataset(dataset)
        reference = FrozensetIndex(dataset)
        for group in group_list:
            assert bitset.union(group) == reference.union(group)
            assert bitset.union_size(group) == len(reference.union(group))
        assert bitset.joint_support(group_list) == reference.joint_support(group_list)

    @given(itemsets=baskets)
    @settings(max_examples=50, deadline=None)
    def test_postings_and_frequencies_match(self, itemsets):
        dataset = make_dataset(itemsets)
        bitset = InvertedIndex.from_dataset(dataset)
        reference = FrozensetIndex(dataset)
        for item in ITEMS + ["never-seen"]:
            assert bitset.postings(item) == reference.postings(item)
            assert bitset.frequency(item) == reference.frequency(item)

    @given(itemsets=baskets, first=groups, second=groups)
    @settings(max_examples=50, deadline=None)
    def test_merged_union_size_matches_set_union(self, itemsets, first, second):
        dataset = make_dataset(itemsets)
        bitset = InvertedIndex.from_dataset(dataset)
        reference = FrozensetIndex(dataset)
        for group_a in first:
            for group_b in second:
                expected = len(reference.union(group_a) | reference.union(group_b))
                assert bitset.merged_union_size(group_a, group_b) == expected


class TestIndexEdges:
    def test_empty_dataset(self):
        dataset = make_dataset([])
        index = InvertedIndex.from_dataset(dataset)
        assert index.universe == frozenset()
        assert index.union({"a"}) == frozenset()
        assert index.joint_support([{"a"}]) == 0
        assert index.joint_support([]) == 0

    def test_unknown_items_and_empty_groups(self):
        dataset = make_dataset([{"a"}, {"a", "b"}])
        index = InvertedIndex.from_dataset(dataset)
        assert index.postings("z") == frozenset()
        assert index.union({"z"}) == frozenset()
        assert index.union(set()) == frozenset()
        assert index.joint_support([{"a"}, set()]) == 0
        assert index.joint_support([{"a"}, {"z"}]) == 0

    def test_all_records_group(self):
        dataset = make_dataset([{"a"}, {"b"}, {"c"}])
        index = InvertedIndex.from_dataset(dataset)
        assert index.union({"a", "b", "c"}) == frozenset({0, 1, 2})
        assert index.union_size({"a", "b", "c"}) == 3
        assert index.joint_support([{"a", "b", "c"}]) == 3

    @pytest.mark.parametrize("n_records", [65, 130, 4100])
    def test_word_and_block_boundary_datasets(self, n_records):
        """Posting sets must survive packing across 64-bit word boundaries."""
        dataset = generate_market_basket(
            n_records=n_records, n_items=40, seed=n_records
        )
        bitset = InvertedIndex.from_dataset(dataset)
        reference = FrozensetIndex(dataset)
        assert bitset.universe == frozenset(reference._postings)
        for item in sorted(reference._postings)[:10]:
            assert bitset.postings(item) == reference.postings(item)
        probe = sorted(reference._postings)[:6]
        group_pairs = [set(pair) for pair in itertools.combinations(probe, 2)]
        for group in group_pairs:
            assert bitset.union(group) == reference.union(group)
        assert bitset.joint_support(group_pairs[:3]) == reference.joint_support(
            group_pairs[:3]
        )

    def test_constructor_accepts_indices_beyond_n_records(self):
        # The mapping constructor sizes its bitsets to the largest index even
        # when n_records understates it (the PR 1 behavior).
        index = InvertedIndex({"a": [0, 100], "b": [70]}, n_records=0)
        assert index.postings("a") == frozenset({0, 100})
        assert index.union({"a", "b"}) == frozenset({0, 70, 100})


# -- k^m checker equivalence ----------------------------------------------------
def brute_force_km_violations(dataset, k, m, universe=None):
    """The PR 1 per-record combination scan, restated."""
    if universe is None:
        derived = set()
        for record in dataset:
            for label in record["Items"]:
                derived.update(label_leaves(str(label), None))
        universe = derived
    universe_set = {str(item) for item in universe}
    ordered = sorted(universe_set)
    covered_sets = []
    for record in dataset:
        covered = set()
        for label in record["Items"]:
            covered.update(label_leaves(str(label), None, universe=universe_set))
        covered_sets.append(covered & universe_set)
    violations = []
    for size in range(1, m + 1):
        for combination in itertools.combinations(ordered, size):
            support = sum(
                1 for covered in covered_sets if covered.issuperset(combination)
            )
            if 0 < support < k:
                violations.append((combination, support))
    return violations


mappings = st.dictionaries(
    st.sampled_from(ITEMS),
    st.one_of(
        st.none(),
        st.just("*"),
        st.sets(st.sampled_from(ITEMS), min_size=2, max_size=4).map(
            lambda members: "(" + ",".join(sorted(members)) + ")"
        ),
    ),
    max_size=len(ITEMS),
)


class TestKmEquivalence:
    @given(
        itemsets=baskets,
        mapping=mappings,
        k=st.integers(2, 5),
        m=st.integers(1, 3),
    )
    @settings(max_examples=40, deadline=None)
    def test_km_violations_match_brute_force(self, itemsets, mapping, k, m):
        dataset = make_dataset(itemsets)
        for position, record in enumerate(dataset):
            labels = [
                mapping.get(item, item)
                for item in record["Items"]
                if mapping.get(item, item) is not None
            ]
            dataset.set_value(position, "Items", labels)
        universe = set(ITEMS)
        fast = km_violations(dataset, k, m, universe=universe)
        slow = brute_force_km_violations(dataset, k, m, universe=universe)
        assert [(v.items, v.support) for v in fast] == slow

    def test_km_checker_handles_universe_beyond_old_limit(self):
        """Universes > 40 items (the old km_check_limit) verify quickly now."""
        dataset = generate_market_basket(n_records=400, n_items=64, seed=17)
        violations = km_violations(dataset, k=2, m=2)
        brute = brute_force_km_violations(dataset, k=2, m=2)
        assert [(v.items, v.support) for v in violations] == brute
