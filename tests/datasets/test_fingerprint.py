"""Dataset content fingerprints: the identity half of checkpoint keys.

``Dataset.fingerprint()`` must be a pure function of the dataset's *content*
(schema + cell values) — independent of the process hash seed, of whether the
dataset lives in local memory or an attached shared-memory view, and of
incidental object identity — while every mutator must advance ``version`` so
the cached digest can never go stale.  Stale fingerprints would let a
checkpoint resume serve cells computed from different data, which is the one
failure the content-addressed design exists to rule out.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.columnar.shared import SharedDatasetExport, attach
from repro.datasets import Attribute, Dataset, Schema, generate_rt_dataset


def make_dataset(name="fp-test") -> Dataset:
    schema = Schema(
        [
            Attribute.numeric("Age"),
            Attribute.categorical("City"),
            Attribute.transaction("Items"),
        ]
    )
    rows = [
        {"Age": 30 + n, "City": f"c{n % 3}", "Items": {f"i{n % 4}", f"i{(n * 3) % 5}"}}
        for n in range(10)
    ]
    return Dataset(schema, rows, name=name)


class TestFingerprintContent:
    def test_equal_content_equal_fingerprint(self):
        assert make_dataset().fingerprint() == make_dataset(name="other").fingerprint()

    def test_copy_preserves_fingerprint(self):
        dataset = make_dataset()
        assert dataset.copy().fingerprint() == dataset.fingerprint()

    def test_cell_change_changes_fingerprint(self):
        dataset = make_dataset()
        reference = dataset.fingerprint()
        dataset.set_value(3, "Age", 99)
        assert dataset.fingerprint() != reference

    def test_value_type_distinguished(self):
        """25 and 25.0 are different bytes — exactly the distinction the
        shared-memory layer preserves, so the key must preserve it too."""
        a = make_dataset()
        b = make_dataset()
        a.set_value(0, "Age", 25)
        b.set_value(0, "Age", 25.0)
        assert a.fingerprint() != b.fingerprint()

    def test_record_order_matters(self):
        dataset = make_dataset()
        reordered = dataset.subset(list(reversed(range(len(dataset)))))
        assert dataset.fingerprint() != reordered.fingerprint()

    def test_schema_rename_changes_fingerprint(self):
        dataset = make_dataset()
        reference = dataset.fingerprint()
        dataset.rename_attribute("City", "Town")
        assert dataset.fingerprint() != reference

    def test_empty_dataset(self):
        schema = Schema([Attribute.numeric("Age")])
        empty = Dataset(schema, [], name="empty")
        assert empty.fingerprint() == Dataset(schema, [], name="eh").fingerprint()


class TestVersionCounter:
    def test_every_mutator_bumps_version(self):
        dataset = make_dataset()
        mutations = [
            lambda d: d.append({"Age": 50, "City": "c9", "Items": {"i0"}}),
            lambda d: d.remove_record(0),
            lambda d: d.set_value(0, "Age", 77),
            lambda d: d.add_attribute(Attribute.categorical("Zip"), default="z"),
            lambda d: d.rename_attribute("Zip", "Postal"),
            lambda d: d.map_column("Age", lambda v: v + 1),
            lambda d: d.remove_attribute("Postal"),
        ]
        for mutate in mutations:
            before = dataset.version
            mutate(dataset)
            assert dataset.version == before + 1, mutate

    def test_reads_do_not_bump_version(self):
        dataset = make_dataset()
        before = dataset.version
        dataset.fingerprint()
        dataset.to_rows()
        dataset.columnar("Items")
        dataset.item_universe("Items")
        assert dataset.version == before

    def test_cache_invalidated_by_mutation(self):
        dataset = make_dataset()
        first = dataset.fingerprint()
        assert dataset.fingerprint() is first  # cached string, same object
        dataset.set_value(0, "City", "elsewhere")
        second = dataset.fingerprint()
        assert second != first

    def test_mutate_back_restores_fingerprint(self):
        """The fingerprint keys on content, not on history."""
        dataset = make_dataset()
        original_value = dataset[0]["Age"]
        reference = dataset.fingerprint()
        dataset.set_value(0, "Age", 1234)
        dataset.set_value(0, "Age", original_value)
        assert dataset.version > 0
        assert dataset.fingerprint() == reference


class TestFingerprintStability:
    def test_hash_seed_independence(self):
        """Frozenset itemsets iterate in hash order; the fingerprint must
        not — a restart would orphan every checkpoint cell otherwise."""
        script = (
            "from repro.datasets import generate_rt_dataset\n"
            "print(generate_rt_dataset(n_records=30, n_items=12, seed=7)"
            ".fingerprint())\n"
        )
        digests = set()
        for seed in ("0", "1", "977"):
            env = dict(os.environ, PYTHONHASHSEED=seed)
            env["PYTHONPATH"] = os.pathsep.join(
                [str(Path(__file__).resolve().parents[2] / "src")]
                + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
            )
            result = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                env=env,
                check=True,
            )
            digests.add(result.stdout.strip())
        assert len(digests) == 1

    def test_attached_shared_view_matches_original(self):
        """A worker keying cells on its attached shared-memory view derives
        the same keys as the orchestrating process."""
        dataset = generate_rt_dataset(n_records=40, n_items=12, seed=19)
        with SharedDatasetExport(dataset) as export:
            attached = attach(export.manifest)
            assert attached.fingerprint() == dataset.fingerprint()
