"""Micro-benchmark: shared-memory fan-out vs the pickle-everything pool.

Before this subsystem, ``run_many(mode="process")`` shipped the full dataset
inside every task: for an 8-task sweep the 50k-record dataset was pickled,
piped and unpickled eight times, and every worker task rebuilt the columnar
caches (CSR tokens, posting bitsets, relational codes) from scratch.  The
shared-memory path exports the columnar arrays **once** into a
``multiprocessing.shared_memory`` segment and ships only the small picklable
manifest; workers attach zero-copy views, memoized per process.

The measured workload is an 8-task metric sweep (UL, discernibility, C_avg
per task) over a 50k-record RT-dataset, end to end — pool construction,
dataset fan-out, task execution and shutdown/unlink all included:

* **baseline** — the pre-subsystem process mode, restated verbatim: a fresh
  ``ProcessPoolExecutor`` whose tasks each carry the dataset,
* **shared** — :class:`repro.engine.pool.WorkerPool` plus
  ``pool.share(dataset)``, tasks carrying the manifest.

Besides asserting the >= 2x acceptance bar, the run reports the per-task
startup payload of both paths (pickled task bytes) and writes a
machine-readable ``BENCH_shm.json`` at the repository root so the repo
carries the fan-out trajectory.

Run standalone (writes the trajectory file)::

    PYTHONPATH=src python benchmarks/bench_shared_pool.py            # full 50k run
    PYTHONPATH=src python benchmarks/bench_shared_pool.py --smoke    # small CI run

or through pytest (only collected when addressed explicitly)::

    python -m pytest benchmarks/bench_shared_pool.py -m slow -s
"""

from __future__ import annotations

import json
import os
import pickle
import sys
import time
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path

import pytest

from repro.columnar.shared import resolve_shared_dataset
from repro.datasets import generate_rt_dataset
from repro.engine.pool import WorkerPool
from repro.metrics import average_class_size, discernibility_metric, utility_loss

REPO_ROOT = Path(__file__).resolve().parent.parent
TRAJECTORY_FILE = REPO_ROOT / "BENCH_shm.json"

N_RECORDS = 50_000
N_TASKS = 8
MAX_WORKERS = 2
REQUIRED_SPEEDUP = 2.0

SMOKE_KWARGS = dict(n_records=4_000, n_tasks=4)


def _metric_task(task) -> tuple[float, int, float]:
    """One sweep point: columnar metrics over the (shared or shipped) dataset.

    Module-level so both pool flavours can pickle it.  The payload slot holds
    either the dataset itself (baseline) or a shared-memory manifest.
    """
    payload, k = task
    dataset = resolve_shared_dataset(payload)
    attributes = [a.name for a in dataset.schema.relational if a.quasi_identifier]
    return (
        utility_loss(dataset, dataset, attribute="Items"),
        discernibility_metric(dataset, attributes),
        average_class_size(dataset, k, attributes),
    )


def run_baseline(dataset, ks) -> tuple[list, float, int]:
    """The pre-subsystem path: ephemeral pool, dataset pickled into every task."""
    tasks = [(dataset, k) for k in ks]
    payload_bytes = len(pickle.dumps(tasks[0]))
    start = time.perf_counter()
    with ProcessPoolExecutor(max_workers=MAX_WORKERS) as executor:
        results = list(executor.map(_metric_task, tasks))
    return results, time.perf_counter() - start, payload_bytes


def run_shared(dataset, ks) -> tuple[list, float, dict]:
    """The shared-memory path: one export, manifest-sized tasks, reused pool."""
    start = time.perf_counter()
    with WorkerPool(max_workers=MAX_WORKERS) as pool:
        export_start = time.perf_counter()
        manifest = pool.share(dataset)
        export_seconds = time.perf_counter() - export_start
        tasks = [(manifest, k) for k in ks]
        payload_bytes = len(pickle.dumps(tasks[0]))
        segment_bytes = manifest.total_bytes
        results = pool.map(_metric_task, tasks)
    elapsed = time.perf_counter() - start
    stats = {
        "per_task_payload_bytes": payload_bytes,
        "shared_segment_bytes": segment_bytes,
        "export_seconds": export_seconds,
    }
    return results, elapsed, stats


def run_benchmark(n_records: int = N_RECORDS, n_tasks: int = N_TASKS) -> dict:
    dataset = generate_rt_dataset(n_records=n_records, n_items=40, seed=2014)
    # Warm the exporter-side columnar views so both paths start from the
    # steady state the engine runs in (dataset already analysed once).
    for attribute in dataset.schema.names:
        dataset.columnar(attribute)
    dataset.columnar("Items").bitset_postings()
    ks = [2 + task for task in range(n_tasks)]

    baseline_results, baseline_seconds, baseline_payload = run_baseline(dataset, ks)
    shared_results, shared_seconds, shared_stats = run_shared(dataset, ks)
    assert shared_results == baseline_results

    return {
        "dataset": {"n_records": n_records, "n_tasks": n_tasks, "max_workers": MAX_WORKERS},
        "baseline_pickle_everything": {
            "seconds": baseline_seconds,
            "per_task_payload_bytes": baseline_payload,
            "total_shipped_bytes": baseline_payload * n_tasks,
        },
        "shared_memory_pool": {
            "seconds": shared_seconds,
            **shared_stats,
            "total_shipped_bytes": shared_stats["per_task_payload_bytes"] * n_tasks,
        },
        "speedup": baseline_seconds / shared_seconds,
        "payload_reduction": baseline_payload
        / max(shared_stats["per_task_payload_bytes"], 1),
    }


def write_trajectory(payload: dict) -> Path:
    TRAJECTORY_FILE.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return TRAJECTORY_FILE


@pytest.mark.slow
def test_shared_pool_speedup(record):
    payload = run_benchmark()
    record("shared_pool", payload)
    write_trajectory(payload)
    assert payload["speedup"] >= REQUIRED_SPEEDUP
    assert payload["payload_reduction"] >= 100.0


def test_shared_pool_smoke(record):
    """Fast CI smoke: both paths agree and the manifest stays tiny.

    In CI (``CI`` set) the small-size payload is also written to
    ``BENCH_shm.json`` so the workflow can upload it as an artifact; local
    test runs leave the committed 50k-record trajectory untouched.
    """
    payload = run_benchmark(**SMOKE_KWARGS)
    record("shared_pool_smoke", payload)
    if os.environ.get("CI"):
        write_trajectory(payload)
    shared = payload["shared_memory_pool"]
    assert shared["per_task_payload_bytes"] < 16_384
    assert payload["baseline_pickle_everything"]["per_task_payload_bytes"] > shared[
        "per_task_payload_bytes"
    ]


def _print_summary(payload: dict) -> None:
    baseline = payload["baseline_pickle_everything"]
    shared = payload["shared_memory_pool"]
    print(
        f"dataset: {payload['dataset']['n_records']} records, "
        f"{payload['dataset']['n_tasks']} tasks, "
        f"{payload['dataset']['max_workers']} workers"
    )
    print(
        f"baseline: {baseline['seconds']:.3f}s, "
        f"{baseline['per_task_payload_bytes']:,} bytes/task shipped"
    )
    print(
        f"shared:   {shared['seconds']:.3f}s, "
        f"{shared['per_task_payload_bytes']:,} bytes/task shipped, "
        f"{shared['shared_segment_bytes']:,} bytes exported once "
        f"({shared['export_seconds']:.3f}s)"
    )
    print(
        f"speedup {payload['speedup']:.1f}x, "
        f"payload reduction {payload['payload_reduction']:.0f}x"
    )


if __name__ == "__main__":
    kwargs = SMOKE_KWARGS if "--smoke" in sys.argv[1:] else {}
    result = run_benchmark(**kwargs)
    path = write_trajectory(result)
    _print_summary(result)
    print(f"trajectory written to {path}")
