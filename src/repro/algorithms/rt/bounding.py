"""Bounding methods for anonymizing RT-datasets (Poulis et al., ECML/PKDD 2013).

An RT-dataset mixes relational attributes (protected through k-anonymity) and
a transaction attribute (protected through k^m-anonymity).  SECRETA combines
one algorithm of each kind through a *bounding method*:

1. the relational algorithm forms equivalence classes (clusters) of at least
   ``k`` records,
2. the transaction algorithm anonymizes the transaction projection of every
   cluster so that, within the cluster, any combination of up to ``m`` items
   matches at least ``k`` records — together this yields (k, k^m)-anonymity,
3. clusters whose transaction part would have to be destroyed to reach the
   guarantee (utility loss above the threshold ``δ``) are *merged* with other
   clusters and re-anonymized.  The three bounding methods differ in how the
   merge partner is chosen:

   * **Rmerger** — the partner that increases the relational information loss
     the least (favours relational utility),
   * **Tmerger** — the partner whose transactions are most similar (favours
     transaction utility),
   * **RTmerger** — the partner with the best balanced combination of both.

SECRETA exposes 20 relational×transaction algorithm combinations, each usable
with any of the three bounding methods.
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

import numpy as np

from repro.algorithms.base import (
    AnonymizationResult,
    Anonymizer,
    PhaseTimer,
    relational_quasi_identifiers,
    validate_k,
)
from repro.algorithms.relational.cluster import ClusterAnonymizer
from repro.algorithms.transaction.apriori import AprioriAnonymizer
from repro.columnar import popcount_rows, posting_matrix
from repro.datasets.dataset import Dataset
from repro.exceptions import AlgorithmError, ConfigurationError
from repro.hierarchy.hierarchy import Hierarchy
from repro.metrics.relational import global_certainty_penalty
from repro.metrics.transaction import utility_loss

#: A factory producing a configured transaction anonymizer for one cluster.
TransactionFactory = Callable[[Dataset], Anonymizer]


class _MergeState:
    """Incrementally maintained per-cluster summaries for the merge phase.

    The scalar merge loop re-walks every member record of both clusters for
    every candidate partner at every merge step.  This state keeps, per
    cluster, exactly what the merge score needs — numeric lo/hi vectors,
    categorical distinct-value bitsets (plus the running LCA node for
    hierarchy-scored attributes), and transaction item bitsets — so scoring
    the worst cluster against *all* partners is one vectorized pass
    (``fmin``/``fmax`` widening, OR + popcount), and a merge updates the
    summaries in O(clusters) instead of rebuilding them.  Scores are
    numerically identical to :meth:`RtBoundingAnonymizer._merge_score`: the
    same operations run in the same attribute order, and the LCA of a merged
    value set equals the LCA of the two clusters' LCA nodes.
    """

    def __init__(
        self,
        strategy: str,
        helper: ClusterAnonymizer,
        dataset: Dataset,
        attributes: Sequence[str],
        attribute: str,
        clusters: Sequence[Sequence[int]],
    ):
        self._strategy = strategy
        self._attributes = list(attributes)
        self._n_attributes = max(len(self._attributes), 1)
        self._n = len(clusters)
        #: record index -> cluster position, used to scatter per-record
        #: occurrences into per-cluster bitsets.
        membership = np.empty(len(dataset), dtype=np.int64)
        for position, cluster in enumerate(clusters):
            membership[np.asarray(cluster, dtype=np.int64)] = position

        #: ("num", span, lo, hi) / ("cat", denominator, bits, hierarchy,
        #: reps, width memo, lca memo) per contributing attribute, in order.
        self._relational: list[list] = []
        if strategy in ("r", "rt"):
            for name in self._attributes:
                if name in helper._numeric:
                    span = helper._domain_span[name]
                    if span <= 0:
                        continue
                    numbers = dataset.columnar(name).numbers
                    lo = np.full(self._n, np.inf)
                    hi = np.full(self._n, -np.inf)
                    for position, cluster in enumerate(clusters):
                        values = numbers[np.asarray(cluster, dtype=np.int64)]
                        lo[position] = np.fmin.reduce(values, initial=np.inf)
                        hi[position] = np.fmax.reduce(values, initial=-np.inf)
                    self._relational.append(["num", span, lo, hi])
                else:
                    size = helper._domain_size[name]
                    if size <= 1:
                        continue
                    cells, labels = dataset.columnar(name).string_codes()
                    present = cells < len(labels)
                    bits = posting_matrix(
                        membership[present], cells[present], self._n, len(labels)
                    )
                    hierarchy = helper.hierarchies.get(name)
                    reps: list[str | None] | None = None
                    if hierarchy is not None:
                        reps = []
                        for position, cluster in enumerate(clusters):
                            indices = np.asarray(cluster, dtype=np.int64)
                            codes = np.unique(cells[indices])
                            distinct = [labels[c] for c in codes if c < len(labels)]
                            if not distinct:
                                reps.append(None)
                            elif len(distinct) == 1:
                                reps.append(distinct[0])
                            else:
                                reps.append(hierarchy.lowest_common_ancestor(distinct))
                    self._relational.append(
                        ["cat", max(size - 1, 1), bits, hierarchy, reps, {}, {}]
                    )
        self._transaction_bits: np.ndarray | None = None
        if strategy in ("t", "rt"):
            column = dataset.columnar(attribute)
            self._transaction_bits = posting_matrix(
                membership[column.record_ids()],
                column.tokens,
                self._n,
                len(column.vocabulary),
            )

    # -- scoring -------------------------------------------------------------------
    def _merged_rep(self, spec: list, worst: int, partner: int) -> str | None:
        """LCA node of the merged distinct-value set (via the two cluster LCAs)."""
        _, _, _, hierarchy, reps, _, lca_memo = spec
        rep_w, rep_p = reps[worst], reps[partner]
        if rep_w is None:
            return rep_p
        if rep_p is None or rep_p == rep_w:
            return rep_w
        key = (rep_w, rep_p) if rep_w <= rep_p else (rep_p, rep_w)
        merged = lca_memo.get(key)
        if merged is None:
            merged = hierarchy.lowest_common_ancestor(key)
            lca_memo[key] = merged
        return merged

    def relational_scores(self, worst: int) -> np.ndarray:
        """Bounding-generalization NCP of merging ``worst`` with each cluster."""
        cost = np.zeros(self._n)
        for spec in self._relational:
            if spec[0] == "num":
                _, span, lo, hi = spec
                width = np.maximum(hi, hi[worst]) - np.minimum(lo, lo[worst])
                cost += np.maximum(width, 0.0) / span
            else:
                _, denominator, bits, hierarchy, _reps, width_memo, _ = spec
                counts = popcount_rows(bits | bits[worst])
                width = counts.astype(np.float64)
                if hierarchy is not None:
                    for partner in np.flatnonzero(counts > 1):
                        rep = self._merged_rep(spec, worst, int(partner))
                        leaf_count = width_memo.get(rep)
                        if leaf_count is None:
                            leaf_count = hierarchy.leaf_count(rep)
                            width_memo[rep] = leaf_count
                        width[partner] = leaf_count
                cost += (width - 1.0) / denominator
        return cost / self._n_attributes

    def transaction_scores(self, worst: int) -> np.ndarray:
        """Jaccard distance between ``worst``'s item set and each cluster's."""
        bits = self._transaction_bits
        intersection = popcount_rows(bits & bits[worst])
        union = popcount_rows(bits | bits[worst])
        cost = np.zeros(self._n)
        covered = union > 0
        cost[covered] = 1.0 - intersection[covered] / union[covered]
        return cost

    def best_partner(self, worst: int) -> int:
        """The cheapest merge partner under the bounding method's strategy."""
        if self._strategy == "r":
            scores = self.relational_scores(worst)
        elif self._strategy == "t":
            scores = self.transaction_scores(worst)
        else:
            scores = 0.5 * self.relational_scores(worst) + 0.5 * self.transaction_scores(
                worst
            )
        scores[worst] = np.inf
        return int(np.argmin(scores))

    # -- update --------------------------------------------------------------------
    def merge(self, worst: int, partner: int) -> None:
        """Combine two clusters' summaries, mirroring ``keep + [merged]`` order."""
        keep = [p for p in range(self._n) if p not in (worst, partner)]
        for spec in self._relational:
            if spec[0] == "num":
                _, _, lo, hi = spec
                spec[2] = np.append(lo[keep], min(lo[worst], lo[partner]))
                spec[3] = np.append(hi[keep], max(hi[worst], hi[partner]))
            else:
                _, _, bits, hierarchy, reps, _, _ = spec
                merged_row = bits[worst] | bits[partner]
                spec[2] = np.vstack([bits[keep], merged_row[None, :]])
                if reps is not None:
                    spec[4] = [reps[p] for p in keep] + [
                        self._merged_rep(spec, worst, partner)
                    ]
        if self._transaction_bits is not None:
            bits = self._transaction_bits
            merged_row = bits[worst] | bits[partner]
            self._transaction_bits = np.vstack([bits[keep], merged_row[None, :]])
        self._n -= 1


class RtBoundingAnonymizer(Anonymizer):
    """Base class of the three bounding methods (see module docstring)."""

    name = "rt-bounding"
    data_kind = "rt"
    #: Merge-partner policy: ``"r"``, ``"t"`` or ``"rt"`` (set by subclasses).
    merge_strategy = "rt"
    #: Choose merge partners through the incremental :class:`_MergeState`
    #: kernels; the scalar per-partner re-scan (identical output) remains
    #: behind this switch as the equivalence reference.
    vectorized_merge = True

    def __init__(
        self,
        k: int,
        m: int = 2,
        delta: float = 0.5,
        relational_algorithm: Anonymizer | None = None,
        transaction_factory: TransactionFactory | None = None,
        hierarchies: Mapping[str, Hierarchy] | None = None,
        item_hierarchy: Hierarchy | None = None,
        relational_attributes: Sequence[str] | None = None,
        transaction_attribute: str | None = None,
        max_merges: int | None = None,
    ):
        if not 0 <= delta <= 1:
            raise ConfigurationError("delta must lie in [0, 1]")
        if m < 1:
            raise ConfigurationError("m must be at least 1")
        self.k = int(k)
        self.m = int(m)
        self.delta = float(delta)
        self.relational_algorithm = relational_algorithm
        self.transaction_factory = transaction_factory
        self.hierarchies = dict(hierarchies or {})
        self.item_hierarchy = item_hierarchy
        self.relational_attributes = (
            list(relational_attributes) if relational_attributes is not None else None
        )
        self.transaction_attribute = transaction_attribute
        self.max_merges = max_merges

    def parameters(self) -> dict:
        return {
            "k": self.k,
            "m": self.m,
            "delta": self.delta,
            "relational_algorithm": getattr(self.relational_algorithm, "name", "cluster"),
            "bounding": self.name,
        }

    # -- phase 1: relational clustering -------------------------------------------
    def _initial_clusters(
        self, dataset: Dataset, attributes: Sequence[str]
    ) -> tuple[list[list[int]], ClusterAnonymizer]:
        """Clusters of at least k records plus the helper used to generalize them."""
        helper = ClusterAnonymizer(self.k, self.hierarchies, attributes=list(attributes))
        algorithm = self.relational_algorithm
        if algorithm is None or isinstance(algorithm, ClusterAnonymizer):
            if isinstance(algorithm, ClusterAnonymizer):
                helper = algorithm
            clusters = helper.build_clusters(dataset, attributes)
            return clusters, helper
        # Any other relational algorithm: run it and use the equivalence
        # classes of its output as the initial clusters.
        result = algorithm.anonymize(dataset)
        groups = result.dataset.group_by(list(attributes))
        clusters = [sorted(indices) for indices in groups.values()]
        helper._prepare(dataset, list(attributes))
        return clusters, helper

    # -- phase 2: per-cluster transaction anonymization -----------------------------
    def _default_transaction_factory(self) -> TransactionFactory:
        def factory(_subset: Dataset) -> Anonymizer:
            return AprioriAnonymizer(
                self.k, self.m, hierarchy=self.item_hierarchy, attribute=self.transaction_attribute
            )

        return factory

    def _anonymize_cluster_transactions(
        self,
        dataset: Dataset,
        cluster: Sequence[int],
        attribute: str,
        factory: TransactionFactory,
    ) -> tuple[list[frozenset], float]:
        """Anonymize one cluster's transaction projection; return itemsets and UL."""
        subset = dataset.subset(cluster)
        algorithm = factory(subset)
        result = algorithm.anonymize(subset)
        itemsets = [record[attribute] for record in result.dataset]
        loss = utility_loss(
            subset, result.dataset, attribute=attribute, hierarchy=self.item_hierarchy
        )
        return itemsets, loss

    # -- phase 3: merging ---------------------------------------------------------
    def _cluster_items(self, dataset: Dataset, cluster: Sequence[int], attribute: str) -> set:
        items: set = set()
        for index in cluster:
            items |= set(dataset[index][attribute])
        return items

    def _relational_merge_cost(
        self,
        helper: ClusterAnonymizer,
        dataset: Dataset,
        attributes: Sequence[str],
        cluster_a: Sequence[int],
        cluster_b: Sequence[int],
    ) -> float:
        merged = list(cluster_a) + list(cluster_b)
        return helper._cluster_cost(dataset, list(attributes), merged)

    def _transaction_merge_cost(
        self, dataset: Dataset, cluster_a: Sequence[int], cluster_b: Sequence[int], attribute: str
    ) -> float:
        items_a = self._cluster_items(dataset, cluster_a, attribute)
        items_b = self._cluster_items(dataset, cluster_b, attribute)
        union = items_a | items_b
        if not union:
            return 0.0
        jaccard = len(items_a & items_b) / len(union)
        return 1.0 - jaccard

    def _merge_score(
        self,
        helper: ClusterAnonymizer,
        dataset: Dataset,
        attributes: Sequence[str],
        attribute: str,
        cluster_a: Sequence[int],
        cluster_b: Sequence[int],
    ) -> float:
        if self.merge_strategy == "r":
            return self._relational_merge_cost(helper, dataset, attributes, cluster_a, cluster_b)
        if self.merge_strategy == "t":
            return self._transaction_merge_cost(dataset, cluster_a, cluster_b, attribute)
        relational = self._relational_merge_cost(
            helper, dataset, attributes, cluster_a, cluster_b
        )
        transactional = self._transaction_merge_cost(dataset, cluster_a, cluster_b, attribute)
        return 0.5 * relational + 0.5 * transactional

    # -- main -----------------------------------------------------------------------
    def anonymize(self, dataset: Dataset) -> AnonymizationResult:
        attributes = self.relational_attributes or relational_quasi_identifiers(dataset)
        if not attributes:
            raise AlgorithmError(f"{self.name}: the dataset has no relational quasi-identifiers")
        attribute = self.transaction_attribute or dataset.single_transaction_attribute()
        validate_k(self.k, len(dataset), self.name)
        factory = self.transaction_factory or self._default_transaction_factory()

        timer = PhaseTimer()
        with timer.phase("relational clustering"):
            clusters, helper = self._initial_clusters(dataset, attributes)
        initial_clusters = len(clusters)

        with timer.phase("transaction anonymization"):
            outputs: list[tuple[list[frozenset], float]] = [
                self._anonymize_cluster_transactions(dataset, cluster, attribute, factory)
                for cluster in clusters
            ]

        merges = 0
        merge_budget = self.max_merges if self.max_merges is not None else len(clusters)
        state: _MergeState | None = None
        with timer.phase("cluster merging"):
            while len(clusters) > 1 and merges < merge_budget:
                losses = [loss for _, loss in outputs]
                worst = max(range(len(clusters)), key=lambda position: losses[position])
                if losses[worst] <= self.delta:
                    break
                if self.vectorized_merge:
                    if state is None:
                        state = _MergeState(
                            self.merge_strategy, helper, dataset, attributes, attribute, clusters
                        )
                    partner = state.best_partner(worst)
                else:
                    candidates = [
                        position for position in range(len(clusters)) if position != worst
                    ]
                    partner = min(
                        candidates,
                        key=lambda position: self._merge_score(
                            helper, dataset, attributes, attribute, clusters[worst], clusters[position]
                        ),
                    )
                merged_cluster = sorted(clusters[worst] + clusters[partner])
                keep = [
                    position
                    for position in range(len(clusters))
                    if position not in (worst, partner)
                ]
                clusters = [clusters[position] for position in keep] + [merged_cluster]
                outputs = [outputs[position] for position in keep] + [
                    self._anonymize_cluster_transactions(dataset, merged_cluster, attribute, factory)
                ]
                if state is not None:
                    state.merge(worst, partner)
                merges += 1

        with timer.phase("apply"):
            anonymized = helper.generalize_clusters(
                dataset, clusters, attributes, name_suffix=self.name
            )
            for cluster, (itemsets, _loss) in zip(clusters, outputs):
                for position, index in enumerate(cluster):
                    anonymized.set_value(index, attribute, itemsets[position])

        relational_gcp = global_certainty_penalty(
            dataset, anonymized, attributes=attributes, hierarchies=self.hierarchies
        )
        transaction_ul = utility_loss(
            dataset, anonymized, attribute=attribute, hierarchy=self.item_hierarchy
        )
        statistics = {
            "initial_clusters": initial_clusters,
            "final_clusters": len(clusters),
            "merges": merges,
            "relational_gcp": relational_gcp,
            "transaction_ul": transaction_ul,
            "max_cluster_ul": max((loss for _, loss in outputs), default=0.0),
            "cluster_assignment": [list(cluster) for cluster in clusters],
        }
        return AnonymizationResult(
            dataset=anonymized,
            algorithm=self.name,
            parameters=self.parameters(),
            runtime_seconds=timer.total,
            phase_seconds=timer.phases,
            statistics=statistics,
        )


class Rmerger(RtBoundingAnonymizer):
    """Merge partners are chosen to preserve relational utility."""

    name = "rmerger"
    merge_strategy = "r"


class Tmerger(RtBoundingAnonymizer):
    """Merge partners are chosen to preserve transaction utility."""

    name = "tmerger"
    merge_strategy = "t"


class RTmerger(RtBoundingAnonymizer):
    """Merge partners balance relational and transaction utility."""

    name = "rtmerger"
    merge_strategy = "rt"
