"""The full-domain generalization lattice.

Full-domain algorithms (Incognito, full-subtree bottom-up) do not generalize
individual records; they pick, for every quasi-identifier attribute, a single
*generalization level* and apply it to the whole column.  The search space is
therefore the lattice whose nodes are vectors of per-attribute levels
``(l_1, ..., l_d)`` with ``0 <= l_i <= height_i``, ordered component-wise.

:class:`GeneralizationLattice` enumerates this lattice, exposes the
predecessor/successor structure used by Incognito's bottom-up breadth-first
search, and applies a lattice node to a dataset column-wise.
"""

from __future__ import annotations

import itertools
from typing import Iterator, Mapping, Sequence

from repro.exceptions import HierarchyError
from repro.hierarchy.hierarchy import Hierarchy

#: A lattice node: one generalization level per attribute, in attribute order.
LevelVector = tuple[int, ...]


class GeneralizationLattice:
    """The lattice of full-domain generalization level vectors."""

    def __init__(self, hierarchies: Mapping[str, Hierarchy], attributes: Sequence[str]):
        missing = [name for name in attributes if name not in hierarchies]
        if missing:
            raise HierarchyError(f"no hierarchy supplied for attributes {missing}")
        self.attributes = list(attributes)
        self.hierarchies = {name: hierarchies[name] for name in self.attributes}
        self.max_levels: LevelVector = tuple(
            self.hierarchies[name].height for name in self.attributes
        )

    # -- structure ------------------------------------------------------------
    @property
    def bottom(self) -> LevelVector:
        """The no-generalization node ``(0, ..., 0)``."""
        return tuple(0 for _ in self.attributes)

    @property
    def top(self) -> LevelVector:
        """The fully generalized node (every attribute at its root level)."""
        return self.max_levels

    def size(self) -> int:
        """Total number of lattice nodes."""
        total = 1
        for level in self.max_levels:
            total *= level + 1
        return total

    def contains(self, node: LevelVector) -> bool:
        return len(node) == len(self.attributes) and all(
            0 <= level <= maximum for level, maximum in zip(node, self.max_levels)
        )

    def validate(self, node: LevelVector) -> None:
        if not self.contains(node):
            raise HierarchyError(
                f"level vector {node} is outside the lattice bounds {self.max_levels}"
            )

    def iter_nodes(self) -> Iterator[LevelVector]:
        """All lattice nodes in increasing order of total generalization."""
        ranges = [range(maximum + 1) for maximum in self.max_levels]
        yield from sorted(itertools.product(*ranges), key=sum)

    def iter_levels(self) -> Iterator[list[LevelVector]]:
        """Nodes grouped by height (sum of levels), bottom-up.

        This is the breadth-first order in which Incognito explores candidate
        generalizations.
        """
        by_height: dict[int, list[LevelVector]] = {}
        for node in self.iter_nodes():
            by_height.setdefault(sum(node), []).append(node)
        for height in sorted(by_height):
            yield by_height[height]

    def successors(self, node: LevelVector) -> list[LevelVector]:
        """Immediate generalizations of ``node`` (one attribute, one level up)."""
        self.validate(node)
        result = []
        for position, (level, maximum) in enumerate(zip(node, self.max_levels)):
            if level < maximum:
                successor = list(node)
                successor[position] = level + 1
                result.append(tuple(successor))
        return result

    def predecessors(self, node: LevelVector) -> list[LevelVector]:
        """Immediate specializations of ``node`` (one attribute, one level down)."""
        self.validate(node)
        result = []
        for position, level in enumerate(node):
            if level > 0:
                predecessor = list(node)
                predecessor[position] = level - 1
                result.append(tuple(predecessor))
        return result

    def is_generalization_of(self, node: LevelVector, other: LevelVector) -> bool:
        """Whether ``node`` generalizes ``other`` (component-wise >=)."""
        self.validate(node)
        self.validate(other)
        return all(a >= b for a, b in zip(node, other))

    def ancestors(self, node: LevelVector) -> list[LevelVector]:
        """All strict generalizations of ``node`` within the lattice."""
        self.validate(node)
        ranges = [
            range(level, maximum + 1)
            for level, maximum in zip(node, self.max_levels)
        ]
        return [
            candidate
            for candidate in itertools.product(*ranges)
            if candidate != node
        ]

    # -- application ------------------------------------------------------------
    def generalize_value(self, attribute: str, value, node: LevelVector) -> str:
        """Generalize one value of ``attribute`` according to lattice node."""
        position = self.attributes.index(attribute)
        hierarchy = self.hierarchies[attribute]
        return hierarchy.generalize_to_level(str(value), node[position])

    def generalize_tuple(self, values: Sequence, node: LevelVector) -> tuple:
        """Generalize a quasi-identifier tuple (aligned with ``attributes``)."""
        self.validate(node)
        return tuple(
            self.hierarchies[attribute].generalize_to_level(str(value), level)
            for attribute, value, level in zip(self.attributes, values, node)
        )

    def level_description(self, node: LevelVector) -> dict[str, int]:
        """Human-readable mapping ``attribute -> level`` for reports."""
        self.validate(node)
        return dict(zip(self.attributes, node))
