"""REP007 — retry discipline in the execution engine.

PR 7 made the engine fault tolerant, and fault tolerance is exactly the kind
of code that rots into hazards: a quick ``while True: submit(...)`` around a
flaky call, a ``time.sleep(1)`` "just to let things settle".  Both defeat the
design — the engine's one retry authority is the bounded
:class:`~repro.engine.resilience.ExecutionPolicy` (``max_attempts`` per
ladder rung, deterministic jittered backoff), so every retry terminates and
every faulted run is reproducible.

Inside the ``[rep007] scope`` prefixes this rule flags:

* **unbounded retry loops** — a ``while`` whose test is a constant truthy
  value (``while True``) and whose body reaches one of the manifest's
  ``resubmit_calls`` (``submit``, ``map``, ``execute_tasks``, ``run_many``).
  Retry loops must be bounded by policy state (``while pending``,
  ``while not state.done`` with a charged attempt per iteration), never by
  hope.
* **bare sleep backoff** — any ``time.sleep`` call outside the manifest's
  ``sleep_helpers`` (the one sanctioned site,
  ``resilience._sleep_backoff``, which derives its delay from the policy's
  bounded, deterministically jittered schedule).  Ad-hoc sleeps hide races
  instead of fixing them and add nondeterministic wall time to every run.

Deliberate exceptions (e.g. a fault-injection *hang*, whose sleep is the
failure being tested) carry a reasoned ``# repro: allow[REP007]``.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.analysis.core import Finding, ModuleContext, Rule, register
from repro.analysis.manifest import InvariantManifest


def _is_constant_true(test: ast.expr) -> bool:
    return isinstance(test, ast.Constant) and bool(test.value)


def _call_name(node: ast.Call) -> str | None:
    """The terminal name of a call: ``pool.submit(...)`` -> ``submit``."""
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def _body_calls(loop: ast.While) -> Iterator[ast.Call]:
    """Calls inside the loop body, without descending into nested functions."""
    stack: list[ast.AST] = list(loop.body) + list(loop.orelse)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        if isinstance(node, ast.Call):
            yield node
        stack.extend(ast.iter_child_nodes(node))


def _is_sleep_call(node: ast.Call) -> bool:
    func = node.func
    if isinstance(func, ast.Attribute) and func.attr == "sleep":
        # time.sleep / anything.sleep — the attribute form.
        return True
    return isinstance(func, ast.Name) and func.id == "sleep"


@register
class RetryDiscipline(Rule):
    code = "REP007"
    name = "retry-discipline"
    summary = "retries must consult a bounded ExecutionPolicy; no while-True submits, no bare sleep backoff"
    explanation = (
        "Inside the [rep007] scope, every retry must be bounded by "
        "ExecutionPolicy state: a `while True` loop that reaches a "
        "submission call (the manifest's resubmit_calls) can spin forever "
        "on a persistent fault — bound it on pending/attempt state and "
        "charge an attempt per iteration so policy.max_attempts "
        "terminates it.  Likewise, backoff must go through the manifest's "
        "sleep_helpers (resilience._sleep_backoff), which derives a "
        "bounded, deterministically jittered delay from the policy; a "
        "bare time.sleep hides races and adds nondeterministic wall time. "
        "A sleep that is itself the behaviour under test (fault-injection "
        "hangs) carries a reasoned `# repro: allow[REP007]`."
    )

    def check_module(
        self, module: ModuleContext, manifest: InvariantManifest
    ) -> Iterable[Finding]:
        scope = manifest.retry_scope
        if scope and not module.relpath.startswith(tuple(scope)):
            return
        resubmit = frozenset(manifest.resubmit_calls)
        sleep_helpers = frozenset(manifest.sleep_helpers)
        for node in module.walk():
            if isinstance(node, ast.While) and _is_constant_true(node.test):
                submits = sorted(
                    {
                        name
                        for name in map(_call_name, _body_calls(node))
                        if name is not None and name in resubmit
                    }
                )
                if submits:
                    yield module.finding(
                        self,
                        node,
                        f"unbounded 'while True' retry loop around "
                        f"{', '.join(submits)}(); bound the loop on "
                        f"ExecutionPolicy state (max_attempts / pending "
                        f"tasks) so a persistent fault terminates",
                    )
            elif isinstance(node, ast.Call) and _is_sleep_call(node):
                site = f"{module.relpath}::{module.qualname(node)}"
                if site in sleep_helpers:
                    continue
                yield module.finding(
                    self,
                    node,
                    "bare sleep in engine code; route backoff through the "
                    "policy-bounded helper (resilience._sleep_backoff) or "
                    "allow-list this site in the manifest's sleep_helpers",
                )
