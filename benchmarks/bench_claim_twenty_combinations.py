"""CLAIM-20COMB — "20 different combinations of algorithms" (Section 1).

SECRETA pairs each of the 4 relational algorithms with each of the 5
transaction algorithms (20 combinations), glued by a bounding method.  The
benchmark runs every combination on a small RT-dataset under the RTmerger
bounding method and verifies that each produces a (k, k^m)-anonymous output.
"""

from __future__ import annotations

import pytest

from repro.algorithms.rt import algorithm_pairs
from repro.datasets import generate_rt_dataset
from repro.engine import ExperimentResources, MethodEvaluator, rt_config
from repro.metrics import is_k_km_anonymous

K, M = 4, 1

_summary: dict[str, dict] = {}


@pytest.fixture(scope="module")
def small_rt():
    """A compact RT-dataset so that all 20 combinations finish quickly."""
    return generate_rt_dataset(n_records=120, n_items=15, seed=58)


@pytest.fixture(scope="module")
def shared_resources(small_rt):
    config = rt_config("cluster", "coat", k=K, m=M)
    return ExperimentResources.prepare(small_rt, config, workload_queries=20)


@pytest.mark.parametrize(
    "relational,transaction", algorithm_pairs(), ids=lambda value: str(value)
)
def test_combination(benchmark, small_rt, shared_resources, relational, transaction, record):
    config = rt_config(
        relational, transaction, bounding="rtmerger", k=K, m=M, delta=0.7,
        label=f"{relational}+{transaction}",
    )
    evaluator = MethodEvaluator(small_rt, shared_resources, verify_privacy=False)
    report = benchmark.pedantic(evaluator.evaluate, args=(config,), rounds=1, iterations=1)

    anonymous = is_k_km_anonymous(
        report.anonymized,
        k=K,
        m=M,
        hierarchy=shared_resources.item_hierarchy,
        universe=small_rt.item_universe("Items"),
    )
    _summary[config.display_label.split("/")[0]] = {
        "are": report.are,
        "runtime_seconds": report.runtime_seconds,
        "relational_gcp": report.utility["relational_gcp"],
        "transaction_ul": report.utility["transaction_ul"],
        "k_km_anonymous": anonymous,
    }
    record(
        "claim_twenty_combinations",
        {"k": K, "m": M, "combinations": len(_summary), "results": _summary},
    )
    assert anonymous, f"{config.display_label} violated (k, k^m)-anonymity"
