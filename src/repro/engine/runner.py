"""Execution of multiple anonymization requests: sequential, threads or processes.

SECRETA's backend "invokes one or more instances (threads) of the
Anonymization Module" and collects their results.  The pure-Python equivalent
offers three execution modes:

* ``"sequential"`` — the default: one task after another in this process,
* ``"thread"`` — a thread pool.  The support/union/metric kernels now run as
  NumPy bitset and gather operations (:mod:`repro.columnar`), which release
  the GIL for the duration of each array pass — so constraint-heavy
  COAT/PCTA tasks and metric evaluations genuinely overlap in thread mode
  (the default worker count follows ``os.cpu_count()``, like process mode),
  while the remaining pure-Python bookkeeping still serialises,
* ``"process"`` — a process pool that actually fans CPU-bound anonymization
  out across cores.  The worker callable and every task/result must be
  picklable (module-level functions, not closures or lambdas).  Large
  datasets should not travel inside the tasks: export them once through
  :meth:`repro.engine.pool.WorkerPool.share` and ship the manifest instead
  (the engine's experiment/comparator callers do this automatically — see
  ``docs/parallelism.md``).

The legacy ``parallel=True`` flag remains an alias for thread mode.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import TYPE_CHECKING, Callable, Iterable, Literal, Sequence, TypeVar

from repro.engine.resilience import ExecutionPolicy, RunReport, execute_tasks
from repro.exceptions import ConfigurationError

if TYPE_CHECKING:
    from repro.engine.checkpoint import CheckpointStore
    from repro.engine.pool import WorkerPool

TaskT = TypeVar("TaskT")
ResultT = TypeVar("ResultT")

ExecutionMode = Literal["sequential", "thread", "process"]

EXECUTION_MODES: tuple[ExecutionMode, ...] = ("sequential", "thread", "process")


def resolve_mode(parallel: bool = False, mode: str | None = None) -> ExecutionMode:
    """Normalise the (legacy flag, explicit mode) pair to one execution mode."""
    if mode is None:
        return "thread" if parallel else "sequential"
    if mode not in EXECUTION_MODES:
        raise ConfigurationError(
            f"unknown execution mode {mode!r}; expected one of {EXECUTION_MODES}"
        )
    return mode  # type: ignore[return-value]


def run_many(
    tasks: Sequence[TaskT] | Iterable[TaskT],
    worker: Callable[[TaskT], ResultT],
    parallel: bool = False,
    max_workers: int | None = None,
    mode: str | None = None,
    pool: "WorkerPool | None" = None,
    policy: "ExecutionPolicy | None" = None,
    report: RunReport | None = None,
    checkpoint: "CheckpointStore | None" = None,
    checkpoint_keys: Sequence[str] | None = None,
) -> list[ResultT]:
    """Apply ``worker`` to every task, preserving input order.

    ``mode`` selects the execution backend (see the module docstring); when
    omitted, ``parallel=True`` selects thread mode for backward compatibility.
    Both pool modes default to one worker per task capped at the CPU count:
    the thread-mode kernels are GIL-releasing NumPy passes, so threads scale
    with cores just like processes do.  ``max_workers`` must be positive (or
    ``None`` for the default).

    ``pool`` supplies a persistent :class:`~repro.engine.pool.WorkerPool` for
    process mode; without one, an ephemeral pool is created for the call.
    ``pool`` is ignored by the sequential and thread backends, and its own
    worker count takes precedence over ``max_workers``.

    ``policy`` selects the :class:`~repro.engine.resilience.ExecutionPolicy`
    the run executes under.  Process mode is *always* resilient (per-task
    futures, bounded retries, crash recovery; the pool's default policy
    applies when ``policy`` is omitted).  Sequential and thread mode run the
    plain fast path unless a ``policy`` or ``report`` is passed, in which
    case they route through the same engine — with retries, deterministic
    backoff and the per-task attempt history filled into ``report``.

    ``checkpoint`` threads a durable
    :class:`~repro.engine.checkpoint.CheckpointStore` through the run: every
    task needs a content-addressed key in ``checkpoint_keys``, completed
    tasks are persisted the moment they finish, and a re-run serves stored
    cells instead of recomputing (see :mod:`repro.engine.checkpoint`).
    """
    from repro.engine.pool import WorkerPool, validate_max_workers

    resolved = resolve_mode(parallel, mode)
    validate_max_workers(max_workers)
    tasks = list(tasks)
    if not tasks:
        return []
    if checkpoint is not None:
        from repro.engine.checkpoint import run_checkpointed

        return run_checkpointed(
            tasks,
            worker,
            checkpoint,
            checkpoint_keys,
            parallel=parallel,
            max_workers=max_workers,
            mode=mode,
            pool=pool,
            policy=policy,
            report=report,
        )
    resilient = policy is not None or report is not None
    if not resilient and (resolved == "sequential" or len(tasks) == 1):
        return [worker(task) for task in tasks]
    if resolved == "thread" and not resilient:
        workers = max_workers or min(len(tasks), os.cpu_count() or 1)
        with ThreadPoolExecutor(max_workers=workers) as executor:
            return list(executor.map(worker, tasks))
    if resolved != "process":
        from repro.engine.resilience import DEFAULT_POLICY

        return execute_tasks(
            tasks,
            worker,
            policy or DEFAULT_POLICY,
            backend=resolved,
            max_workers=max_workers or min(len(tasks), os.cpu_count() or 1),
            report=report,
        )
    if pool is not None:
        return pool.map(worker, tasks, policy=policy, report=report)
    workers = max_workers or min(len(tasks), os.cpu_count() or 1)
    with WorkerPool(max_workers=workers, policy=policy) as ephemeral:
        return ephemeral.map(worker, tasks, report=report)
