"""Tests for the Session facade (the headless GUI workflow)."""

import pytest

from repro import Session, relational_config, rt_config, transaction_config
from repro.exceptions import ConfigurationError


@pytest.fixture(scope="module")
def session():
    return Session.generate_rt(n_records=90, n_items=15, seed=37)


class TestConstruction:
    def test_generators(self):
        assert Session.generate_relational(n_records=20, seed=1).dataset.schema.relational
        assert Session.generate_transactions(n_records=20, seed=1).dataset.schema.transaction
        rt = Session.generate_rt(n_records=20, seed=1)
        assert rt.dataset.is_rt_dataset

    def test_from_csv(self, tmp_path):
        source = Session.generate_rt(n_records=15, seed=3)
        path = source.dataset_editor.save(tmp_path / "data.csv")
        loaded = Session.from_csv(path, transaction_columns=["Items"])
        assert len(loaded.dataset) == 15


class TestAnalysis:
    def test_summary_and_histogram(self, session):
        summary = session.summary()
        assert summary["records"] == len(session.dataset)
        histogram_text = session.histogram_text("Education")
        assert "Histogram of Education" in histogram_text


class TestEvaluationWorkflow:
    def test_evaluate_uses_editor_resources(self, session):
        session.configuration_editor.generate_hierarchies(fanout=3)
        session.queries_editor.generate(n_queries=10, seed=4)
        report = session.evaluate(rt_config("cluster", "apriori", k=3, m=1, delta=0.8))
        assert report.are >= 0
        assert report.privacy["k_anonymous"]

    def test_sweep_series(self, session):
        sweep = session.sweep(transaction_config("apriori", m=1), "k", 2, 6, 2)
        assert sweep.values == [2, 4, 6]
        assert len(sweep.series["are"]) == 3

    def test_compare_requires_configurations(self, session):
        with pytest.raises(ConfigurationError):
            session.compare([], "k", 2, 4, 2)

    def test_compare_two_methods(self, session):
        report = session.compare(
            [
                transaction_config("apriori", m=1, label="AA"),
                transaction_config("vpa", m=1, label="VPA"),
            ],
            "k",
            2,
            4,
            2,
        )
        assert len(report.sweeps) == 2
        assert report.values == [2, 4]

    def test_verify_privacy_toggle(self, session):
        session.verify_privacy = False
        report = session.evaluate(transaction_config("apriori", k=3, m=1))
        assert report.privacy["km_anonymous"] is None
        session.verify_privacy = True


class TestExport:
    def test_export_all_inputs(self, tmp_path):
        session = Session.generate_rt(n_records=25, n_items=10, seed=5)
        session.configuration_editor.generate_hierarchies(fanout=3)
        session.configuration_editor.generate_policies(k=3)
        session.queries_editor.generate(n_queries=5, seed=1)
        written = session.export_all_inputs(tmp_path)
        assert written["dataset"].exists()
        assert written["workload"].exists()
        assert written["privacy"].exists()

    def test_exporter_round_trip_evaluation(self, tmp_path):
        session = Session.generate_rt(n_records=30, n_items=10, seed=6)
        report = session.evaluate(transaction_config("apriori", k=3, m=1))
        written = session.exporter(tmp_path).export_evaluation(report)
        assert written["anonymized"].exists()
