"""VPA: Vertical Partitioning Anonymization for set-valued data (Terrovitis et al., VLDB J. 2011).

VPA attacks the combinatorial cost of k^m-anonymization from the other
direction than LRA: instead of splitting the *records*, it splits the *item
universe* into parts, anonymizes the projection of the dataset on each part
independently (a much smaller problem), and then runs a final repair pass on
the recombined dataset to fix combinations that span different parts.

All phases share a single global generalization cut over the item hierarchy,
so the repair pass starts from the per-part solutions instead of from
scratch; the final result is checked (and if necessary further generalized)
against the full dataset, which is what guarantees k^m-anonymity.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import AnonymizationResult, Anonymizer, PhaseTimer
from repro.algorithms.transaction._itemcut import ItemCut, greedy_km_anonymize
from repro.datasets.dataset import Dataset
from repro.exceptions import AlgorithmError, ConfigurationError
from repro.hierarchy.builders import build_item_hierarchy
from repro.hierarchy.hierarchy import Hierarchy
from repro.metrics.transaction import utility_loss


class VpaAnonymizer(Anonymizer):
    """k^m-anonymity via vertical partitioning plus a global repair pass."""

    name = "vpa"
    data_kind = "transaction"

    def __init__(
        self,
        k: int,
        m: int = 2,
        hierarchy: Hierarchy | None = None,
        attribute: str | None = None,
        n_parts: int = 3,
        hierarchy_fanout: int = 4,
    ):
        if k < 2:
            raise ConfigurationError("VpaAnonymizer: k must be at least 2")
        if m < 1:
            raise ConfigurationError("VpaAnonymizer: m must be at least 1")
        if n_parts < 1:
            raise ConfigurationError("VpaAnonymizer: n_parts must be at least 1")
        self.k = int(k)
        self.m = int(m)
        self.hierarchy = hierarchy
        self.attribute = attribute
        self.n_parts = int(n_parts)
        self.hierarchy_fanout = hierarchy_fanout

    def parameters(self) -> dict:
        return {
            "k": self.k,
            "m": self.m,
            "attribute": self.attribute,
            "n_parts": self.n_parts,
        }

    def _partition_items(self, universe: set[str]) -> list[set[str]]:
        """Split the item universe into balanced, contiguous parts."""
        ordered = sorted(universe)
        parts = np.array_split(np.arange(len(ordered)), min(self.n_parts, len(ordered)))
        return [
            {ordered[index] for index in part.tolist()} for part in parts if len(part)
        ]

    def anonymize(self, dataset: Dataset) -> AnonymizationResult:
        attribute = self.attribute or dataset.single_transaction_attribute()
        timer = PhaseTimer()
        universe = dataset.item_universe(attribute)
        if not universe:
            raise AlgorithmError("VpaAnonymizer: the transaction attribute is empty")
        with timer.phase("hierarchy"):
            hierarchy = self.hierarchy or build_item_hierarchy(
                universe, fanout=self.hierarchy_fanout, attribute=attribute
            )

        itemsets = [record[attribute] for record in dataset]
        cut = ItemCut(hierarchy, universe)

        with timer.phase("per-part anonymization"):
            parts = self._partition_items(universe)
            part_steps = 0
            for part in parts:
                projections = [
                    frozenset(item for item in itemset if item in part)
                    for itemset in itemsets
                ]
                cut, statistics = greedy_km_anonymize(
                    projections, hierarchy, self.k, self.m, cut=cut, apriori_order=True
                )
                part_steps += statistics["generalization_steps"]

        with timer.phase("global repair"):
            cut, repair_statistics = greedy_km_anonymize(
                itemsets, hierarchy, self.k, self.m, cut=cut, apriori_order=True
            )

        suppressed_everything = False
        with timer.phase("apply"):
            anonymized = dataset.copy(name=f"{dataset.name}[vpa]")
            if repair_statistics["unresolvable_violations"]:
                anonymized.map_column(attribute, lambda _items: [])
                suppressed_everything = True
            else:
                anonymized.map_column(
                    attribute, lambda items: sorted(cut.generalize_itemset(items))
                )

        statistics = {
            "parts": len(parts),
            "part_generalization_steps": part_steps,
            "repair_generalization_steps": repair_statistics["generalization_steps"],
            "final_nodes": repair_statistics["final_nodes"],
            "suppressed_everything": suppressed_everything,
            "utility_loss": utility_loss(
                dataset, anonymized, attribute=attribute, hierarchy=hierarchy
            ),
        }
        return AnonymizationResult(
            dataset=anonymized,
            algorithm=self.name,
            parameters=self.parameters(),
            runtime_seconds=timer.total,
            phase_seconds=timer.phases,
            statistics=statistics,
        )
