"""Unit tests for the project import/call graph (repro.analysis.graph)."""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.analysis.core import ModuleContext, Project
from repro.analysis.graph import ProjectGraph, call_name, module_names
from repro.analysis.manifest import InvariantManifest

ALPHA = """
    from pkg.beta import helper

    class Engine:
        def __init__(self, size):
            self.size = size

        def run(self, x):
            return self.step(x) + helper(x)

        def step(self, x):
            return x + 1

    def make():
        engine = Engine(4)
        return mystery(engine)

    def outer():
        def inner():
            return 1

        return inner
"""

BETA = """
    import pkg.alpha as alpha_mod

    def helper(x):
        return x * 2

    def cross():
        return alpha_mod.make()
"""


def build_project(root: Path, files: dict[str, str]) -> Project:
    modules = []
    for relpath, source in files.items():
        path = root / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
        modules.append(ModuleContext(root, path, path.read_text()))
    return Project(root, modules, InvariantManifest())


@pytest.fixture
def graph(tmp_path) -> ProjectGraph:
    project = build_project(
        tmp_path,
        {
            "src/pkg/__init__.py": "",
            "src/pkg/alpha.py": ALPHA,
            "src/pkg/beta.py": BETA,
        },
    )
    return project.graph()


class TestModuleNames:
    def test_src_layout_gets_both_spellings(self):
        assert module_names("src/pkg/alpha.py") == ("src.pkg.alpha", "pkg.alpha")

    def test_package_init_takes_package_name(self):
        assert "pkg" in module_names("src/pkg/__init__.py")

    def test_non_python_path_is_empty(self):
        assert module_names("README.md") == ()


class TestCollection:
    def test_methods_carry_owner_class_and_self(self, graph):
        info = graph.function("src/pkg/alpha.py::Engine.run")
        assert info is not None
        assert info.owner_class == "Engine"
        assert info.params == ("self", "x")
        assert not info.nested

    def test_nested_function_is_marked(self, graph):
        info = graph.function("src/pkg/alpha.py::outer.inner")
        assert info is not None
        assert info.nested

    def test_methods_of_lists_direct_methods_only(self, graph):
        names = {
            info.qualname
            for info in graph.methods_of("src/pkg/alpha.py::Engine")
        }
        assert names == {"Engine.__init__", "Engine.run", "Engine.step"}


class TestResolution:
    def _sites(self, graph, fid):
        return {site.name: site for site in graph.call_sites(fid)}

    def test_self_method_call_resolves(self, graph):
        sites = self._sites(graph, "src/pkg/alpha.py::Engine.run")
        assert sites["step"].callee == "src/pkg/alpha.py::Engine.step"

    def test_from_import_symbol_resolves_across_modules(self, graph):
        sites = self._sites(graph, "src/pkg/alpha.py::Engine.run")
        assert sites["helper"].callee == "src/pkg/beta.py::helper"

    def test_constructor_call_records_the_class(self, graph):
        sites = self._sites(graph, "src/pkg/alpha.py::make")
        assert sites["Engine"].constructs == "src/pkg/alpha.py::Engine"

    def test_module_alias_attribute_call_resolves(self, graph):
        sites = self._sites(graph, "src/pkg/beta.py::cross")
        assert sites["make"].callee == "src/pkg/alpha.py::make"

    def test_unresolved_call_still_yields_a_site(self, graph):
        sites = self._sites(graph, "src/pkg/alpha.py::make")
        assert "mystery" in sites
        assert sites["mystery"].callee is None

    def test_callers_of_inverts_the_edge(self, graph):
        assert "src/pkg/alpha.py::Engine.run" in graph.callers_of(
            "src/pkg/beta.py::helper"
        )


class TestGraphShape:
    def test_import_edges_are_project_internal(self, graph):
        assert "src/pkg/beta.py" in graph.module_imports["src/pkg/alpha.py"]
        assert "src/pkg/alpha.py" in graph.module_imports["src/pkg/beta.py"]

    def test_stats_keys_and_consistency(self, graph):
        stats = graph.stats()
        assert set(stats) == {
            "modules",
            "import_edges",
            "functions",
            "call_sites",
            "resolved_call_sites",
            "call_edges",
        }
        assert stats["modules"] == 3
        assert stats["resolved_call_sites"] <= stats["call_sites"]
        assert stats["call_edges"] == graph.edge_count

    def test_project_graph_is_cached(self, tmp_path):
        project = build_project(tmp_path, {"src/only.py": "x = 1\n"})
        assert project.graph() is project.graph()


class TestCallName:
    def test_last_dotted_component(self):
        import ast

        call = ast.parse("a.b.close()").body[0].value
        assert call_name(call) == "close"
