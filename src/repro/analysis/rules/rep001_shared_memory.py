"""REP001 — shared-memory segments must have a reachable unlink.

A ``SharedMemory(create=True)`` segment is a kernel object: if the process
exits without ``unlink()`` the segment leaks in ``/dev/shm`` until reboot.
PR 4's export protocol guards every segment with ``try/finally`` plus a
``weakref.finalize`` backstop; this rule makes that discipline mechanical.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.analysis.core import Finding, ModuleContext, Rule, register
from repro.analysis.manifest import InvariantManifest


def _is_shared_memory_create(node: ast.Call) -> bool:
    func = node.func
    name = func.id if isinstance(func, ast.Name) else None
    if isinstance(func, ast.Attribute):
        name = func.attr
    if name != "SharedMemory":
        return False
    for keyword in node.keywords:
        if keyword.arg == "create":
            value = keyword.value
            return isinstance(value, ast.Constant) and value.value is True
    return False


def _calls_helper(nodes: Iterable[ast.AST], helpers: tuple[str, ...]) -> bool:
    for root in nodes:
        for node in ast.walk(root):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = func.id if isinstance(func, ast.Name) else None
            if isinstance(func, ast.Attribute):
                name = func.attr
            if name in helpers:
                return True
    return False


def _is_finalize_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "finalize"
    ) or (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "finalize"
    )


@register
class SharedMemoryLifecycle(Rule):
    code = "REP001"
    name = "shared-memory-lifecycle"
    summary = "SharedMemory(create=True) needs an unlink reachable on every exit path"
    explanation = (
        "Creating a shared-memory segment allocates a named kernel object "
        "that outlives the process unless unlink() runs.  Every "
        "SharedMemory(create=True) call must therefore sit in a scope that "
        "guarantees cleanup: a try/finally (or an except handler that cleans "
        "up and re-raises) calling unlink/close or one of the manifest's "
        "cleanup_helpers, a with-statement, or a weakref.finalize guard "
        "registered in the same scope (the pattern SharedDatasetExport uses). "
        "Without one, a crash between creation and the eventual cleanup call "
        "leaks the segment in /dev/shm."
    )

    def check_module(
        self, module: ModuleContext, manifest: InvariantManifest
    ) -> Iterable[Finding]:
        helpers = tuple(manifest.cleanup_helpers) or ("unlink", "close")
        for node in module.walk():
            if not (isinstance(node, ast.Call) and _is_shared_memory_create(node)):
                continue
            if not self._is_guarded(module, node, helpers):
                yield module.finding(
                    self,
                    node,
                    "SharedMemory(create=True) without a reachable unlink "
                    "(wrap in try/finally, a context manager, or register a "
                    "weakref.finalize guard in the same scope)",
                )

    def _is_guarded(
        self, module: ModuleContext, call: ast.Call, helpers: tuple[str, ...]
    ) -> bool:
        scope: ast.AST = module.enclosing_function(call) or module.tree
        for candidate in self._scope_nodes(scope):
            if _is_finalize_call(candidate):
                return True
            if isinstance(candidate, ast.With):
                for item in candidate.items:
                    if call in ast.walk(item.context_expr):
                        return True
            if isinstance(candidate, ast.Try):
                if _calls_helper(candidate.finalbody, helpers):
                    return True
                for handler in candidate.handlers:
                    cleans = _calls_helper(handler.body, helpers)
                    reraises = any(
                        isinstance(inner, ast.Raise)
                        for stmt in handler.body
                        for inner in ast.walk(stmt)
                    )
                    if cleans and reraises:
                        return True
        return False

    def _scope_nodes(self, scope: ast.AST) -> Iterator[ast.AST]:
        """Walk the scope without descending into nested function bodies."""
        stack: list[ast.AST] = [scope]
        while stack:
            node = stack.pop()
            yield node
            for child in ast.iter_child_nodes(node):
                if isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
                ):
                    continue
                stack.append(child)
