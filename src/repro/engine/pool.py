"""A persistent process pool with shared-memory dataset fan-out.

SECRETA's backend "invokes one or more instances of the Anonymization
Module"; :class:`WorkerPool` is the process-backed version of that fleet.
It differs from the ad-hoc ``ProcessPoolExecutor`` the runner used to create
per call in two ways:

* **persistent workers** — the pool is spawned once and reused across sweeps
  and comparisons, so per-run fan-out cost is task submission, not process
  creation, and worker-side caches (attached shared datasets, memoized
  interpreters) survive between tasks;
* **shared datasets** — :meth:`WorkerPool.share` exports a dataset's columnar
  arrays into a shared-memory segment
  (:class:`~repro.columnar.shared.SharedDatasetExport`) and returns the small
  picklable manifest; tasks ship the manifest instead of the dataset, and
  workers attach zero-copy views (memoized per process).

The pool owns every segment it exported: :meth:`close` (or leaving the
context manager, including on exceptions) shuts the executor down and
unlinks all segments; each export additionally carries a finalizer so
segments never outlive the interpreter even if ``close`` is skipped.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from typing import TYPE_CHECKING, Any, Callable, Iterable, Sequence, TypeVar

from repro.columnar.shared import SharedDatasetExport, SharedDatasetManifest
from repro.exceptions import ConfigurationError, SecretaError

if TYPE_CHECKING:
    from repro.datasets.dataset import Dataset

TaskT = TypeVar("TaskT")
ResultT = TypeVar("ResultT")


def validate_max_workers(max_workers: int | None) -> None:
    """Reject zero/negative worker counts instead of silently defaulting."""
    if max_workers is not None and max_workers < 1:
        raise ConfigurationError(
            f"max_workers must be a positive integer or None, got {max_workers!r}"
        )


def require_picklable_worker(worker: Callable) -> None:
    """Fail fast, with a clear message, on workers process mode cannot ship."""
    try:
        pickle.dumps(worker)
    except SecretaError:
        # A __reduce__ hook that already raised a typed error stays as-is;
        # wrapping it again would bury the specific failure.
        raise
    except Exception as error:
        raise ConfigurationError(
            f"mode='process' requires a picklable worker callable, but "
            f"{worker!r} cannot be pickled ({error}); define the worker as a "
            f"module-level function instead of a lambda, closure or bound "
            f"method of an unpicklable object"
        ) from error


class WorkerPool:
    """A reusable process pool plus the shared-memory exports it owns.

    Parameters
    ----------
    max_workers:
        Pool size; defaults to ``os.cpu_count()``.  Zero or negative values
        raise :class:`~repro.exceptions.ConfigurationError`.
    mp_context:
        Optional ``multiprocessing`` context (e.g. ``get_context("spawn")``);
        defaults to the platform's default start method.
    """

    def __init__(
        self, max_workers: int | None = None, mp_context: Any | None = None
    ) -> None:
        validate_max_workers(max_workers)
        self._max_workers = max_workers or (os.cpu_count() or 1)
        self._mp_context = mp_context
        self._executor: ProcessPoolExecutor | None = None
        #: id(dataset) -> (dataset, export).  The strong dataset reference
        #: keeps the id stable for the pool's lifetime.
        self._exports: dict[int, tuple[Any, SharedDatasetExport]] = {}
        self._closed = False

    # -- introspection -------------------------------------------------------
    @property
    def max_workers(self) -> int:
        return self._max_workers

    @property
    def closed(self) -> bool:
        return self._closed

    def segment_names(self) -> list[str]:
        """Names of the live shared-memory segments this pool owns."""
        return [export.segment_name for _, export in self._exports.values()]

    # -- sharing -------------------------------------------------------------
    def share(self, dataset: "Dataset") -> SharedDatasetManifest:
        """Export ``dataset`` (once) and return its picklable manifest.

        Repeated calls with the same, unmutated dataset reuse the export;
        a mutated dataset (its columnar cache was invalidated) is re-exported
        and the stale segment unlinked immediately.
        """
        self._require_open()
        entry = self._exports.get(id(dataset))
        if entry is not None:
            held, export = entry
            if held is dataset and export.matches(dataset):
                return export.manifest
            export.close()
            del self._exports[id(dataset)]
        export = SharedDatasetExport(dataset)
        self._exports[id(dataset)] = (dataset, export)
        return export.manifest

    # -- execution -----------------------------------------------------------
    def map(
        self,
        worker: Callable[[TaskT], ResultT],
        tasks: Sequence[TaskT] | Iterable[TaskT],
    ) -> list[ResultT]:
        """Apply ``worker`` to every task in the pool, preserving order."""
        self._require_open()
        require_picklable_worker(worker)
        tasks = list(tasks)
        if not tasks:
            return []
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=self._max_workers, mp_context=self._mp_context
            )
        try:
            return list(self._executor.map(worker, tasks))
        except (pickle.PicklingError, TypeError, AttributeError) as error:
            # Unpicklable payloads surface as PicklingError, TypeError
            # ("cannot pickle ...") or AttributeError ("Can't pickle local
            # object ..."), depending on the offending object; only translate
            # genuine pickling failures — a worker's own TypeError must pass
            # through untouched.
            if isinstance(error, pickle.PicklingError) or "pickle" in str(error).lower():
                raise ConfigurationError(
                    f"mode='process' could not pickle a task or result "
                    f"({error}); ship shared datasets via WorkerPool.share() "
                    f"and keep task payloads to plain picklable values"
                ) from error
            raise

    # -- lifecycle -----------------------------------------------------------
    def close(self) -> None:
        """Shut the workers down and unlink every owned segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        executor, self._executor = self._executor, None
        try:
            if executor is not None:
                executor.shutdown(wait=True)
        finally:
            exports, self._exports = self._exports, {}
            for _, export in exports.values():
                export.close()

    def _require_open(self) -> None:
        if self._closed:
            raise ConfigurationError("the worker pool has been closed")

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return (
            f"WorkerPool(max_workers={self._max_workers}, "
            f"exports={len(self._exports)}, {state})"
        )


def fan_out_shared(
    dataset: "Dataset",
    make_tasks: Callable[[Any], Sequence],
    worker: Callable,
    pool: WorkerPool | None = None,
    max_workers: int | None = None,
) -> list:
    """Run ``worker`` over ``make_tasks(manifest)`` with a shared dataset.

    The one orchestration pattern the experiment and comparator both need:
    export ``dataset`` to shared memory, build the tasks around the manifest,
    and fan them out — on the caller's persistent ``pool`` when given (the
    export is cached there), otherwise on an ephemeral pool sized to the
    task count and torn down (segments unlinked) before returning.
    """
    from repro.engine.runner import run_many

    validate_max_workers(max_workers)
    if pool is not None:
        return run_many(
            make_tasks(pool.share(dataset)), worker, mode="process", pool=pool
        )
    export = SharedDatasetExport(dataset)
    try:
        tasks = make_tasks(export.manifest)
        workers = max_workers or min(len(tasks), os.cpu_count() or 1)
        with WorkerPool(max_workers=workers) as ephemeral:
            return run_many(tasks, worker, mode="process", pool=ephemeral)
    finally:
        export.close()
