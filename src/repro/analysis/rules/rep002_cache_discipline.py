"""REP002 — dataset state mutations must go through sanctioned mutators.

``Dataset`` caches columnar projections in ``_columnar``; every sanctioned
mutator invalidates the affected entries.  A write to ``_records`` /
``_columnar`` / ``_schema`` (or a call to the private ``Record`` mutators)
from anywhere else can leave the cache describing records that no longer
exist — the bug class PR 3's columnar kernels made possible and PR 5's
universe-aware estimation made expensive to debug.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.core import Finding, ModuleContext, Rule, register
from repro.analysis.manifest import InvariantManifest

#: Method names that mutate a list/dict in place when called on a protected
#: attribute (``x._records.append(...)``, ``x._columnar.clear()``).
_MUTATING_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "remove",
        "pop",
        "clear",
        "sort",
        "reverse",
        "setdefault",
        "update",
    }
)


def _protected_attr(node: ast.expr, protected: tuple[str, ...]) -> str | None:
    if isinstance(node, ast.Attribute) and node.attr in protected:
        return node.attr
    return None


@register
class CacheDiscipline(Rule):
    code = "REP002"
    name = "cache-invalidation-discipline"
    summary = "Dataset record/attribute state may only be written by sanctioned mutators"
    explanation = (
        "Dataset._columnar caches column projections and is invalidated by "
        "the public mutators (append, set_value, map_column, ...).  Writing "
        "_records/_columnar/_schema directly, mutating them in place, or "
        "calling the private Record mutators (_set/_delete/_rename) from "
        "outside the sanctioned modules bypasses that invalidation and "
        "silently desynchronizes the cache from the records.  Route changes "
        "through Dataset's public API; if a module genuinely needs raw "
        "access (e.g. the shared-memory attach path rebuilding a fresh "
        "Dataset) suppress with a reason explaining why the cache stays "
        "coherent."
    )
    scope_prefixes = ("src/",)

    def check_module(
        self, module: ModuleContext, manifest: InvariantManifest
    ) -> Iterable[Finding]:
        if module.relpath in manifest.sanctioned_modules:
            return
        protected = manifest.protected_attributes
        mutators = frozenset(manifest.record_mutators)
        for node in module.walk():
            if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    attr = _protected_attr(target, protected)
                    if attr is None and isinstance(target, ast.Subscript):
                        attr = _protected_attr(target.value, protected)
                    if attr is not None:
                        yield module.finding(
                            self,
                            node,
                            f"write to {attr} outside the sanctioned mutators "
                            f"bypasses columnar-cache invalidation",
                        )
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    attr = _protected_attr(target, protected)
                    if isinstance(target, ast.Subscript):
                        attr = attr or _protected_attr(target.value, protected)
                    if attr is not None:
                        yield module.finding(
                            self,
                            node,
                            f"delete of {attr} outside the sanctioned mutators "
                            f"bypasses columnar-cache invalidation",
                        )
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                if node.func.attr in mutators:
                    yield module.finding(
                        self,
                        node,
                        f"call to private Record mutator {node.func.attr}() "
                        f"outside the sanctioned modules; use Dataset's "
                        f"public mutators instead",
                    )
                elif node.func.attr in _MUTATING_METHODS:
                    attr = _protected_attr(node.func.value, protected)
                    if attr is not None:
                        yield module.finding(
                            self,
                            node,
                            f"in-place mutation of {attr} via "
                            f".{node.func.attr}() outside the sanctioned "
                            f"mutators bypasses columnar-cache invalidation",
                        )
