"""Verification of privacy guarantees.

These checks are what make the reproduction trustworthy: every algorithm's
output is validated against its declared privacy model, both in the test
suite and (optionally) by the engine after each run.

* *k*-anonymity for relational attributes: every combination of
  quasi-identifier values shared by at least ``k`` records.
* *k*:sup:`m`-anonymity for transaction attributes: an adversary who knows up
  to ``m`` items of an individual cannot narrow that individual down to fewer
  than ``k`` records.  On generalized data the check is performed against the
  *candidate* records — those whose (possibly generalized) itemsets could
  contain the known items — which is the attacker's view and is valid for
  both global and local recoding.
* (*k*, *k*:sup:`m`)-anonymity for RT-datasets (Poulis et al. 2013): the
  relational part is *k*-anonymous and, within every relational equivalence
  class, the transaction part is *k*:sup:`m`-anonymous.

The *k*:sup:`m` check runs on the interpretation index and the bitset layer:
labels resolve to leaf sets through the memoized
:func:`repro.index.interpreter_for` (once per *distinct* itemset instead of
per record per label), per-item candidate bitsets are packed once, and each
item combination costs one word-wise AND plus a popcount — with zero-support
prefixes pruned, since their supersets cannot violate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.columnar.bitset import indices_of, popcount, posting_matrix
from repro.datasets.dataset import Dataset
from repro.exceptions import DatasetError
from repro.hierarchy.hierarchy import Hierarchy
from repro.index import interpreter_for


# -- relational: k-anonymity ---------------------------------------------------
def equivalence_classes(
    dataset: Dataset, attributes: Sequence[str] | None = None
) -> dict[tuple, list[int]]:
    """Equivalence classes over the given (default: QI relational) attributes."""
    if attributes is None:
        attributes = [
            attribute.name
            for attribute in dataset.schema.relational
            if attribute.quasi_identifier
        ]
    return dataset.group_by(list(attributes))


def min_class_size(dataset: Dataset, attributes: Sequence[str] | None = None) -> int:
    """Size of the smallest equivalence class (0 for an empty dataset)."""
    groups = equivalence_classes(dataset, attributes)
    return min((len(indices) for indices in groups.values()), default=0)


@dataclass(frozen=True)
class KViolation:
    """An equivalence class smaller than ``k``, with the records inside it.

    The ``records`` are the indices of the offending class — the
    counterexample an auditor can look up directly in the dataset.
    """

    values: tuple
    size: int
    records: tuple[int, ...]


def k_violations(
    dataset: Dataset,
    k: int,
    attributes: Sequence[str] | None = None,
    max_violations: int | None = None,
) -> list[KViolation]:
    """Every equivalence class of fewer than ``k`` records, as witnesses."""
    if k < 1:
        raise DatasetError("k must be at least 1")
    violations: list[KViolation] = []
    for values, indices in equivalence_classes(dataset, attributes).items():
        if len(indices) < k:
            violations.append(
                KViolation(values=values, size=len(indices), records=tuple(indices))
            )
            if max_violations is not None and len(violations) >= max_violations:
                break
    return violations


def is_k_anonymous(
    dataset: Dataset, k: int, attributes: Sequence[str] | None = None
) -> bool:
    """Whether every equivalence class has at least ``k`` records."""
    if len(dataset) == 0:
        if k < 1:
            raise DatasetError("k must be at least 1")
        return True
    return not k_violations(dataset, k, attributes, max_violations=1)


# -- transactions: k^m-anonymity ------------------------------------------------
def candidate_support(
    dataset: Dataset,
    items: Iterable[str],
    attribute: str | None = None,
    hierarchy: Hierarchy | None = None,
    universe: set[str] | None = None,
) -> int:
    """Number of records whose itemsets could contain all of ``items``."""
    attribute = attribute or dataset.single_transaction_attribute()
    items = [str(item) for item in items]
    interpreter = interpreter_for(hierarchy, universe)
    covered_cache: dict[frozenset, frozenset[str]] = {}
    support = 0
    for record in dataset:
        labels = record[attribute]
        covered = covered_cache.get(labels)
        if covered is None:
            resolved: set[str] = set()
            for label in labels:
                resolved |= interpreter.leaves(label)
            covered = frozenset(resolved)
            covered_cache[labels] = covered
        if all(item in covered for item in items):
            support += 1
    return support


def candidate_matrix(
    dataset: Dataset,
    attribute: str,
    interpreter,
    ordered_items: Sequence[str],
) -> np.ndarray:
    """Per-item candidate-record bitsets of an anonymized transaction column.

    Row ``t`` is the bitset of records whose (possibly generalized) itemset
    *covers* item ``ordered_items[t]`` — the attacker's view of who could
    hold the item.  Itemset resolution is memoized per distinct itemset by
    the shared ``interpreter``; items outside ``ordered_items`` are ignored.
    """
    token_of = {item: token for token, item in enumerate(ordered_items)}
    itemset_tokens: dict[frozenset, np.ndarray] = {}
    token_chunks: list[np.ndarray] = []
    record_chunks: list[np.ndarray] = []
    for position, record in enumerate(dataset):
        labels = record[attribute]
        tokens = itemset_tokens.get(labels)
        if tokens is None:
            covered = [
                item
                for item in interpreter.covered_items(labels)
                if item in token_of
            ]
            tokens = np.fromiter(
                (token_of[item] for item in covered),
                dtype=np.int64,
                count=len(covered),
            )
            itemset_tokens[labels] = tokens
        if tokens.size:
            token_chunks.append(tokens)
            record_chunks.append(np.full(tokens.size, position, dtype=np.int64))
    return posting_matrix(
        np.concatenate(token_chunks) if token_chunks else np.empty(0, np.int64),
        np.concatenate(record_chunks) if record_chunks else np.empty(0, np.int64),
        len(ordered_items),
        len(dataset),
    )


@dataclass(frozen=True)
class KmViolation:
    """A combination of at most ``m`` items supported by fewer than ``k`` records.

    ``records`` holds the candidate records supporting the combination — the
    individuals an adversary knowing exactly these items would single out.
    """

    items: tuple[str, ...]
    support: int
    records: tuple[int, ...] = ()


def km_violations(
    dataset: Dataset,
    k: int,
    m: int,
    attribute: str | None = None,
    hierarchy: Hierarchy | None = None,
    universe: Iterable[str] | None = None,
    max_violations: int | None = None,
) -> list[KmViolation]:
    """All item combinations of size <= ``m`` violating k^m-anonymity.

    ``universe`` defaults to the set of original items the anonymized labels
    may stand for; pass the original dataset's universe to check against the
    attacker's full vocabulary.
    """
    if k < 1 or m < 1:
        raise DatasetError("k and m must be at least 1")
    attribute = attribute or dataset.single_transaction_attribute()

    if universe is None:
        unrestricted = interpreter_for(hierarchy)
        derived: set[str] = set()
        for record in dataset:
            for label in record[attribute]:
                derived |= unrestricted.leaves(label)
        universe = derived
    universe_set = {str(item) for item in universe}
    ordered = sorted(universe_set)

    # Pack each item's candidate records (records whose covered leaf set
    # contains the item) into one bitset row; itemset resolution is memoized
    # per distinct itemset by the shared interpreter.
    interpreter = interpreter_for(hierarchy, universe_set)
    candidates = candidate_matrix(dataset, attribute, interpreter, ordered)

    violations: list[KmViolation] = []
    limit = max_violations if max_violations is not None else -1

    def scan(prefix_bits, start: int, remaining: int, prefix: tuple[str, ...]) -> bool:
        """Extend ``prefix`` by every item from ``start`` on; True = limit hit."""
        for token in range(start, len(ordered) - remaining + 1):
            bits = (
                candidates[token]
                if prefix_bits is None
                else prefix_bits & candidates[token]
            )
            if remaining == 1:
                support = popcount(bits)
                if 0 < support < k:
                    violations.append(
                        KmViolation(
                            items=prefix + (ordered[token],),
                            support=support,
                            records=tuple(int(i) for i in indices_of(bits)),
                        )
                    )
                    if limit >= 0 and len(violations) >= limit:
                        return True
            else:
                # A zero-support prefix cannot produce a violation: all of
                # its supersets have support 0 as well.
                if not bits.any():
                    continue
                if scan(bits, token + 1, remaining - 1, prefix + (ordered[token],)):
                    return True
        return False

    # Enumerate by combination size (then lexicographically), matching the
    # order of the original itertools.combinations scan.
    for size in range(1, m + 1):
        if scan(None, 0, size, ()):
            return violations
    return violations


def is_km_anonymous(
    dataset: Dataset,
    k: int,
    m: int,
    attribute: str | None = None,
    hierarchy: Hierarchy | None = None,
    universe: Iterable[str] | None = None,
) -> bool:
    """Whether the transaction attribute satisfies k^m-anonymity."""
    return not km_violations(
        dataset,
        k,
        m,
        attribute=attribute,
        hierarchy=hierarchy,
        universe=universe,
        max_violations=1,
    )


# -- RT-datasets: (k, k^m)-anonymity ----------------------------------------------
@dataclass(frozen=True)
class KKmViolation:
    """One way an RT-dataset fails (k, k^m)-anonymity.

    ``kind`` is ``"relational"`` (an equivalence class smaller than ``k``;
    ``items`` empty) or ``"transaction"`` (within the class identified by
    ``class_values``, knowing ``items`` narrows the candidates down to
    ``support`` < ``k`` records).  ``records`` always holds dataset-level
    indices of the singled-out records.
    """

    kind: str
    class_values: tuple
    records: tuple[int, ...]
    items: tuple[str, ...] = ()
    support: int = 0


def k_km_violations(
    dataset: Dataset,
    k: int,
    m: int,
    relational_attributes: Sequence[str] | None = None,
    transaction_attribute: str | None = None,
    hierarchy: Hierarchy | None = None,
    universe: Iterable[str] | None = None,
    max_violations: int | None = None,
) -> list[KKmViolation]:
    """Witnesses against (k, k^m)-anonymity (Poulis et al. 2013).

    The relational projection must be k-anonymous and the transaction
    projection of *every relational equivalence class* must be k^m-anonymous;
    each failure of either condition becomes one :class:`KKmViolation`.
    """
    transaction_attribute = (
        transaction_attribute or dataset.single_transaction_attribute()
    )
    violations: list[KKmViolation] = []

    def full() -> bool:
        return max_violations is not None and len(violations) >= max_violations

    for class_violation in k_violations(
        dataset, k, relational_attributes, max_violations=max_violations
    ):
        violations.append(
            KKmViolation(
                kind="relational",
                class_values=class_violation.values,
                records=class_violation.records,
            )
        )
        if full():
            return violations
    for values, indices in equivalence_classes(
        dataset, relational_attributes
    ).items():
        subset = dataset.subset(indices)
        remaining = None if max_violations is None else max_violations - len(violations)
        for km_violation in km_violations(
            subset,
            k,
            m,
            attribute=transaction_attribute,
            hierarchy=hierarchy,
            universe=universe,
            max_violations=remaining,
        ):
            violations.append(
                KKmViolation(
                    kind="transaction",
                    class_values=values,
                    records=tuple(indices[local] for local in km_violation.records),
                    items=km_violation.items,
                    support=km_violation.support,
                )
            )
        if full():
            return violations
    return violations


def is_k_km_anonymous(
    dataset: Dataset,
    k: int,
    m: int,
    relational_attributes: Sequence[str] | None = None,
    transaction_attribute: str | None = None,
    hierarchy: Hierarchy | None = None,
    universe: Iterable[str] | None = None,
) -> bool:
    """Whether an RT-dataset satisfies (k, k^m)-anonymity (Poulis et al. 2013).

    An adversary combining demographics with up to ``m`` items must still
    face at least ``k`` indistinguishable records.
    """
    return not k_km_violations(
        dataset,
        k,
        m,
        relational_attributes=relational_attributes,
        transaction_attribute=transaction_attribute,
        hierarchy=hierarchy,
        universe=universe,
        max_violations=1,
    )


def privacy_report(
    dataset: Dataset,
    k: int,
    m: int | None = None,
    relational_attributes: Sequence[str] | None = None,
    transaction_attribute: str | None = None,
    hierarchy: Hierarchy | None = None,
) -> dict:
    """A compact report of the privacy status of an anonymized dataset.

    Failed guarantees come with a counterexample: ``k_witness`` (the first
    undersized equivalence class) and ``km_witness`` (the first isolating
    item combination) point at the concrete records at risk.
    """
    report: dict = {"records": len(dataset), "k": k}
    has_relational = bool(
        relational_attributes
        if relational_attributes is not None
        else [a for a in dataset.schema.relational if a.quasi_identifier]
    )
    if has_relational:
        report["min_class_size"] = min_class_size(dataset, relational_attributes)
        report["k_anonymous"] = report["min_class_size"] >= k
        if not report["k_anonymous"]:
            report["k_witness"] = k_violations(
                dataset, k, relational_attributes, max_violations=1
            )[0]
    if m is not None and dataset.schema.transaction_names:
        report["m"] = m
        km_witnesses = km_violations(
            dataset,
            k,
            m,
            attribute=transaction_attribute,
            hierarchy=hierarchy,
            max_violations=1,
        )
        report["km_anonymous"] = not km_witnesses
        if km_witnesses:
            report["km_witness"] = km_witnesses[0]
    return report
