"""Attribute statistics used by SECRETA's visualizations.

The paper's main screen (Figure 2) plots histograms of the frequency of
values in any attribute; the Evaluation screen (Figure 3) additionally plots
the frequency of generalized values in a relational attribute and the
relative error between the frequency of transaction items in the original and
the anonymized dataset.  This module computes all of those series as plain
dictionaries so that the plotting and export layers can render them.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Any, Mapping

import numpy as np

from repro.datasets.dataset import Dataset
from repro.exceptions import DatasetError


def value_frequencies(dataset: Dataset, attribute: str) -> dict[Any, int]:
    """Frequency of each value of ``attribute``.

    For transaction attributes the frequency of an *item* is the number of
    records whose itemset contains it (its support).
    """
    meta = dataset.schema[attribute]
    counter: Counter = Counter()
    if meta.is_transaction:
        for record in dataset:
            counter.update(record[attribute])
    else:
        for record in dataset:
            value = record[attribute]
            if value is not None:
                counter[value] += 1
    return dict(counter)


def numeric_histogram(
    dataset: Dataset, attribute: str, bins: int = 10
) -> dict[str, list]:
    """Equi-width histogram of a numeric attribute.

    Returns a mapping with ``edges`` (``bins + 1`` boundaries) and ``counts``
    (``bins`` bucket counts).
    """
    meta = dataset.schema[attribute]
    if not meta.is_numeric:
        raise DatasetError(f"attribute {attribute!r} is not numeric")
    values = [v for v in dataset.column(attribute) if v is not None]
    if not values:
        return {"edges": [], "counts": []}
    counts, edges = np.histogram(np.asarray(values, dtype=float), bins=bins)
    return {"edges": edges.tolist(), "counts": counts.tolist()}


def attribute_histogram(
    dataset: Dataset, attribute: str, bins: int = 10
) -> dict[str, Any]:
    """Histogram of any attribute, as plotted by the Dataset Editor.

    Categorical and transaction attributes yield per-value counts sorted by
    decreasing frequency; numeric attributes yield an equi-width histogram.
    """
    meta = dataset.schema[attribute]
    if meta.is_numeric:
        histogram = numeric_histogram(dataset, attribute, bins=bins)
        return {"attribute": attribute, "kind": "numeric", **histogram}
    frequencies = value_frequencies(dataset, attribute)
    ordered = sorted(frequencies.items(), key=lambda pair: (-pair[1], str(pair[0])))
    return {
        "attribute": attribute,
        "kind": meta.kind.value,
        "labels": [label for label, _ in ordered],
        "counts": [count for _, count in ordered],
    }


def dataset_summary(dataset: Dataset) -> dict[str, Any]:
    """A compact per-attribute summary of the dataset.

    Numeric attributes report min/max/mean/std; categorical ones the number of
    distinct values and the mode; transaction ones the universe size and the
    average itemset length.
    """
    summary: dict[str, Any] = {
        "name": dataset.name,
        "records": len(dataset),
        "attributes": {},
    }
    for attribute in dataset.schema:
        name = attribute.name
        if attribute.is_numeric:
            values = [v for v in dataset.column(name) if v is not None]
            stats = (
                {
                    "min": float(min(values)),
                    "max": float(max(values)),
                    "mean": float(np.mean(values)),
                    "std": float(np.std(values)),
                }
                if values
                else {"min": None, "max": None, "mean": None, "std": None}
            )
            summary["attributes"][name] = {"kind": "numeric", **stats}
        elif attribute.is_categorical:
            frequencies = value_frequencies(dataset, name)
            mode = max(frequencies, key=frequencies.get) if frequencies else None
            summary["attributes"][name] = {
                "kind": "categorical",
                "distinct": len(frequencies),
                "mode": mode,
            }
        else:
            lengths = [len(record[name]) for record in dataset]
            summary["attributes"][name] = {
                "kind": "transaction",
                "universe": len(dataset.item_universe(name)),
                "avg_items": float(np.mean(lengths)) if lengths else 0.0,
                "max_items": max(lengths) if lengths else 0,
            }
    return summary


def frequency_relative_error(
    original: Mapping[Any, int], anonymized: Mapping[Any, int]
) -> dict[Any, float]:
    """Relative difference of per-value frequencies (Figure 3(d) series).

    For each value present in either mapping the relative error is
    ``|f_anon - f_orig| / f_orig`` (or ``inf`` for values absent from the
    original but present in the anonymized data).
    """
    errors: dict[Any, float] = {}
    for value in set(original) | set(anonymized):
        original_count = original.get(value, 0)
        anonymized_count = anonymized.get(value, 0)
        if original_count == 0:
            errors[value] = math.inf if anonymized_count else 0.0
        else:
            errors[value] = abs(anonymized_count - original_count) / original_count
    return errors


def generalized_value_frequencies(dataset: Dataset, attribute: str) -> dict[str, int]:
    """Frequency of generalized values in a relational attribute.

    Identical to :func:`value_frequencies` but keeps interval labels such as
    ``"[20-40)"`` as strings; exposed separately because the Evaluation screen
    plots it against the anonymized output specifically.
    """
    return {str(k): v for k, v in value_frequencies(dataset, attribute).items()}
