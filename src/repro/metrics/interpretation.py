"""Interpretation of generalized values.

Anonymization algorithms emit generalized values in three syntactic forms:

* hierarchy node labels (``{Bachelors..Doctorate}``, ``*``) — produced by the
  hierarchy-based algorithms,
* interval labels (``[20-40]``) — produced for numeric attributes,
* explicit item groups (``(bread,milk)``) — produced by the constraint-based
  algorithms COAT and PCTA, whose generalized items are utility-constraint
  labels rather than hierarchy nodes.

Information-loss metrics and query-answering both need to map a generalized
value back to the set of original values (or the numeric range) it may stand
for.  This module centralises that mapping.
"""

from __future__ import annotations

from repro.hierarchy.builders import interval_bounds, parse_interval
from repro.hierarchy.hierarchy import Hierarchy

#: Marker used for suppressed items / values in anonymized outputs.
SUPPRESSED = "†"  # dagger


def is_item_group(label: str) -> bool:
    """Whether ``label`` is an explicit item-group label like ``(a,b,c)``."""
    label = str(label)
    return label.startswith("(") and label.endswith(")") and len(label) > 2


def item_group_members(label: str) -> frozenset[str]:
    """The members of an explicit item-group label."""
    return frozenset(part for part in str(label)[1:-1].split(",") if part)


def label_leaves(
    label: str,
    hierarchy: Hierarchy | None = None,
    universe: set[str] | None = None,
) -> frozenset[str]:
    """The set of original (leaf) values a generalized label may represent.

    Resolution order: explicit item groups, hierarchy nodes, the full universe
    for the generic root/suppression markers, and finally the label itself
    (an already-specific value).
    """
    label = str(label)
    if label == SUPPRESSED:
        return frozenset()
    if is_item_group(label):
        return item_group_members(label)
    if hierarchy is not None and label in hierarchy:
        return frozenset(hierarchy.leaves(label))
    if label == "*":
        if universe is not None:
            return frozenset(universe)
        if hierarchy is not None:
            return frozenset(hierarchy.leaves())
        return frozenset()
    return frozenset({label})


def label_span(
    label: str, hierarchy: Hierarchy | None = None
) -> tuple[float, float] | None:
    """Numeric bounds represented by a generalized label (``None`` if not numeric)."""
    label = str(label)
    if label == SUPPRESSED:
        return None
    bounds = interval_bounds(hierarchy, label)
    if bounds is not None:
        return bounds
    return parse_interval(label)


def covers_value(
    label: str,
    value: str,
    hierarchy: Hierarchy | None = None,
    universe: set[str] | None = None,
) -> bool:
    """Whether generalized ``label`` may stand for the original ``value``."""
    return str(value) in label_leaves(label, hierarchy=hierarchy, universe=universe)


def generalization_size(
    label: str,
    hierarchy: Hierarchy | None = None,
    universe: set[str] | None = None,
) -> int:
    """Number of original values a generalized label stands for (>= 1)."""
    return max(1, len(label_leaves(label, hierarchy=hierarchy, universe=universe)))
