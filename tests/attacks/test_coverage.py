"""Unit tests for the shared adversary semantics (coverage + enumeration)."""

import pytest

from repro.attacks import AttributeCoverage, best_knowledge, knowledge_combos
from repro.hierarchy import HierarchyBuilder
from repro.metrics import SUPPRESSED


class TestAttributeCoverage:
    def test_uninformative_labels_cover_everything(self):
        coverage = AttributeCoverage("Edu", numeric=False)
        for label in (SUPPRESSED, "*", None):
            assert coverage.covers(label, "BSc")

    def test_unknown_target_value_constrains_nothing(self):
        coverage = AttributeCoverage("Edu", numeric=False)
        assert coverage.covers("PhD", None)

    def test_exact_categorical_match(self):
        coverage = AttributeCoverage("Edu", numeric=False)
        assert coverage.covers("BSc", "BSc")
        assert not coverage.covers("PhD", "BSc")

    def test_item_group_label_covers_members_only(self):
        coverage = AttributeCoverage("Edu", numeric=False)
        assert coverage.covers("(BSc,MSc)", "BSc")
        assert coverage.covers("(BSc,MSc)", "MSc")
        assert not coverage.covers("(BSc,MSc)", "PhD")

    def test_hierarchy_node_covers_its_leaves(self):
        hierarchy = (
            HierarchyBuilder()
            .add("Degree", "*")
            .add("NoDegree", "*")
            .add("BSc", "Degree")
            .add("MSc", "Degree")
            .add("None", "NoDegree")
            .build()
        )
        coverage = AttributeCoverage("Edu", numeric=False, hierarchy=hierarchy)
        assert coverage.covers("Degree", "BSc")
        assert not coverage.covers("Degree", "None")

    def test_numeric_interval_bounds(self):
        coverage = AttributeCoverage("Age", numeric=True)
        assert coverage.covers("[20-30]", 25)
        assert coverage.covers("[20-30]", 20)
        assert coverage.covers("[20-30]", 30)
        assert not coverage.covers("[20-30]", 31)

    def test_numeric_exact_label_matches_float_and_int_spellings(self):
        coverage = AttributeCoverage("Age", numeric=True)
        assert coverage.covers("25", 25)
        assert coverage.covers("25", 25.0)
        assert not coverage.covers("25", 26)

    def test_decisions_are_memoized(self):
        coverage = AttributeCoverage("Age", numeric=True)
        assert coverage.covers("[20-30]", 25)
        assert ("[20-30]", 25) in coverage._memo
        assert coverage.covers("[20-30]", 25)


class TestKnowledgeCombos:
    def test_sizes_ascending_then_lexicographic(self):
        combos = list(knowledge_combos(["b", "a", "c"], m=2))
        assert combos == [
            ("a",),
            ("b",),
            ("c",),
            ("a", "b"),
            ("a", "c"),
            ("b", "c"),
        ]

    def test_duplicates_collapse_and_m_caps_at_basket_size(self):
        assert list(knowledge_combos(["a", "a"], m=3)) == [("a",)]

    def test_empty_basket_yields_nothing(self):
        assert list(knowledge_combos([], m=2)) == []


class TestBestKnowledge:
    def test_minimum_with_first_witness(self):
        supports = {("a",): 4, ("b",): 2, ("a", "b"): 2}
        best, witness, truncated = best_knowledge(
            ["a", "b"], 2, lambda combo: supports[combo]
        )
        assert (best, witness, truncated) == (2, ("b",), False)

    def test_zero_support_combos_are_skipped(self):
        supports = {("a",): 0, ("b",): 3}
        best, witness, _ = best_knowledge(["a", "b"], 1, lambda c: supports[c])
        assert (best, witness) == (3, ("b",))

    def test_all_zero_support_means_failed_attack(self):
        best, witness, _ = best_knowledge(["a"], 1, lambda c: 0)
        assert (best, witness) == (0, None)

    def test_initial_seed_survives_unless_beaten(self):
        best, witness, _ = best_knowledge(["a"], 1, lambda c: 5, initial=3)
        assert (best, witness) == (3, None)
        best, witness, _ = best_knowledge(["a"], 1, lambda c: 2, initial=3)
        assert (best, witness) == (2, ("a",))

    def test_cap_truncates_enumeration(self):
        probed = []

        def support_of(combo):
            probed.append(combo)
            return 4

        best, witness, truncated = best_knowledge(
            ["a", "b", "c"], 2, support_of, cap=2
        )
        assert truncated
        assert probed == [("a",), ("b",)]
        assert best == 4

    @pytest.mark.parametrize("initial", [0, -1])
    def test_non_positive_initial_is_no_seed(self, initial):
        best, witness, _ = best_knowledge([], 1, lambda c: 1, initial=initial)
        assert (best, witness) == (0, None)
