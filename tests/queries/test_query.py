"""Tests for COUNT queries and their probabilistic estimation."""

import pytest

from repro.datasets import Attribute, Dataset, Schema, toy_rt_dataset
from repro.exceptions import QueryError
from repro.hierarchy import build_hierarchies_for_dataset
from repro.queries import Query, RangeCondition, ValueCondition, condition_from_dict


@pytest.fixture
def dataset():
    return toy_rt_dataset()


class TestConditions:
    def test_range_condition_exact_values(self):
        condition = RangeCondition(20, 30)
        assert condition.match_probability(25) == 1.0
        assert condition.match_probability(31) == 0.0
        assert condition.match_probability(None) == 0.0

    def test_range_condition_interval_overlap(self):
        condition = RangeCondition(20, 30)
        assert condition.match_probability("[20-40]") == pytest.approx(0.5)
        assert condition.match_probability("[40-60]") == 0.0
        assert condition.match_probability("[25-25]") == 1.0

    def test_range_condition_rejects_empty_range(self):
        with pytest.raises(QueryError):
            RangeCondition(5, 1)

    def test_value_condition_exact(self):
        condition = ValueCondition(["Bachelors"])
        assert condition.match_probability("Bachelors") == 1.0
        assert condition.match_probability("Masters") == 0.0

    def test_value_condition_generalized_label(self):
        condition = ValueCondition(["Bachelors"])
        # Explicit group covering 2 values, one of which matches.
        assert condition.match_probability("(Bachelors,Masters)") == pytest.approx(0.5)

    def test_value_condition_requires_values(self):
        with pytest.raises(QueryError):
            ValueCondition([])

    def test_condition_round_trip(self):
        range_condition = RangeCondition(1, 2)
        assert condition_from_dict(range_condition.to_dict()) == range_condition
        value_condition = ValueCondition(["a", "b"])
        assert condition_from_dict(value_condition.to_dict()) == value_condition
        with pytest.raises(QueryError):
            condition_from_dict({"type": "bogus"})


class TestQueryCount:
    def test_requires_some_predicate(self):
        with pytest.raises(QueryError):
            Query()

    def test_relational_count(self, dataset):
        query = Query(conditions={"Age": RangeCondition(20, 40)})
        assert query.count(dataset) == 4

    def test_item_count(self, dataset):
        query = Query(items=["bread", "milk"])
        assert query.count(dataset) == 2

    def test_combined_count(self, dataset):
        query = Query(
            conditions={"Education": ValueCondition(["HS-grad"])}, items=["wine"]
        )
        assert query.count(dataset) == 1

    def test_item_query_on_relational_dataset_raises(self, dataset):
        relational = dataset.project(["Age", "Education"])
        query = Query(items=["bread"])
        with pytest.raises(QueryError):
            query.count(relational)


class TestQueryEstimate:
    def test_estimate_equals_count_on_original_data(self, dataset):
        hierarchies = build_hierarchies_for_dataset(dataset, fanout=3)
        query = Query(
            conditions={"Age": RangeCondition(20, 40), "Education": ValueCondition(["Masters"])},
            items=["wine"],
        )
        assert query.estimate(dataset, hierarchies) == pytest.approx(query.count(dataset))

    def test_estimate_with_generalized_relational_values(self):
        schema = Schema([Attribute.categorical("Age"), Attribute.categorical("Education")])
        anonymized = Dataset(
            schema,
            [
                {"Age": "[20-29]", "Education": "Bachelors"},
                {"Age": "[30-39]", "Education": "Masters"},
            ],
        )
        query = Query(conditions={"Age": RangeCondition(20, 24.5)})
        # Uniformity: the record generalized to [20-29] matches with p=0.5.
        assert query.estimate(anonymized) == pytest.approx(0.5)

    def test_estimate_with_generalized_items(self):
        schema = Schema([Attribute.transaction("Items")])
        anonymized = Dataset(schema, [{"Items": ["(bread,milk)"]}, {"Items": ["beer"]}])
        query = Query(items=["bread"])
        assert query.estimate(anonymized) == pytest.approx(0.5)

    def test_estimate_zero_for_suppressed_items(self):
        schema = Schema([Attribute.transaction("Items")])
        anonymized = Dataset(schema, [{"Items": []}])
        query = Query(items=["bread"])
        assert query.estimate(anonymized) == 0.0

    def test_describe_mentions_all_predicates(self, dataset):
        query = Query(
            conditions={"Age": RangeCondition(20, 30), "Education": ValueCondition(["X"])},
            items=["beer"],
        )
        description = query.describe()
        assert "Age" in description
        assert "Education" in description
        assert "beer" in description

    def test_query_dict_round_trip(self, dataset):
        query = Query(
            conditions={"Age": RangeCondition(20, 30)},
            items=["beer"],
            transaction_attribute="Items",
        )
        rebuilt = Query.from_dict(query.to_dict())
        assert rebuilt.count(dataset) == query.count(dataset)
        assert rebuilt.items == query.items
