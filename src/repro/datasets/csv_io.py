"""CSV input/output for RT-datasets.

SECRETA's Dataset Editor loads datasets "provided in a Comma-Separated Values
(CSV) format".  The reproduction uses the same convention:

* the first line holds the attribute names,
* relational cells hold a single value,
* transaction (set-valued) cells hold the record's items separated by an
  *item separator* (a space by default), e.g. ``"bread milk beer"``.

Schema information that CSV cannot express (which columns are set-valued,
which are numeric) is either passed explicitly or inferred from the data.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Iterable, Sequence

from repro.datasets.attributes import Attribute, AttributeKind, Schema
from repro.datasets.dataset import Dataset
from repro.exceptions import DatasetError

#: Default separator between the items of one transaction cell.
DEFAULT_ITEM_SEPARATOR = " "


def _looks_numeric(values: Iterable[str]) -> bool:
    """Whether every non-empty string in ``values`` parses as a number."""
    seen_any = False
    for value in values:
        if value == "" or value is None:
            continue
        seen_any = True
        try:
            float(value)
        except ValueError:
            return False
    return seen_any


def _looks_transactional(values: Iterable[str], item_separator: str) -> bool:
    """Whether some non-empty value in ``values`` contains multiple items."""
    for value in values:
        if value and item_separator in value.strip():
            return True
    return False


def infer_schema(
    header: Sequence[str],
    rows: Sequence[Sequence[str]],
    transaction_columns: Sequence[str] | None = None,
    numeric_columns: Sequence[str] | None = None,
    item_separator: str = DEFAULT_ITEM_SEPARATOR,
) -> Schema:
    """Infer a :class:`Schema` from raw CSV strings.

    Columns named in ``transaction_columns`` / ``numeric_columns`` are forced
    to that kind; the remaining columns are numeric if every value parses as a
    number, transactional if any cell contains the item separator, and
    categorical otherwise.
    """
    forced_transaction = set(transaction_columns or ())
    forced_numeric = set(numeric_columns or ())
    unknown = (forced_transaction | forced_numeric) - set(header)
    if unknown:
        raise DatasetError(f"unknown columns referenced: {sorted(unknown)}")

    attributes = []
    for position, name in enumerate(header):
        column = [row[position] for row in rows if position < len(row)]
        if name in forced_transaction:
            kind = AttributeKind.TRANSACTION
        elif name in forced_numeric:
            kind = AttributeKind.NUMERIC
        elif _looks_numeric(column):
            kind = AttributeKind.NUMERIC
        elif _looks_transactional(column, item_separator):
            kind = AttributeKind.TRANSACTION
        else:
            kind = AttributeKind.CATEGORICAL
        attributes.append(Attribute(name, kind))
    return Schema(attributes)


def _rows_to_dataset(
    header: Sequence[str],
    rows: Sequence[Sequence[str]],
    schema: Schema,
    item_separator: str,
    name: str,
) -> Dataset:
    dataset = Dataset(schema, name=name)
    for line_number, row in enumerate(rows, start=2):
        if len(row) != len(header):
            raise DatasetError(
                f"line {line_number}: expected {len(header)} fields, got {len(row)}"
            )
        values = {}
        for position, column in enumerate(header):
            cell = row[position]
            attribute = schema[column]
            if attribute.is_transaction:
                items = [item for item in cell.split(item_separator) if item]
                values[column] = items
            elif cell == "":
                values[column] = None
            else:
                values[column] = cell
        dataset.append(values)
    return dataset


def read_csv_text(
    text: str,
    name: str = "dataset",
    schema: Schema | None = None,
    transaction_columns: Sequence[str] | None = None,
    numeric_columns: Sequence[str] | None = None,
    delimiter: str = ",",
    item_separator: str = DEFAULT_ITEM_SEPARATOR,
) -> Dataset:
    """Parse CSV text into a :class:`Dataset`.

    If ``schema`` is given it is used verbatim (its names must match the CSV
    header); otherwise the schema is inferred, honouring
    ``transaction_columns`` and ``numeric_columns``.
    """
    reader = csv.reader(io.StringIO(text), delimiter=delimiter)
    rows = [row for row in reader if row]
    if not rows:
        raise DatasetError("CSV input is empty")
    header = [column.strip() for column in rows[0]]
    body = rows[1:]
    if schema is None:
        schema = infer_schema(
            header,
            body,
            transaction_columns=transaction_columns,
            numeric_columns=numeric_columns,
            item_separator=item_separator,
        )
    else:
        if list(schema.names) != list(header):
            raise DatasetError(
                f"schema columns {schema.names} do not match CSV header {header}"
            )
    return _rows_to_dataset(header, body, schema, item_separator, name)


def load_csv(
    path: str | Path,
    schema: Schema | None = None,
    transaction_columns: Sequence[str] | None = None,
    numeric_columns: Sequence[str] | None = None,
    delimiter: str = ",",
    item_separator: str = DEFAULT_ITEM_SEPARATOR,
) -> Dataset:
    """Load a dataset from a CSV file. See :func:`read_csv_text`."""
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as error:
        raise DatasetError(f"cannot read dataset file {path}: {error}") from error
    return read_csv_text(
        text,
        name=path.stem,
        schema=schema,
        transaction_columns=transaction_columns,
        numeric_columns=numeric_columns,
        delimiter=delimiter,
        item_separator=item_separator,
    )


def _format_cell(attribute: Attribute, value, item_separator: str) -> str:
    if attribute.is_transaction:
        return item_separator.join(sorted(value)) if value else ""
    if value is None:
        return ""
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)


def write_csv_text(
    dataset: Dataset,
    delimiter: str = ",",
    item_separator: str = DEFAULT_ITEM_SEPARATOR,
) -> str:
    """Serialise a dataset to CSV text (header + one line per record)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, delimiter=delimiter, lineterminator="\n")
    writer.writerow(dataset.schema.names)
    for record in dataset:
        writer.writerow(
            [
                _format_cell(attribute, record[attribute.name], item_separator)
                for attribute in dataset.schema
            ]
        )
    return buffer.getvalue()


def save_csv(
    dataset: Dataset,
    path: str | Path,
    delimiter: str = ",",
    item_separator: str = DEFAULT_ITEM_SEPARATOR,
) -> Path:
    """Write a dataset to a CSV file and return the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        write_csv_text(dataset, delimiter=delimiter, item_separator=item_separator),
        encoding="utf-8",
    )
    return path
