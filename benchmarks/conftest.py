"""Shared fixtures and helpers for the benchmark harness.

Every benchmark regenerates one artefact of the SECRETA paper (a figure, a
demonstration scenario or a capability claim — see DESIGN.md's experiment
index).  Besides timing the underlying operation with pytest-benchmark, each
benchmark writes the data series it produced to ``benchmarks/results/`` so
that EXPERIMENTS.md can record paper-vs-measured shapes from a single run:

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro import Session
from repro.datasets import generate_rt_dataset
from repro.engine import ExperimentResources, transaction_config

RESULTS_DIRECTORY = Path(__file__).parent / "results"

#: Benchmark dataset sizes: large enough to show algorithmic behaviour,
#: small enough that the whole harness runs in a few minutes.
N_RECORDS = 300
N_ITEMS = 24


@pytest.fixture(scope="session")
def rt_dataset():
    """The benchmark RT-dataset (fixed seed: identical across benchmarks)."""
    return generate_rt_dataset(n_records=N_RECORDS, n_items=N_ITEMS, seed=2014)


@pytest.fixture(scope="session")
def session(rt_dataset):
    """A SECRETA session over the benchmark dataset with prepared resources."""
    secreta = Session(rt_dataset)
    secreta.configuration_editor.generate_hierarchies(fanout=4)
    secreta.queries_editor.generate(n_queries=40, seed=5)
    secreta.verify_privacy = False
    return secreta


@pytest.fixture(scope="session")
def prepared_resources(rt_dataset, session) -> ExperimentResources:
    """Resources shared by benchmarks that bypass the Session facade."""
    resources = session.resources()
    resources.ensure_for(rt_dataset, transaction_config("apriori", k=5, m=2))
    return resources


def record_result(name: str, payload: dict) -> Path:
    """Persist one benchmark's data series under ``benchmarks/results/``."""
    RESULTS_DIRECTORY.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIRECTORY / f"{name}.json"
    path.write_text(json.dumps(payload, indent=2, default=str), encoding="utf-8")
    return path


@pytest.fixture(scope="session")
def record():
    """Fixture handing benchmarks the result-recording helper."""
    return record_result
