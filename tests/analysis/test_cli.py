"""End-to-end CLI behavior: formats, baseline workflow, exit codes."""

from __future__ import annotations

import json

from lint_harness import LintHarness

from repro.analysis.cli import main

SWALLOWED = """
def swallow():
    try:
        work()
    except Exception:
        pass
"""

MANIFEST_TOML = """
[rep005]
scope = ["src"]
"""


def _setup(tmp_path):
    harness = LintHarness(tmp_path)
    harness.write("src/mod.py", SWALLOWED)
    harness.write("invariants.toml", MANIFEST_TOML)
    return harness


def _run(tmp_path, *extra: str) -> int:
    return main(
        [
            "src",
            "--root",
            str(tmp_path),
            "--manifest",
            str(tmp_path / "invariants.toml"),
            *extra,
        ]
    )


class TestCli:
    def test_finding_fails_with_exit_1(self, tmp_path, capsys):
        _setup(tmp_path)
        assert _run(tmp_path) == 1
        out = capsys.readouterr().out
        assert "REP005" in out
        assert "1 new finding(s)" in out

    def test_clean_tree_exits_0(self, tmp_path, capsys):
        harness = LintHarness(tmp_path)
        harness.write("src/mod.py", "x = 1\n")
        harness.write("invariants.toml", MANIFEST_TOML)
        assert _run(tmp_path) == 0

    def test_json_format(self, tmp_path, capsys):
        _setup(tmp_path)
        assert _run(tmp_path, "--format", "json") == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["new"] == 1
        assert payload["findings"][0]["code"] == "REP005"
        assert payload["findings"][0]["status"] == "new"

    def test_write_baseline_then_clean(self, tmp_path, capsys):
        _setup(tmp_path)
        assert _run(tmp_path, "--write-baseline", "--reason", "pre-dates REP005") == 0
        baseline_path = tmp_path / ".repro-lint-baseline.json"
        assert baseline_path.exists()
        payload = json.loads(baseline_path.read_text())
        assert payload["version"] == 2
        assert payload["entries"][0]["code"] == "REP005"
        assert payload["entries"][0]["reason"] == "pre-dates REP005"
        capsys.readouterr()
        # With the baseline in place the same tree is clean...
        assert _run(tmp_path) == 0
        assert "1 baselined" in capsys.readouterr().out
        # ...and --no-baseline resurfaces the finding.
        assert _run(tmp_path, "--no-baseline") == 1

    def test_write_baseline_without_reason_exits_2(self, tmp_path, capsys):
        _setup(tmp_path)
        assert _run(tmp_path, "--write-baseline") == 2
        assert "requires --reason" in capsys.readouterr().err
        assert not (tmp_path / ".repro-lint-baseline.json").exists()

    def test_write_baseline_blank_reason_exits_2(self, tmp_path, capsys):
        _setup(tmp_path)
        assert _run(tmp_path, "--write-baseline", "--reason", "   ") == 2
        assert "requires --reason" in capsys.readouterr().err

    def test_v1_baseline_still_loads_and_migrates_on_save(self, tmp_path, capsys):
        _setup(tmp_path)
        assert _run(tmp_path, "--format", "json") == 1
        reported = json.loads(capsys.readouterr().out)["findings"][0]
        # Hand-build a version-1 file for the finding the run just reported.
        from repro.analysis.baseline import Baseline, fingerprint
        from repro.analysis.core import Finding

        lines = (tmp_path / reported["path"]).read_text().splitlines()
        finding = Finding(
            reported["code"],
            reported["message"],
            reported["path"],
            reported["line"],
            reported["column"],
            symbol=reported["symbol"],
        )
        print_ = fingerprint(finding, line_text=lines[finding.line - 1])
        (tmp_path / ".repro-lint-baseline.json").write_text(
            json.dumps(
                {
                    "version": 1,
                    "entries": [
                        {
                            "fingerprint": print_,
                            "code": finding.code,
                            "path": finding.path,
                            "symbol": finding.symbol,
                            "reason": "grandfathered in v1",
                        }
                    ],
                }
            )
        )
        # The v1 file is honored as-is...
        assert _run(tmp_path) == 0
        assert "1 baselined" in capsys.readouterr().out
        # ...and a load/save round trip rewrites it as v2, reason intact.
        migrated = Baseline.load(tmp_path / ".repro-lint-baseline.json")
        migrated.save(tmp_path / ".repro-lint-baseline.json")
        payload = json.loads((tmp_path / ".repro-lint-baseline.json").read_text())
        assert payload["version"] == 2
        assert payload["fingerprint_fields"] == [
            "code",
            "path",
            "symbol",
            "normalized_line",
        ]
        assert payload["entries"][0]["reason"] == "grandfathered in v1"
        assert _run(tmp_path) == 0

    def test_malformed_baseline_exits_2(self, tmp_path, capsys):
        _setup(tmp_path)
        (tmp_path / ".repro-lint-baseline.json").write_text("{not json")
        assert _run(tmp_path) == 2
        assert "baseline" in capsys.readouterr().err

    def test_unknown_select_exits_2(self, tmp_path, capsys):
        _setup(tmp_path)
        assert _run(tmp_path, "--select", "REP999") == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_baseline_expires_when_line_changes(self, tmp_path):
        harness = _setup(tmp_path)
        assert _run(tmp_path, "--write-baseline", "--reason", "legacy") == 0
        harness.write(
            "src/mod.py", SWALLOWED.replace("except Exception:", "except BaseException:")
        )
        assert _run(tmp_path) == 1

    def test_explain(self, capsys):
        assert main(["--explain", "REP002"]) == 0
        out = capsys.readouterr().out
        assert "REP002" in out
        assert "cache" in out

    def test_explain_unknown_code_exits_2(self, capsys):
        assert main(["--explain", "REP999"]) == 2
        assert "unknown rule code" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("REP001", "REP002", "REP003", "REP004", "REP005", "REP006"):
            assert code in out

    def test_bad_path_exits_2(self, tmp_path, capsys):
        assert main(["nonexistent", "--root", str(tmp_path)]) == 2
        assert "error" in capsys.readouterr().err

    def test_verbose_lists_suppressed(self, tmp_path, capsys):
        harness = LintHarness(tmp_path)
        harness.write(
            "src/mod.py",
            SWALLOWED.replace(
                "except Exception:",
                "except Exception:  # repro: allow[REP005] -- fixture cleanup",
            ),
        )
        harness.write("invariants.toml", MANIFEST_TOML)
        assert _run(tmp_path) == 0
        assert "(suppressed)" not in capsys.readouterr().out
        assert _run(tmp_path, "--verbose") == 0
        assert "(suppressed)" in capsys.readouterr().out
