"""RunReport JSON round-trips: persist a run's account, get the same account.

Fault-tolerant sweeps and checkpoint resumes both want their ``RunReport``
archived next to the results (CI uploads them as trajectory artifacts).  The
serialization must round-trip every field — attempts with their error
chains, replays, checkpoint statuses, warnings — and stay byte-stable under
``sort_keys`` so two identical runs diff clean.
"""

from __future__ import annotations

import json

import pytest

from repro.engine.resilience import RunReport, TaskAttempt, TaskReport


def sample_report() -> RunReport:
    return RunReport(
        tasks=[
            TaskReport(
                index=0,
                attempts=[
                    TaskAttempt(
                        attempt=0,
                        backend="process",
                        outcome="crash",
                        duration_seconds=0.25,
                        error="BrokenProcessPool: worker died",
                        error_chain=(
                            "BrokenProcessPool('worker died')",
                            "SIGKILL(9)",
                        ),
                    ),
                    TaskAttempt(
                        attempt=1,
                        backend="process",
                        outcome="ok",
                        duration_seconds=1.5,
                    ),
                ],
                replays=1,
                final_backend="process",
                completed=True,
                checkpoint="miss",
            ),
            TaskReport(
                index=1,
                attempts=[],
                final_backend="checkpoint",
                completed=True,
                checkpoint="hit",
            ),
            TaskReport(
                index=2,
                attempts=[
                    TaskAttempt(
                        attempt=0,
                        backend="sequential",
                        outcome="ok",
                        duration_seconds=0.75,
                    )
                ],
                final_backend="sequential",
                completed=True,
                checkpoint="corrupt",
            ),
        ],
        backend="process",
        respawns=1,
        degradations=0,
        wall_seconds=3.25,
        warnings=["checkpoint cell abc123 is damaged: record truncated"],
    )


class TestRoundTrip:
    def test_json_round_trip_preserves_everything(self):
        report = sample_report()
        restored = RunReport.from_json(report.to_json())
        assert restored == report

    def test_empty_report_round_trips(self):
        assert RunReport.from_json(RunReport().to_json()) == RunReport()

    def test_dict_round_trip(self):
        report = sample_report()
        assert RunReport.from_dict(report.to_dict()) == report

    def test_derived_views_survive_the_trip(self):
        restored = RunReport.from_json(sample_report().to_json())
        assert restored.checkpoint_counts() == {"hit": 1, "miss": 1, "corrupt": 1}
        assert restored.total_attempts == 3
        assert restored.total_retries == 1
        assert restored.faulted_tasks == [0]
        assert restored.task(0).attempts[0].error_chain == (
            "BrokenProcessPool('worker died')",
            "SIGKILL(9)",
        )

    def test_output_is_valid_sorted_json(self):
        payload = sample_report().to_json()
        decoded = json.loads(payload)
        assert decoded["backend"] == "process"
        assert list(decoded) == sorted(decoded)
        # Serializing twice gives identical bytes (stable for artifact diffs).
        assert sample_report().to_json() == payload

    def test_indent_produces_readable_output(self):
        payload = sample_report().to_json(indent=2)
        assert "\n" in payload
        assert RunReport.from_json(payload) == sample_report()

    def test_summary_reports_checkpoints_and_warnings(self):
        summary = sample_report().summary()
        assert summary["checkpoints"] == {"hit": 1, "miss": 1, "corrupt": 1}
        assert summary["warnings"] == 1

    def test_unknown_fields_are_ignored(self):
        """Forward compatibility: a report written by a newer version with
        extra fields still loads."""
        data = sample_report().to_dict()
        data["novel_field"] = {"x": 1}
        data["tasks"][0]["novel_task_field"] = True
        assert RunReport.from_dict(data) == sample_report()

    def test_from_json_rejects_non_object(self):
        with pytest.raises((TypeError, KeyError, AttributeError, ValueError)):
            RunReport.from_json("[1, 2, 3]")
