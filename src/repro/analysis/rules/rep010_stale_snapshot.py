"""REP010 — stale-snapshot dataflow.

The columnar views, captured domains and fingerprints of a dataset are
*snapshots*: valid until the dataset mutates, garbage afterwards.  PR 2/8
wired cache invalidation into the sanctioned mutators, but nothing stops a
caller from keeping a reference to the old snapshot across the mutation —
exactly the bug class the upcoming incremental/MVCC work multiplies.

This rule tracks snapshot-derived bindings through each function's CFG:
a value produced by one of the manifest's ``snapshot_sources`` (called on a
receiver, or — for classmethod constructors like ``DatasetDomains.capture``
— derived from the first argument) goes stale the moment a mutator runs
against the same receiver, whether directly (``dataset._set(...)``) or
through a resolved callee whose summary mutates that argument.  Any later
use of the stale binding is a finding.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterable

from repro.analysis.core import Finding, Rule, register
from repro.analysis.dataflow import (
    CFGNode,
    build_cfg,
    binding_key,
    calls_in,
    executed_parts,
    forward_fixpoint,
    project_summaries,
    walk_executed,
)
from repro.analysis.graph import CallSite, FunctionInfo, ProjectGraph, call_name

if TYPE_CHECKING:
    from repro.analysis.core import ModuleContext, Project
    from repro.analysis.dataflow import SummaryTable

_SNAP = "snap:"
_STALE = "stale:"


@register
class StaleSnapshotDataflow(Rule):
    code = "REP010"
    name = "stale-snapshot"
    summary = "snapshot-derived values must not be used across a dataset mutation"
    explanation = (
        "Dataset.columnar(), DatasetDomains.capture() and "
        "Dataset.fingerprint() return snapshots of the dataset's current "
        "state; the sanctioned mutators (_set/_delete/_rename and the "
        "DatasetEditor entry points) invalidate the dataset's own caches but "
        "cannot reach references the caller kept.  A binding derived from a "
        "snapshot source that flows across a mutation of the same receiver — "
        "directly or through a callee the call graph resolves as mutating — "
        "and is used afterwards reads stale state.  Re-derive the value "
        "after the mutation (snapshots are cheap: the columnar cache "
        "rebuilds lazily), or restructure so the mutation happens first."
    )

    def finalize(self, project: "Project") -> Iterable[Finding]:
        manifest = project.manifest
        scope = tuple(manifest.snapshot_scope)
        sources = frozenset(manifest.rep010_snapshot_sources)
        mutators = frozenset(manifest.rep010_mutators)
        if not scope or not sources or not mutators:
            return
        graph = project.graph()
        summaries = project_summaries(project)
        for fid, info in graph.functions.items():
            if not info.module.startswith(scope):
                continue
            module = project.module(info.module)
            if module is None:
                continue
            sites = graph.call_sites(fid)
            has_source = any(
                self._snapshot_root(site, summaries, sources) is not None
                for site in sites
            )
            if not has_source:
                continue
            yield from _FunctionScan(
                self, module, info, graph, summaries, sources, mutators
            ).run()

    @staticmethod
    def _snapshot_root(
        site: CallSite, summaries: "SummaryTable", sources: frozenset[str]
    ) -> str | None:
        """The receiver binding a snapshot call captures (None: not a source)."""
        call = site.call
        summary = summaries.get(site.callee)
        from_summary = summary is not None and summary.returns_snapshot
        if site.name not in sources and not from_summary:
            return None
        if isinstance(call.func, ast.Attribute):
            key = binding_key(call.func.value)
            if key is not None and not key.split(".", 1)[0][:1].isupper():
                return key
        # Classmethod-style source (DatasetDomains.capture(dataset)): the
        # snapshot is of the first argument.
        if call.args:
            key = binding_key(call.args[0])
            if key is not None:
                return key
        return None


class _FunctionScan:
    """One stale-snapshot dataflow pass over one function."""

    def __init__(
        self,
        rule: StaleSnapshotDataflow,
        module: "ModuleContext",
        info: FunctionInfo,
        graph: ProjectGraph,
        summaries: "SummaryTable",
        sources: frozenset[str],
        mutators: frozenset[str],
    ) -> None:
        self.rule = rule
        self.module = module
        self.info = info
        self.graph = graph
        self.summaries = summaries
        self.sources = sources
        self.mutators = mutators
        self.cfg = build_cfg(info.node)
        self._sites_by_call: dict[int, CallSite] = {
            id(site.call): site for site in graph.call_sites(info.id)
        }
        self._findings: dict[tuple[str, int], Finding] = {}

    def run(self) -> Iterable[Finding]:
        forward_fixpoint(self.cfg, {}, self._transfer)
        return [self._findings[key] for key in sorted(self._findings)]

    def _transfer(
        self, node: CFGNode, state: dict[str, object]
    ) -> tuple[dict[str, object], dict[str, object]]:
        stmt = node.stmt
        if stmt is None:
            return state, state
        parts = executed_parts(node)

        # 1. uses of stale bindings, judged against the incoming state.
        self._check_uses(stmt, parts, state)

        out = dict(state)

        # 2. mutation events invalidate matching snapshot facts.
        mutated = self._mutated_roots(parts)
        if mutated:
            for key, value in list(out.items()):
                if not isinstance(value, frozenset):
                    continue
                facts = set(value)
                for root, line in mutated:
                    snap = f"{_SNAP}{root}"
                    if snap in facts:
                        facts.discard(snap)
                        facts.add(f"{_STALE}{root}:{line}")
                out[key] = frozenset(facts)

        # 3. assignments create or copy snapshot facts.
        if isinstance(stmt, ast.Assign):
            self._transfer_assign(stmt.targets, stmt.value, out)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._transfer_assign([stmt.target], stmt.value, out)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            for name in _loop_targets(stmt.target):
                out.pop(name, None)
        # Exception edges carry the post-mutation state: staleness survives
        # into handlers.
        return out, out

    def _check_uses(
        self,
        stmt: ast.stmt,
        parts: list[ast.AST],
        state: dict[str, object],
    ) -> None:
        for part in parts:
            for inner in walk_executed(part):
                if not isinstance(inner, (ast.Name, ast.Attribute)):
                    continue
                if not isinstance(inner.ctx, ast.Load):
                    continue
                key = binding_key(inner)
                if key is None:
                    continue
                value = state.get(key)
                if not isinstance(value, frozenset):
                    continue
                for fact in sorted(value):
                    if not fact.startswith(_STALE):
                        continue
                    root, _, line = fact[len(_STALE) :].rpartition(":")
                    finding_key = (key, getattr(inner, "lineno", 0))
                    self._findings.setdefault(
                        finding_key,
                        self.module.finding(
                            self.rule,
                            inner,
                            f"{key!r} holds a snapshot of {root!r} taken "
                            f"before the mutation at line {line}; re-derive "
                            f"it after mutating (stale columnar/domain/"
                            f"fingerprint state)",
                        ),
                    )

    def _mutated_roots(self, parts: list[ast.AST]) -> set[tuple[str, int]]:
        mutated: set[tuple[str, int]] = set()
        for part in parts:
            for call in calls_in(part):
                line = call.lineno
                name = call_name(call)
                if name in self.mutators and isinstance(call.func, ast.Attribute):
                    key = binding_key(call.func.value)
                    if key is not None:
                        mutated.add((key, line))
                site = self._sites_by_call.get(id(call))
                summary = (
                    self.summaries.get(site.callee) if site is not None else None
                )
                if summary is None or not summary.mutates:
                    continue
                callee = (
                    self.graph.function(site.callee)
                    if site is not None and site.callee is not None
                    else None
                )
                offset = (
                    1
                    if callee is not None
                    and callee.owner_class
                    and isinstance(call.func, ast.Attribute)
                    else 0
                )
                if offset and 0 in summary.mutates and isinstance(
                    call.func, ast.Attribute
                ):
                    key = binding_key(call.func.value)
                    if key is not None:
                        mutated.add((key, line))
                for position, value in enumerate(call.args):
                    if position + offset in summary.mutates:
                        key = binding_key(value)
                        if key is not None:
                            mutated.add((key, line))
        return mutated

    def _transfer_assign(
        self,
        targets: list[ast.expr],
        value: ast.expr,
        out: dict[str, object],
    ) -> None:
        facts: frozenset[str] = frozenset()
        if isinstance(value, ast.Call):
            site = self._sites_by_call.get(id(value))
            if site is not None:
                root = StaleSnapshotDataflow._snapshot_root(
                    site, self.summaries, self.sources
                )
                if root is not None:
                    facts = frozenset({f"{_SNAP}{root}"})
        else:
            source_key = binding_key(value)
            if source_key is not None:
                existing = out.get(source_key)
                if isinstance(existing, frozenset):
                    facts = existing
        for target in targets:
            key = binding_key(target)
            if key is not None:
                out[key] = facts


def _loop_targets(target: ast.expr) -> Iterable[str]:
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _loop_targets(element)


__all__ = ["StaleSnapshotDataflow"]
