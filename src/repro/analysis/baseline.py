"""Committed baseline of grandfathered findings.

A baseline entry acknowledges one pre-existing finding without fixing it:
the finding still shows up (marked *baselined*) but does not fail the run.
Entries are keyed by a **fingerprint** — a hash of the rule code, the file,
the enclosing symbol and the normalized source line — so they survive
unrelated line-number drift but expire as soon as the offending line itself
changes (at which point the finding resurfaces and must be re-justified or
fixed).  Every entry carries a human reason; ``--write-baseline`` refuses to
run without ``--reason``, so a baseline can never be born unjustified.

Format history: version 1 files (PR 7) carried the same entry shape;
version 2 additionally records the fingerprint recipe so a future change to
the hashed fields is detectable instead of silently expiring every entry.
Version-1 files are migrated in memory on load — fingerprints and reasons
carry over byte-identically — and rewritten as version 2 on the next save.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Mapping

from repro.analysis.core import Finding
from repro.exceptions import AnalysisError

#: Default baseline location, relative to the analysis root.
DEFAULT_BASELINE_NAME = ".repro-lint-baseline.json"

_FORMAT_VERSION = 2

#: Versions the loader accepts; anything older than current is migrated in
#: memory (the fingerprint recipe is unchanged since v1, so entries and
#: their reasons carry over verbatim).
_READABLE_VERSIONS = frozenset({1, 2})

#: The fields hashed into a fingerprint, recorded in v2 files so a future
#: recipe change is an explicit migration, not a silent mass-expiry.
_FINGERPRINT_FIELDS = ("code", "path", "symbol", "normalized_line")


def fingerprint(finding: Finding, lines: Mapping[str, list[str]] | None = None, line_text: str = "") -> str:
    """Stable identity of a finding across unrelated edits."""
    normalized = " ".join(line_text.split())
    payload = "|".join((finding.code, finding.path, finding.symbol, normalized))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class BaselineEntry:
    fingerprint: str
    code: str
    path: str
    symbol: str
    reason: str


class Baseline:
    """The set of grandfathered findings, loaded from / saved to JSON."""

    def __init__(self, entries: Iterable[BaselineEntry] = ()) -> None:
        self.entries = {entry.fingerprint: entry for entry in entries}

    def __len__(self) -> int:
        return len(self.entries)

    def lookup(self, print_: str) -> BaselineEntry | None:
        return self.entries.get(print_)

    @classmethod
    def load(cls, path: Path | str) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline."""
        baseline_path = Path(path)
        if not baseline_path.exists():
            return cls()
        try:
            raw = json.loads(baseline_path.read_text())
        except (OSError, json.JSONDecodeError) as error:
            raise AnalysisError(
                f"cannot read baseline {baseline_path}: {error}"
            ) from error
        if raw.get("version") not in _READABLE_VERSIONS:
            raise AnalysisError(
                f"baseline {baseline_path} has unsupported version "
                f"{raw.get('version')!r} (expected one of "
                f"{sorted(_READABLE_VERSIONS)})"
            )
        entries = []
        for item in raw.get("entries", []):
            missing = {"fingerprint", "code", "path", "reason"} - set(item)
            if missing:
                raise AnalysisError(
                    f"baseline {baseline_path}: entry missing {sorted(missing)}"
                )
            entries.append(
                BaselineEntry(
                    fingerprint=item["fingerprint"],
                    code=item["code"],
                    path=item["path"],
                    symbol=item.get("symbol", ""),
                    reason=item["reason"],
                )
            )
        return cls(entries)

    def save(self, path: Path | str) -> None:
        """Write the baseline deterministically (sorted by path, then code)."""
        ordered = sorted(
            self.entries.values(), key=lambda e: (e.path, e.code, e.fingerprint)
        )
        payload = {
            "version": _FORMAT_VERSION,
            "fingerprint_fields": list(_FINGERPRINT_FIELDS),
            "entries": [
                {
                    "fingerprint": entry.fingerprint,
                    "code": entry.code,
                    "path": entry.path,
                    "symbol": entry.symbol,
                    "reason": entry.reason,
                }
                for entry in ordered
            ],
        }
        Path(path).write_text(json.dumps(payload, indent=2) + "\n")

    @classmethod
    def from_findings(
        cls,
        findings_with_lines: Iterable[tuple[Finding, str]],
        reason: str,
    ) -> "Baseline":
        """Baseline every (finding, source line) pair under one shared reason."""
        return cls(
            BaselineEntry(
                fingerprint=fingerprint(finding, line_text=line_text),
                code=finding.code,
                path=finding.path,
                symbol=finding.symbol,
                reason=reason,
            )
            for finding, line_text in findings_with_lines
        )
