"""Unit tests for the dataflow engine (repro.analysis.dataflow)."""

from __future__ import annotations

import ast
import textwrap

import pytest

from test_graph import build_project

from repro.analysis.dataflow import (
    ACQ,
    ESC,
    REL,
    ReachingDefinitions,
    ResourceAnalysis,
    build_cfg,
    compute_summaries,
    dtype_of_expression,
    executed_parts,
    resource_model,
)
from repro.analysis.manifest import InvariantManifest

RESOURCE_MANIFEST = InvariantManifest.from_mapping(
    {
        "rep009": {
            "scope": [""],
            "acquisition_calls": ["mkstemp"],
            "cleanup_sinks": ["close", "unlink", "_release"],
        }
    }
)


def parse_function(source: str) -> ast.FunctionDef:
    tree = ast.parse(textwrap.dedent(source))
    fn = tree.body[0]
    assert isinstance(fn, ast.FunctionDef)
    return fn


def analyze(tmp_path, source: str, name: str):
    """Run ResourceAnalysis on one function of a one-module project."""
    project = build_project(tmp_path, {"src/mod.py": source})
    project.manifest = RESOURCE_MANIFEST
    graph = project.graph()
    summaries = compute_summaries(graph, RESOURCE_MANIFEST)
    info = graph.function(f"src/mod.py::{name}")
    assert info is not None
    return ResourceAnalysis(
        info, graph, summaries, resource_model(RESOURCE_MANIFEST),
        track_params=False,
    ).run()


class TestCFG:
    def test_linear_body_chains_entry_to_exit(self):
        cfg = build_cfg(parse_function("def f():\n    a = 1\n    b = 2\n"))
        first, second = [n for n in cfg.statement_nodes()]
        assert first.index in cfg.node(cfg.entry).succ
        assert second.index in first.succ
        assert cfg.exit in second.succ

    def test_if_branches_rejoin(self):
        cfg = build_cfg(
            parse_function(
                """
                def f(flag):
                    if flag:
                        a = 1
                    else:
                        a = 2
                    return a
                """
            )
        )
        branch = next(n for n in cfg.statement_nodes() if n.kind == "branch")
        assert len(branch.succ) == 2
        ret = next(
            n for n in cfg.statement_nodes() if isinstance(n.stmt, ast.Return)
        )
        preds = [
            n.index
            for n in cfg.nodes
            if ret.index in n.succ
        ]
        assert len(preds) == 2

    def test_raising_call_has_exception_edge_to_raise_exit(self):
        cfg = build_cfg(parse_function("def f():\n    work()\n"))
        stmt = next(cfg.statement_nodes())
        assert cfg.raise_exit in stmt.exc

    def test_try_routes_exceptions_to_handler_not_raise_exit(self):
        cfg = build_cfg(
            parse_function(
                """
                def f():
                    try:
                        work()
                    except ValueError:
                        recover()
                """
            )
        )
        work = next(
            n
            for n in cfg.statement_nodes()
            if isinstance(n.stmt, ast.Expr) and "work" in ast.dump(n.stmt)
        )
        assert cfg.raise_exit not in work.exc
        assert work.exc  # routed to the handler dispatch instead

    def test_compound_node_executes_only_its_header(self):
        cfg = build_cfg(
            parse_function(
                """
                def f(flag):
                    if flag:
                        leak()
                """
            )
        )
        branch = next(n for n in cfg.statement_nodes() if n.kind == "branch")
        parts = executed_parts(branch)
        dumped = " ".join(ast.dump(part) for part in parts)
        assert "leak" not in dumped  # the body belongs to its own node

    def test_while_loops_back_to_its_test(self):
        cfg = build_cfg(
            parse_function(
                """
                def f(n):
                    while n:
                        n -= 1
                """
            )
        )
        head = next(n for n in cfg.statement_nodes() if n.kind == "branch")
        body = next(
            n for n in cfg.statement_nodes() if isinstance(n.stmt, ast.AugAssign)
        )
        assert head.index in body.succ


class TestReachingDefinitions:
    def _rd(self, source: str):
        cfg = build_cfg(parse_function(source))
        return cfg, ReachingDefinitions(cfg)

    def test_redefinition_kills_on_a_straight_line(self):
        cfg, rd = self._rd(
            """
            def f():
                x = 1
                x = 2
                return x
            """
        )
        ret = next(
            n for n in cfg.statement_nodes() if isinstance(n.stmt, ast.Return)
        )
        (defining,) = rd.defining_statements(ret.index, "x")
        assert isinstance(defining, ast.Assign)
        assert defining.value.value == 2

    def test_both_branch_definitions_reach_the_join(self):
        cfg, rd = self._rd(
            """
            def f(flag):
                if flag:
                    x = 1
                else:
                    x = 2
                return x
            """
        )
        ret = next(
            n for n in cfg.statement_nodes() if isinstance(n.stmt, ast.Return)
        )
        values = {
            stmt.value.value for stmt in rd.defining_statements(ret.index, "x")
        }
        assert values == {1, 2}

    def test_for_target_and_with_alias_define(self):
        cfg, rd = self._rd(
            """
            def f(items, opener):
                for item in items:
                    pass
                with opener() as handle:
                    use(handle, item)
            """
        )
        with_node = next(n for n in cfg.statement_nodes() if n.kind == "with")
        use_node = next(
            n
            for n in cfg.statement_nodes()
            if isinstance(n.stmt, ast.Expr) and "use" in ast.dump(n.stmt)
        )
        assert rd.definitions_at(use_node.index).get("handle") == frozenset(
            {with_node.index}
        )
        assert "item" in rd.definitions_at(use_node.index)


class TestResourceAnalysis:
    def test_unguarded_acquisition_leaks_on_raise_path(self, tmp_path):
        outcome = analyze(
            tmp_path,
            """
            from multiprocessing.shared_memory import SharedMemory

            def f(payload):
                seg = SharedMemory(create=True, size=64)
                risky(payload)
                seg.close()
                seg.unlink()
            """,
            "f",
        )
        (token,) = [t for t, call in outcome.acquisitions.items() if call]
        assert outcome.leaked(token)
        assert "seg" in outcome.exit_bindings[token]

    def test_try_finally_release_is_clean(self, tmp_path):
        outcome = analyze(
            tmp_path,
            """
            from multiprocessing.shared_memory import SharedMemory

            def f(payload):
                seg = SharedMemory(create=True, size=64)
                try:
                    risky(payload)
                finally:
                    seg.close()
                    seg.unlink()
            """,
            "f",
        )
        (token,) = [t for t, call in outcome.acquisitions.items() if call]
        assert not outcome.leaked(token)
        assert REL in outcome.exit_status[token]

    def test_returned_resource_escapes_instead_of_leaking(self, tmp_path):
        outcome = analyze(
            tmp_path,
            """
            from multiprocessing.shared_memory import SharedMemory

            def f():
                return SharedMemory(create=True, size=64)
            """,
            "f",
        )
        (token,) = [t for t, call in outcome.acquisitions.items() if call]
        assert token in outcome.returned
        assert not outcome.leaked(token)
        assert ESC in outcome.exit_status[token]

    def test_release_through_project_helper_summary(self, tmp_path):
        outcome = analyze(
            tmp_path,
            """
            from multiprocessing.shared_memory import SharedMemory

            def _release(segment):
                segment.close()
                segment.unlink()

            def f():
                seg = SharedMemory(create=True, size=64)
                _release(seg)
            """,
            "f",
        )
        (token,) = [t for t, call in outcome.acquisitions.items() if call]
        assert not outcome.leaked(token)

    def test_adoption_into_self_attribute_is_recorded(self, tmp_path):
        outcome = analyze(
            tmp_path,
            """
            from multiprocessing.shared_memory import SharedMemory

            class Holder:
                def __init__(self):
                    self.segment = SharedMemory(create=True, size=64)
            """,
            "Holder.__init__",
        )
        (token,) = [t for t, call in outcome.acquisitions.items() if call]
        # Adoption records the attribute name; the owning class's other
        # methods are then searched for cleanup of ``self.segment``.
        assert outcome.adopted[token] == "segment"

    def test_mkstemp_tuple_unpack_shares_one_token(self, tmp_path):
        outcome = analyze(
            tmp_path,
            """
            from tempfile import mkstemp
            import os

            def f():
                fd, path = mkstemp()
                risky(path)
                os.close(fd)
                os.unlink(path)
            """,
            "f",
        )
        tokens = [t for t, call in outcome.acquisitions.items() if call]
        assert len(tokens) == 1
        assert outcome.leaked(tokens[0])  # risky(path) precedes both cleanups


class TestSummaries:
    def _summaries(self, tmp_path, files):
        project = build_project(tmp_path, files)
        project.manifest = RESOURCE_MANIFEST
        graph = project.graph()
        return graph, compute_summaries(graph, RESOURCE_MANIFEST)

    def test_releasing_helper_summary(self, tmp_path):
        graph, table = self._summaries(
            tmp_path,
            {
                "src/mod.py": textwrap.dedent(
                    """
                    def _release(segment):
                        segment.close()
                        segment.unlink()
                    """
                )
            },
        )
        summary = table.get("src/mod.py::_release")
        assert summary is not None
        assert summary.releases == frozenset({0})

    def test_factory_summary_returns_resource(self, tmp_path):
        graph, table = self._summaries(
            tmp_path,
            {
                "src/mod.py": textwrap.dedent(
                    """
                    from multiprocessing.shared_memory import SharedMemory

                    def create(size):
                        return SharedMemory(create=True, size=size)
                    """
                )
            },
        )
        assert table.get("src/mod.py::create").returns_resource

    def test_transitive_release_via_wrapper(self, tmp_path):
        graph, table = self._summaries(
            tmp_path,
            {
                "src/mod.py": textwrap.dedent(
                    """
                    def _release(segment):
                        segment.close()
                        segment.unlink()

                    def shutdown(segment):
                        _release(segment)
                    """
                )
            },
        )
        assert table.get("src/mod.py::shutdown").releases == frozenset({0})

    def test_nested_function_factory_summary(self, tmp_path):
        graph, table = self._summaries(
            tmp_path,
            {
                "src/mod.py": textwrap.dedent(
                    """
                    def make_worker(scale):
                        def worker(task):
                            return task * scale

                        return worker
                    """
                )
            },
        )
        assert table.get("src/mod.py::make_worker").returns_nested_function


class TestDtypeFacts:
    @pytest.mark.parametrize(
        ("expression", "expected"),
        [
            ("np.zeros(4, dtype=np.uint64)", "uint64"),
            ("np.zeros(4, np.uint64)", "uint64"),
            ("np.full(4, 0, dtype='int64')", "int64"),
            ("values.astype(np.int64)", "int64"),
            ("values.view('uint64')", "uint64"),
            ("np.array([1, 2])", None),
            ("np.zeros(4, dtype=width)", None),
            ("mystery(4)", None),
        ],
    )
    def test_dtype_of_expression(self, expression, expected):
        expr = ast.parse(expression).body[0].value
        assert dtype_of_expression(expr) == expected
