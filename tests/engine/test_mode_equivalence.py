"""Cross-mode equivalence: sequential, thread and process runs are identical.

The execution mode is an operational choice, never a semantic one: for a
seeded experiment, the anonymized outputs and every reported metric must be
byte-identical whether the sweep points run in this process, in a thread
pool, or in worker processes attached to the shared-memory dataset export.
This is the black-box isolation check for the fan-out subsystem: if the
shared-memory reconstruction dropped a cell, reordered records, or leaked
worker state between tasks, the fingerprints below would diverge.

Four algorithm families are covered: COAT and PCTA (constraint-based
transaction), greedy clustering (relational), and the RT bounding
combination.
"""

from __future__ import annotations

from multiprocessing import shared_memory

import pytest

from repro.datasets import generate_rt_dataset
from repro.engine import (
    ExecutionPolicy,
    FaultPlan,
    ParameterSweep,
    VaryingParameterExperiment,
    WorkerPool,
    relational_config,
    transaction_config,
    rt_config,
)

MODES = ("sequential", "thread", "process")

CONFIGS = [
    pytest.param(transaction_config("coat", k=3, m=2), id="coat"),
    pytest.param(transaction_config("pcta", k=3, m=2), id="pcta"),
    pytest.param(relational_config("cluster", k=3), id="cluster"),
    pytest.param(
        rt_config("cluster", "apriori", k=3, m=2, delta=0.5), id="rt-bounding"
    ),
]

SWEEP = ParameterSweep("k", (3, 4))


@pytest.fixture(scope="module")
def dataset():
    return generate_rt_dataset(n_records=80, n_items=16, seed=41)


def fingerprint(sweep_result) -> list[tuple]:
    """Everything a report states except wall-clock times."""
    return [
        (
            report.result.dataset.to_rows(),
            report.result.dataset.schema.names,
            report.utility,
            report.privacy,
            report.are,
            report.generalized_value_frequencies,
            report.item_frequency_errors,
            report.attacks,
        )
        for report in sweep_result.reports
    ]


def run_in_mode(dataset, config, mode: str, simulate_attacks: bool = False):
    # A fresh experiment (and freshly generated resources) per mode: nothing
    # may leak between executions through shared resource objects.
    experiment = VaryingParameterExperiment(
        dataset, mode=mode, max_workers=2, simulate_attacks=simulate_attacks
    )
    return experiment.run(config, SWEEP)


@pytest.mark.parametrize("config", CONFIGS)
def test_modes_produce_identical_results(dataset, config):
    reference = fingerprint(run_in_mode(dataset, config, "sequential"))
    for mode in MODES[1:]:
        assert fingerprint(run_in_mode(dataset, config, mode)) == reference, (
            f"{mode} mode diverged from sequential for {config.display_label}"
        )


def test_attack_simulation_is_identical_across_modes(dataset):
    """Simulated attacks (AttackResult dataclasses included) never depend on
    the execution mode: the RT configuration runs all three adversaries in
    every mode and the full fingerprints — match sizes, empirical k,
    witnesses — must be equal."""
    config = rt_config("cluster", "apriori", k=3, m=2, delta=0.5)
    reference = run_in_mode(dataset, config, "sequential", simulate_attacks=True)
    assert all(
        sorted(report.attacks) == ["item", "qi", "rt"]
        for report in reference.reports
    )
    expected = fingerprint(reference)
    for mode in MODES[1:]:
        assert (
            fingerprint(run_in_mode(dataset, config, mode, simulate_attacks=True))
            == expected
        ), f"{mode} mode diverged from sequential with attacks enabled"


def test_persistent_pool_matches_sequential_across_sweeps(dataset):
    """One pool reused across several sweeps still matches sequential runs."""
    configs = [
        transaction_config("coat", k=3, m=2),
        relational_config("cluster", k=3),
    ]
    sequential = [
        fingerprint(run_in_mode(dataset, config, "sequential")) for config in configs
    ]
    with WorkerPool(max_workers=2) as pool:
        pooled = [
            fingerprint(
                VaryingParameterExperiment(dataset, mode="process", pool=pool).run(
                    config, SWEEP
                )
            )
            for config in configs
        ]
        segments = pool.segment_names()
        # Both sweeps reuse one export of the (unmutated) dataset.
        assert len(segments) == 1
    assert pooled == sequential


def test_mixed_int_float_cells_do_not_diverge():
    """Dict-equal but type-distinct cells (25 vs 25.0) feed the clustering
    cost model through ``string_codes()``; the shared-memory reconstruction
    must keep them apart or process mode would cluster differently."""
    from repro.datasets import Attribute, Dataset, Schema

    schema = Schema([Attribute.numeric("Age"), Attribute.categorical("Zip")])
    rows = [
        {"Age": (25 if position % 2 else 25.0) + position // 2, "Zip": f"z{position % 4}"}
        for position in range(24)
    ]
    mixed = Dataset(schema, rows, name="mixed-cells")
    config = relational_config("cluster", k=3)
    reference = fingerprint(run_in_mode(mixed, config, "sequential"))
    assert fingerprint(run_in_mode(mixed, config, "process")) == reference


def test_process_mode_unlinks_segments(dataset):
    """After pool shutdown no named shared-memory segment survives."""
    with WorkerPool(max_workers=1) as pool:
        experiment = VaryingParameterExperiment(dataset, mode="process", pool=pool)
        experiment.run(transaction_config("coat", k=3, m=2), SWEEP)
        segments = pool.segment_names()
        assert segments
    for name in segments:
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)


# ---------------------------------------------------------------------------
# Chaos equivalence: the strongest form of the cross-mode guarantee.  A sweep
# whose workers crash, hang, or break the whole executor mid-run must still
# produce results byte-identical to an undisturbed sequential run — fault
# tolerance may cost wall-clock time, never correctness — and must not leak a
# single shared-memory segment.

#: Eight sweep points so faults can land mid-run, not just at the edges.
CHAOS_SWEEP = ParameterSweep("k", (3, 4, 5, 6, 7, 8, 9, 10))

CHAOS_PLANS = [
    pytest.param(
        FaultPlan.build((1, 0, "crash")), None, id="worker-crash-first-attempt"
    ),
    pytest.param(
        FaultPlan.build((3, 0, "hang"), hang_seconds=30.0),
        15.0,
        id="hang-reclaimed-by-task-timeout",
    ),
    pytest.param(
        FaultPlan.build((5, 0, "exit137")), None, id="sigkill-breaks-pool-mid-sweep"
    ),
]


def chaos_policy(plan: FaultPlan, task_timeout: float | None) -> ExecutionPolicy:
    return ExecutionPolicy(
        backoff_base=0.0, fault_plan=plan, task_timeout=task_timeout
    )


@pytest.mark.parametrize("plan, task_timeout", CHAOS_PLANS)
def test_faulted_sweep_is_byte_identical_to_sequential(dataset, plan, task_timeout):
    config = transaction_config("coat", k=3, m=2)
    reference = fingerprint(
        VaryingParameterExperiment(dataset, mode="sequential").run(
            config, CHAOS_SWEEP
        )
    )
    with WorkerPool(max_workers=2) as pool:
        experiment = VaryingParameterExperiment(
            dataset,
            mode="process",
            pool=pool,
            policy=chaos_policy(plan, task_timeout),
        )
        faulted = experiment.run(config, CHAOS_SWEEP)
        segments = pool.segment_names()

    assert fingerprint(faulted) == reference

    # The RunReport accounts for the recovery, not just the happy ending.
    report = faulted.run_report
    assert report is not None
    assert len(report.tasks) == len(CHAOS_SWEEP)
    assert all(task.completed for task in report.tasks)
    assert report.respawns >= 1
    assert report.total_retries + sum(t.replays for t in report.tasks) >= 1

    # No segment survives the pool.
    for name in segments:
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)


def test_faulted_attack_sweep_is_byte_identical_to_sequential(dataset):
    """Fault recovery may replay sweep points; replayed attack simulations
    must reproduce the exact same AttackResult values."""
    plan = FaultPlan.build((2, 0, "crash"), (5, 0, "exit137"))
    config = transaction_config("coat", k=3, m=2)
    reference = fingerprint(
        VaryingParameterExperiment(
            dataset, mode="sequential", simulate_attacks=True
        ).run(config, CHAOS_SWEEP)
    )
    assert all(entry[-1] for entry in reference)  # attacks actually ran
    with WorkerPool(max_workers=2) as pool:
        experiment = VaryingParameterExperiment(
            dataset,
            mode="process",
            pool=pool,
            policy=chaos_policy(plan, None),
            simulate_attacks=True,
        )
        faulted = experiment.run(config, CHAOS_SWEEP)
    assert fingerprint(faulted) == reference
    report = faulted.run_report
    assert report is not None and all(task.completed for task in report.tasks)


def test_chaos_storm_pcta_sweep_survives_multiple_faults(dataset):
    """Several distinct faults in one eight-task PCTA sweep: a crash, a
    hang, and a SIGKILL, all recovered within one run."""
    plan = FaultPlan.build(
        (0, 0, "crash"),
        (2, 0, "hang"),
        (6, 0, "exit137"),
        hang_seconds=30.0,
    )
    config = transaction_config("pcta", k=3, m=2)
    reference = fingerprint(
        VaryingParameterExperiment(dataset, mode="sequential").run(
            config, CHAOS_SWEEP
        )
    )
    with WorkerPool(max_workers=2) as pool:
        experiment = VaryingParameterExperiment(
            dataset, mode="process", pool=pool, policy=chaos_policy(plan, 15.0)
        )
        faulted = experiment.run(config, CHAOS_SWEEP)
        segments = pool.segment_names()

    assert fingerprint(faulted) == reference
    report = faulted.run_report
    assert report is not None
    assert all(task.completed for task in report.tasks)
    assert report.respawns >= 2  # at least the crash and the SIGKILL
    assert report.faulted_tasks  # the charged tasks are identifiable
    for name in segments:
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)
