"""Tests for the full-domain generalization lattice."""

import pytest

from repro.datasets import toy_rt_dataset
from repro.exceptions import HierarchyError
from repro.hierarchy import GeneralizationLattice, build_hierarchies_for_dataset


@pytest.fixture
def lattice():
    dataset = toy_rt_dataset()
    hierarchies = build_hierarchies_for_dataset(dataset, fanout=3)
    return GeneralizationLattice(hierarchies, ["Age", "Education"])


class TestStructure:
    def test_bottom_top_and_size(self, lattice):
        assert lattice.bottom == (0, 0)
        assert lattice.top == lattice.max_levels
        expected_size = (lattice.max_levels[0] + 1) * (lattice.max_levels[1] + 1)
        assert lattice.size() == expected_size
        assert len(list(lattice.iter_nodes())) == expected_size

    def test_missing_hierarchy_rejected(self):
        with pytest.raises(HierarchyError):
            GeneralizationLattice({}, ["Age"])

    def test_iter_levels_is_bottom_up(self, lattice):
        levels = list(lattice.iter_levels())
        assert levels[0] == [lattice.bottom]
        assert levels[-1] == [lattice.top]
        heights = [sum(node) for level in levels for node in level]
        assert heights == sorted(heights)

    def test_successors_and_predecessors(self, lattice):
        successors = lattice.successors(lattice.bottom)
        assert all(sum(node) == 1 for node in successors)
        assert lattice.predecessors(lattice.bottom) == []
        assert lattice.successors(lattice.top) == []
        for node in successors:
            assert lattice.bottom in lattice.predecessors(node)

    def test_generalization_partial_order(self, lattice):
        assert lattice.is_generalization_of(lattice.top, lattice.bottom)
        assert not lattice.is_generalization_of(lattice.bottom, lattice.top)
        assert lattice.is_generalization_of(lattice.bottom, lattice.bottom)

    def test_ancestors_exclude_self(self, lattice):
        ancestors = lattice.ancestors(lattice.bottom)
        assert lattice.bottom not in ancestors
        assert lattice.top in ancestors

    def test_validate_rejects_out_of_range(self, lattice):
        with pytest.raises(HierarchyError):
            lattice.validate((99, 0))


class TestApplication:
    def test_generalize_tuple_bottom_is_identity_labels(self, lattice):
        generalized = lattice.generalize_tuple((25, "Bachelors"), lattice.bottom)
        assert generalized == ("25", "Bachelors")

    def test_generalize_tuple_top_is_root_labels(self, lattice):
        generalized = lattice.generalize_tuple((25, "Bachelors"), lattice.top)
        assert all(
            label == lattice.hierarchies[attr].root.label
            for label, attr in zip(generalized, lattice.attributes)
        )

    def test_generalize_value_single_attribute(self, lattice):
        label = lattice.generalize_value("Age", 25, lattice.top)
        assert label == lattice.hierarchies["Age"].root.label

    def test_level_description(self, lattice):
        description = lattice.level_description(lattice.bottom)
        assert description == {"Age": 0, "Education": 0}
