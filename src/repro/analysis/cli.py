"""Command-line driver: ``python -m repro.analysis [paths]``.

Exit codes: 0 — clean (modulo suppressions and baseline), 1 — new findings,
2 — the analyzer itself was misused (bad path, bad manifest, unknown rule).
"""

from __future__ import annotations

import argparse
import sys
import textwrap
from dataclasses import replace
from pathlib import Path
from typing import Sequence

from repro.analysis.baseline import DEFAULT_BASELINE_NAME, Baseline, fingerprint
from repro.analysis.core import (
    AnalysisReport,
    Finding,
    ModuleContext,
    all_rules,
    analyze_paths,
    rule_by_code,
)
from repro.analysis.manifest import InvariantManifest
from repro.analysis.reporting import render_json, render_sarif, render_text
from repro.exceptions import AnalysisError


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="AST-based invariant linter for the repro codebase.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--root",
        default=None,
        help="repository root that manifest/baseline paths are relative to "
        "(default: current directory)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text); sarif emits a SARIF 2.1.0 log "
        "for CI PR annotation",
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="also list suppressed and baselined findings in text output",
    )
    parser.add_argument(
        "--select",
        action="append",
        metavar="CODE",
        help="run only these rule codes (repeatable; REP000 always runs)",
    )
    parser.add_argument(
        "--manifest",
        default=None,
        help="alternative invariant manifest (default: the packaged one)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help=f"baseline file (default: <root>/{DEFAULT_BASELINE_NAME})",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline file (report grandfathered findings as new)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write the current new findings to the baseline file and exit 0; "
        "requires --reason to justify the grandfathering",
    )
    parser.add_argument(
        "--reason",
        default=None,
        metavar="TEXT",
        help="justification stamped on every entry --write-baseline creates "
        "(required with --write-baseline; edit per-entry afterwards if the "
        "findings deserve distinct justifications)",
    )
    parser.add_argument(
        "--explain",
        metavar="CODE",
        default=None,
        help="print the rationale for one rule code and exit",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list the registered rule codes and exit",
    )
    return parser


def _explain(code: str) -> int:
    rule = rule_by_code(code)
    print(f"{rule.code} ({rule.name}): {rule.summary}")
    print()
    print(textwrap.fill(rule.explanation, width=78))
    return 0


def _list_rules() -> int:
    for rule in all_rules():
        print(f"{rule.code}  {rule.name:<24} {rule.summary}")
    return 0


def _line_text(
    root: Path, finding: Finding, lines_by_path: dict[str, list[str]]
) -> str:
    """Source text of the finding's line ('' when unavailable)."""
    lines = lines_by_path.get(finding.path)
    if lines is None:
        try:
            lines = (root / finding.path).read_text().splitlines()
        except (OSError, UnicodeDecodeError):
            lines = []
        lines_by_path[finding.path] = lines
    if 1 <= finding.line <= len(lines):
        return lines[finding.line - 1]
    return ""


def _apply_baseline(
    report: AnalysisReport,
    baseline: Baseline,
    root: Path,
    lines_by_path: dict[str, list[str]],
) -> AnalysisReport:
    resolved: list[Finding] = []
    for finding in report.findings:
        # REP000 findings (malformed suppressions, parse failures) cannot be
        # grandfathered: they are defects in the escape hatches themselves.
        if finding.is_new and finding.code != "REP000":
            entry = baseline.lookup(
                fingerprint(
                    finding, line_text=_line_text(root, finding, lines_by_path)
                )
            )
            if entry is not None:
                finding = replace(
                    finding, baselined=True, baseline_reason=entry.reason
                )
        resolved.append(finding)
    return AnalysisReport(findings=resolved, analyzed_files=report.analyzed_files)


def main(argv: Sequence[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        if args.explain:
            return _explain(args.explain)
        if args.list_rules:
            return _list_rules()

        root = Path(args.root).resolve() if args.root else Path.cwd()
        manifest = InvariantManifest.load(args.manifest)
        lines_by_path: dict[str, list[str]] = {}

        def remember(module: ModuleContext) -> None:
            lines_by_path[module.relpath] = module.lines

        report = analyze_paths(
            args.paths,
            root=root,
            manifest=manifest,
            select=args.select,
            on_module=remember,
        )

        baseline_path = (
            Path(args.baseline) if args.baseline else root / DEFAULT_BASELINE_NAME
        )
        if args.write_baseline:
            if not (args.reason or "").strip():
                raise AnalysisError(
                    "--write-baseline requires --reason: a baseline entry "
                    "without a justification is exactly the silent exemption "
                    "REP000 exists to prevent"
                )
            entries = Baseline.from_findings(
                (
                    (finding, _line_text(root, finding, lines_by_path))
                    for finding in report.new_findings
                    if finding.code != "REP000"
                ),
                reason=args.reason.strip(),
            )
            entries.save(baseline_path)
            print(
                f"wrote {len(entries)} entr{'y' if len(entries) == 1 else 'ies'} "
                f"to {baseline_path}"
            )
            return 0
        if not args.no_baseline:
            report = _apply_baseline(
                report, Baseline.load(baseline_path), root, lines_by_path
            )
    except AnalysisError as error:
        print(f"repro-lint: error: {error}", file=sys.stderr)
        return 2

    if args.format == "json":
        print(render_json(report))
    elif args.format == "sarif":
        print(render_sarif(report))
    else:
        print(render_text(report, verbose=args.verbose))
    return report.exit_code
