"""The Session facade: a headless walk through the SECRETA workflow.

A :class:`Session` mirrors how a data publisher uses the GUI (Section 3 of the
paper): load a dataset, optionally edit it and inspect attribute histograms,
load or generate hierarchies / policies / query workloads, then switch to the
Evaluation or Comparison interface, run the experiment and export results.

Example
-------
>>> from repro import Session, rt_config
>>> session = Session.generate_rt(n_records=200, seed=1)
>>> report = session.evaluate(rt_config("cluster", "apriori", k=5, m=2))
>>> report.are  # doctest: +SKIP
0.18
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Sequence

from repro.datasets.csv_io import load_csv
from repro.datasets.dataset import Dataset
from repro.datasets.editor import DatasetEditor
from repro.datasets.generators import generate_adult_like, generate_market_basket, generate_rt_dataset
from repro.datasets.statistics import attribute_histogram, dataset_summary
from repro.engine.checkpoint import CheckpointStore
from repro.engine.comparator import MethodComparator
from repro.engine.config import AnonymizationConfig
from repro.engine.evaluator import MethodEvaluator
from repro.engine.experiment import ParameterSweep, VaryingParameterExperiment
from repro.engine.pool import WorkerPool
from repro.engine.resilience import ExecutionPolicy
from repro.engine.resources import ExperimentResources
from repro.engine.results import ComparisonReport, EvaluationReport, SweepResult
from repro.exceptions import ConfigurationError
from repro.frontend.editors import ConfigurationEditor, QueriesEditor
from repro.frontend.export import DataExportModule
from repro.frontend.plotting import Figure, render_histogram
from repro.hierarchy.hierarchy import Hierarchy
from repro.policies.privacy import PrivacyPolicy
from repro.policies.utility import UtilityPolicy
from repro.queries.workload import QueryWorkload


class Session:
    """One interactive SECRETA session over a single dataset."""

    def __init__(
        self,
        dataset: Dataset,
        checkpoint_dir: str | Path | None = None,
    ):
        self.dataset = dataset
        self.dataset_editor = DatasetEditor(dataset)
        self.configuration_editor = ConfigurationEditor(dataset)
        self.queries_editor = QueriesEditor(dataset)
        self._verify_privacy = True
        self._checkpoint: CheckpointStore | None = (
            CheckpointStore(checkpoint_dir) if checkpoint_dir is not None else None
        )

    # -- constructors --------------------------------------------------------------
    @classmethod
    def from_csv(cls, path: str | Path, **load_kwargs: Any) -> "Session":
        """Open a session on a CSV dataset (the Dataset Editor's load action)."""
        return cls(load_csv(path, **load_kwargs))

    @classmethod
    def generate_rt(cls, n_records: int = 1000, n_items: int = 60, seed: int = 13, **kwargs) -> "Session":
        """Open a session on a synthetic RT-dataset (the demo's ready-to-use data)."""
        return cls(generate_rt_dataset(n_records=n_records, n_items=n_items, seed=seed, **kwargs))

    @classmethod
    def generate_relational(cls, n_records: int = 1000, seed: int = 7, **kwargs) -> "Session":
        return cls(generate_adult_like(n_records=n_records, seed=seed, **kwargs))

    @classmethod
    def generate_transactions(cls, n_records: int = 1000, n_items: int = 60, seed: int = 11, **kwargs) -> "Session":
        return cls(generate_market_basket(n_records=n_records, n_items=n_items, seed=seed, **kwargs))

    # -- dataset analysis -------------------------------------------------------------
    def summary(self) -> dict:
        """Per-attribute dataset statistics (the main screen's bottom pane)."""
        return dataset_summary(self.dataset)

    def histogram(self, attribute: str, bins: int = 10) -> dict:
        return attribute_histogram(self.dataset, attribute, bins=bins)

    def histogram_text(self, attribute: str, bins: int = 10, width: int = 40) -> str:
        return render_histogram(self.histogram(attribute, bins=bins), width=width)

    # -- checkpointing ----------------------------------------------------------------
    @property
    def checkpoint(self) -> CheckpointStore | None:
        """The session's durable checkpoint store, if one is configured."""
        return self._checkpoint

    def with_checkpoints(
        self, directory: str | Path | CheckpointStore
    ) -> "Session":
        """Enable durable checkpointing for this session's sweeps/comparisons.

        Completed (configuration, parameter value) cells are persisted under
        ``directory`` and a re-run — after a crash, SIGKILL or power loss —
        recomputes only the missing cells (see ``docs/robustness.md``,
        "Checkpoint & resume").  Returns ``self`` so it chains::

            session = Session.generate_rt(seed=1).with_checkpoints("ckpt/")
        """
        self._checkpoint = (
            directory
            if isinstance(directory, CheckpointStore)
            else CheckpointStore(directory)
        )
        return self

    # -- resources ----------------------------------------------------------------------
    @property
    def verify_privacy(self) -> bool:
        """Whether evaluation reports include the (expensive) privacy verification."""
        return self._verify_privacy

    @verify_privacy.setter
    def verify_privacy(self, value: bool) -> None:
        self._verify_privacy = bool(value)

    def resources(
        self,
        hierarchies: dict[str, Hierarchy] | None = None,
        item_hierarchy: Hierarchy | None = None,
        privacy_policy: PrivacyPolicy | None = None,
        utility_policy: UtilityPolicy | None = None,
        workload: QueryWorkload | None = None,
    ) -> ExperimentResources:
        """Bundle the session's editors' state into experiment resources.

        Explicit arguments override whatever the editors currently hold;
        anything still missing is generated automatically when a run needs it.
        """
        editor_hierarchies = dict(self.configuration_editor.hierarchies)
        transaction_names = self.dataset.schema.transaction_names
        editor_item_hierarchy = None
        if transaction_names and transaction_names[0] in editor_hierarchies:
            editor_item_hierarchy = editor_hierarchies.pop(transaction_names[0])
        return ExperimentResources(
            hierarchies={**editor_hierarchies, **(hierarchies or {})},
            item_hierarchy=item_hierarchy or editor_item_hierarchy,
            privacy_policy=privacy_policy or self.configuration_editor.privacy_policy,
            utility_policy=utility_policy or self.configuration_editor.utility_policy,
            workload=workload or self.queries_editor.workload,
        )

    # -- evaluation mode -------------------------------------------------------------------
    def evaluate(
        self,
        config: AnonymizationConfig,
        resources: ExperimentResources | None = None,
        universe_mode: str = "original",
        simulate_attacks: bool = False,
    ) -> EvaluationReport:
        """Run one configuration and compute all Evaluation-mode indicators.

        ``universe_mode`` selects how ARE resolves generalized labels:
        ``"original"`` (default) against the original dataset's attribute
        domains — consistent with the utility-loss charging rule — and
        ``"seed"`` against the hierarchies alone (the pre-universe regression
        reference); see ``docs/queries.md``.  ``simulate_attacks=True``
        additionally plays the prior-knowledge re-identification adversary
        against the anonymized output and attaches the empirical guarantees
        to the report (see ``docs/validation.md``).
        """
        evaluator = MethodEvaluator(
            self.dataset,
            resources or self.resources(),
            verify_privacy=self._verify_privacy,
            universe_mode=universe_mode,
            simulate_attacks=simulate_attacks,
        )
        return evaluator.evaluate(config)

    def worker_pool(
        self,
        max_workers: int | None = None,
        policy: ExecutionPolicy | None = None,
    ) -> WorkerPool:
        """A persistent process pool for repeated sweeps and comparisons.

        The pool spawns its workers once, and the first process-mode
        ``sweep``/``compare`` call that uses it exports its dataset to shared
        memory; the export is cached, so consecutive calls over the same
        (unmutated) dataset ship only small task manifests.  Use it as a
        context manager
        (or call ``close()``) so the workers shut down and the shared-memory
        segments are unlinked::

            with session.worker_pool() as pool:
                session.sweep(config_a, "k", 2, 10, 2, mode="process", pool=pool)
                session.sweep(config_b, "k", 2, 10, 2, mode="process", pool=pool)

        ``policy`` sets the pool's default
        :class:`~repro.engine.resilience.ExecutionPolicy` — task timeouts,
        retry budget, degradation ladder (see ``docs/robustness.md``).
        """
        return WorkerPool(max_workers=max_workers, policy=policy)

    def sweep(
        self,
        config: AnonymizationConfig,
        parameter: str,
        start: float,
        end: float,
        step: float,
        resources: ExperimentResources | None = None,
        mode: str = "sequential",
        max_workers: int | None = None,
        pool: WorkerPool | None = None,
        universe_mode: str = "original",
        policy: ExecutionPolicy | None = None,
        checkpoint: CheckpointStore | None = None,
        simulate_attacks: bool = False,
    ) -> SweepResult:
        """Varying-parameter execution of a single configuration.

        ``mode="process"`` evaluates the sweep points in parallel worker
        processes (the algorithms are CPU-bound, so this is the mode that
        actually uses multiple cores); ``max_workers`` caps the pool.  The
        dataset travels to the workers through shared memory, and a
        persistent ``pool`` (see :meth:`worker_pool`) reuses the workers and
        the export across calls.  ``universe_mode`` selects the ARE label
        resolution semantics (see :meth:`evaluate`).  ``policy`` tunes fault
        tolerance (retries, timeouts, degradation); the run's
        :class:`~repro.engine.resilience.RunReport` lands on the result's
        ``run_report``.
        """
        experiment = VaryingParameterExperiment(
            self.dataset,
            resources or self.resources(),
            verify_privacy=False,
            mode=mode,
            max_workers=max_workers,
            pool=pool,
            universe_mode=universe_mode,
            policy=policy,
            checkpoint=checkpoint or self._checkpoint,
            simulate_attacks=simulate_attacks,
        )
        return experiment.run(config, ParameterSweep.from_range(parameter, start, end, step))

    # -- comparison mode ---------------------------------------------------------------------
    def compare(
        self,
        configurations: Sequence[AnonymizationConfig],
        parameter: str,
        start: float,
        end: float,
        step: float,
        resources: ExperimentResources | None = None,
        parallel: bool = False,
        mode: str | None = None,
        max_workers: int | None = None,
        pool: WorkerPool | None = None,
        universe_mode: str = "original",
        policy: ExecutionPolicy | None = None,
        checkpoint: CheckpointStore | None = None,
        simulate_attacks: bool = False,
    ) -> ComparisonReport:
        """Run several configurations across a sweep and collect their series.

        ``mode="process"`` fans the configurations out across CPU cores
        (capped by ``max_workers``), shipping the dataset through shared
        memory; a persistent ``pool`` (see :meth:`worker_pool`) reuses the
        workers and the export across calls.  ``parallel=True`` keeps
        selecting the legacy thread pool.  ``policy`` tunes fault tolerance;
        the fan-out's :class:`~repro.engine.resilience.RunReport` lands on
        the report's ``run_report``.
        """
        if not configurations:
            raise ConfigurationError("the Comparison mode needs at least one configuration")
        comparator = MethodComparator(
            self.dataset,
            resources or self.resources(),
            verify_privacy=False,
            parallel=parallel,
            max_workers=max_workers,
            mode=mode,
            pool=pool,
            universe_mode=universe_mode,
            policy=policy,
            checkpoint=checkpoint or self._checkpoint,
            simulate_attacks=simulate_attacks,
        )
        return comparator.compare(
            configurations, ParameterSweep.from_range(parameter, start, end, step)
        )

    # -- export -----------------------------------------------------------------------------
    def exporter(self, directory: str | Path) -> DataExportModule:
        """A Data Export Module rooted at ``directory``."""
        return DataExportModule(directory)

    def export_all_inputs(self, directory: str | Path) -> dict[str, Path]:
        """Export the dataset plus whatever hierarchies/policies/workload exist."""
        exporter = self.exporter(directory)
        written: dict[str, Path] = {"dataset": exporter.export_dataset(self.dataset)}
        if self.configuration_editor.hierarchies:
            written.update(exporter.export_hierarchies(self.configuration_editor.hierarchies))
        policies = exporter.export_policies(
            self.configuration_editor.privacy_policy,
            self.configuration_editor.utility_policy,
        )
        written.update(policies)
        if self.queries_editor.workload is not None:
            written["workload"] = exporter.export_workload(self.queries_editor.workload)
        return written
