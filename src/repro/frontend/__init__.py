"""Headless frontend: session facade, editors, text plotting and export."""

from __future__ import annotations

from repro.frontend.editors import ConfigurationEditor, QueriesEditor
from repro.frontend.export import DataExportModule, export_figure, export_json, export_series_csv
from repro.frontend.plotting import (
    Figure,
    comparison_figure,
    frequency_figure,
    phase_runtime_figure,
    render_bar_chart,
    render_histogram,
    render_line_chart,
)
from repro.frontend.session import Session

__all__ = [
    "ConfigurationEditor",
    "QueriesEditor",
    "DataExportModule",
    "export_figure",
    "export_json",
    "export_series_csv",
    "Figure",
    "comparison_figure",
    "frequency_figure",
    "phase_runtime_figure",
    "render_bar_chart",
    "render_histogram",
    "render_line_chart",
    "Session",
]
