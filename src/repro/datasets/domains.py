"""Domain snapshots of an original dataset for universe-aware estimation.

Query estimation (:meth:`repro.queries.query.Query.estimate`) resolves
generalized labels to the original values they may stand for.  Hierarchy
nodes carry their own leaf sets, but hierarchy-free labels — the generic
root ``*`` and the explicit item groups of COAT/PCTA — can only be resolved
against the *original* dataset's value domains, which the anonymized dataset
no longer exposes.  :class:`DatasetDomains` is that missing context: one
immutable, picklable snapshot of every attribute's domain, captured from the
original dataset once (reusing the cached :meth:`Dataset.columnar`
vocabularies) and threaded through the engine into every ARE evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (dataset ↔ domains)
    from repro.datasets.dataset import Dataset


@dataclass(frozen=True)
class DatasetDomains:
    """Per-attribute value domains of one (original) dataset.

    ``relational`` maps each relational attribute to its distinct non-missing
    cell values (stringified, the identity label interpreters use);
    ``items`` maps each transaction attribute to its item universe.  The
    snapshot is a pure value object: equal snapshots build equal interpreter
    cache keys, so evaluations in different worker processes share the same
    resolution semantics.
    """

    relational: dict[str, frozenset[str]] = field(default_factory=dict)
    items: dict[str, frozenset[str]] = field(default_factory=dict)

    @classmethod
    def capture(cls, dataset: "Dataset") -> "DatasetDomains":
        """Snapshot every attribute domain of ``dataset``.

        Transaction attributes reuse the columnar :class:`ItemVocabulary`;
        relational attributes reuse the columnar code table's distinct
        values — both views are cached on the dataset, so repeated captures
        (and the metrics running on the same views) cost no extra scans.
        """
        relational: dict[str, frozenset[str]] = {}
        items: dict[str, frozenset[str]] = {}
        for attribute in dataset.schema:
            column = dataset.columnar(attribute.name)
            if attribute.is_transaction:
                items[attribute.name] = frozenset(column.vocabulary.items)
            else:
                relational[attribute.name] = frozenset(
                    str(value) for value in column.values if value is not None
                )
        return cls(relational=relational, items=items)

    def universe_for(self, attribute: str) -> frozenset[str] | None:
        """The domain of ``attribute`` (``None`` when it was not captured)."""
        universe = self.items.get(attribute)
        if universe is not None:
            return universe
        return self.relational.get(attribute)

    def summary(self) -> dict:
        return {
            "relational": {name: len(values) for name, values in sorted(self.relational.items())},
            "items": {name: len(values) for name, values in sorted(self.items.items())},
        }
