"""REP011 — kernel dtype contracts.

The columnar kernels are silent about dtype: ``popcount`` over an
``int32`` posting matrix computes garbage (or upcasts and quietly halves
throughput), a ``float64`` CSR indptr truncates on indexing.  The manifest's
``[[rep011.contracts]]`` entries declare the ground truth — posting bitsets
are packed ``uint64`` words, ``TransactionColumn`` indptr is ``int64`` —
and this rule checks every analyzed call site against them.

The dataflow engine does the tracing: a kernel argument constructed inline
(``popcount(np.zeros(n, dtype=np.int32))``) is checked directly; a name is
traced to its reaching definitions (``np.array``/``np.zeros`` with a dtype,
``astype``, ``view``) through the function's CFG; and a parameter that a
function merely forwards to a kernel inherits the kernel's requirement in
its summary, so the check also fires one call level out.  Construction
sites the engine cannot see stay silent — an unresolved dtype is never a
finding.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterable, Mapping

from repro.analysis.core import Finding, Rule, register
from repro.analysis.dataflow import (
    ReachingDefinitions,
    build_cfg,
    calls_in,
    dtype_contracts,
    dtype_of_definition,
    dtype_of_expression,
    executed_parts,
    project_summaries,
)
from repro.analysis.graph import CallSite, FunctionInfo, ProjectGraph

if TYPE_CHECKING:
    from repro.analysis.core import ModuleContext, Project
    from repro.analysis.dataflow import SummaryTable


@register
class KernelDtypeContracts(Rule):
    code = "REP011"
    name = "dtype-contracts"
    summary = "kernel arguments must be constructed with the declared dtype"
    explanation = (
        "The [[rep011.contracts]] manifest entries pin the dtypes the "
        "columnar kernels assume: posting bitsets are packed uint64 words, "
        "CSR indptr is int64.  NumPy will not enforce these — a wrong-dtype "
        "array silently upcasts, truncates or miscounts.  This rule checks "
        "every call site of a contracted kernel: arguments constructed "
        "inline or traced to np.array/np.zeros/astype/view definitions "
        "through the reaching-definitions analysis must carry the declared "
        "dtype, and helpers that forward a parameter into a kernel inherit "
        "the requirement in their call-graph summary.  Contracts that no "
        "longer resolve to a real function/parameter are themselves flagged "
        "so the manifest cannot rot."
    )

    def finalize(self, project: "Project") -> Iterable[Finding]:
        manifest = project.manifest
        if not manifest.dtype_contracts:
            return
        graph = project.graph()
        summaries = project_summaries(project)
        contracts = dtype_contracts(graph, manifest)

        # Stale contracts: the referenced function/parameter must exist.
        for contract in manifest.dtype_contracts:
            path = contract.function.partition("::")[0]
            info = graph.function(contract.function)
            if info is None:
                if project.resolves(contract.function):
                    continue  # exists but outside the analyzed path set
                yield Finding(
                    code=self.code,
                    message=(
                        f"stale dtype contract: {contract.function!r} does "
                        f"not resolve to a function"
                    ),
                    path=path,
                    line=1,
                    column=0,
                )
            elif info.param_index(contract.param) is None:
                yield Finding(
                    code=self.code,
                    message=(
                        f"stale dtype contract: {contract.function!r} has no "
                        f"parameter {contract.param!r}"
                    ),
                    path=path,
                    line=info.node.lineno,
                    column=info.node.col_offset,
                    symbol=info.qualname,
                )

        for fid, info in graph.functions.items():
            module = project.module(info.module)
            if module is None:
                continue
            sites = [
                site
                for site in graph.call_sites(fid)
                if self._requirements(site, summaries, contracts)
            ]
            if not sites:
                continue
            yield from self._check_function(
                module, info, graph, summaries, contracts, sites
            )

    @staticmethod
    def _requirements(
        site: CallSite,
        summaries: "SummaryTable",
        contracts: Mapping[str, Mapping[int, frozenset[str]]],
    ) -> Mapping[int, frozenset[str]] | None:
        if site.callee is None:
            return None
        required = contracts.get(site.callee)
        if required:
            return required
        summary = summaries.get(site.callee)
        if summary is not None and summary.dtype_requirements:
            return summary.dtype_requirements
        return None

    def _check_function(
        self,
        module: "ModuleContext",
        info: FunctionInfo,
        graph: ProjectGraph,
        summaries: "SummaryTable",
        contracts: Mapping[str, Mapping[int, frozenset[str]]],
        sites: list[CallSite],
    ) -> Iterable[Finding]:
        cfg = build_cfg(info.node)
        definitions = ReachingDefinitions(cfg)
        node_of_call: dict[int, int] = {}
        for node in cfg.statement_nodes():
            for part in executed_parts(node):
                for call in calls_in(part):
                    node_of_call[id(call)] = node.index

        for site in sites:
            required = self._requirements(site, summaries, contracts)
            if required is None:
                continue
            callee = graph.function(site.callee) if site.callee else None
            if callee is None:
                continue
            offset = (
                1
                if (
                    callee.owner_class
                    and isinstance(site.call.func, ast.Attribute)
                )
                or site.constructs is not None
                else 0
            )
            for index, dtypes in required.items():
                argument = self._argument_at(site.call, callee, index, offset)
                if argument is None:
                    continue
                param = (
                    callee.params[index]
                    if index < len(callee.params)
                    else f"#{index}"
                )
                yield from self._check_argument(
                    module,
                    definitions,
                    node_of_call,
                    site,
                    argument,
                    param,
                    dtypes,
                )

    @staticmethod
    def _argument_at(
        call: ast.Call, callee: FunctionInfo, index: int, offset: int
    ) -> ast.expr | None:
        position = index - offset
        if 0 <= position < len(call.args):
            return call.args[position]
        for keyword in call.keywords:
            if keyword.arg is not None and callee.param_index(keyword.arg) == index:
                return keyword.value
        return None

    def _check_argument(
        self,
        module: "ModuleContext",
        definitions: ReachingDefinitions,
        node_of_call: Mapping[int, int],
        site: CallSite,
        argument: ast.expr,
        param: str,
        dtypes: frozenset[str],
    ) -> Iterable[Finding]:
        wanted = "/".join(sorted(dtypes))
        inline = dtype_of_expression(argument)
        if inline is not None:
            if inline not in dtypes:
                yield module.finding(
                    self,
                    site.call,
                    f"argument {param!r} of {site.name}() requires dtype "
                    f"{wanted} but is constructed as {inline}",
                )
            return
        if not isinstance(argument, ast.Name):
            return
        node_index = node_of_call.get(id(site.call))
        if node_index is None:
            return
        for definition in definitions.defining_statements(
            node_index, argument.id
        ):
            found = dtype_of_definition(definition)
            if found is not None and found not in dtypes:
                yield module.finding(
                    self,
                    site.call,
                    f"argument {param!r} of {site.name}() requires dtype "
                    f"{wanted} but {argument.id!r} is constructed as {found} "
                    f"at line {definition.lineno}",
                )


__all__ = ["KernelDtypeContracts"]
