"""Information-loss metrics for relational (single-valued) attributes.

The measures follow the definitions used by the algorithms SECRETA
integrates:

* **NCP / GCP** (Normalized / Global Certainty Penalty, Xu et al. 2006) —
  how much of an attribute's domain a generalized value spans, averaged over
  cells and records.  0 means no generalization, 1 means every value was
  generalized to the root.
* **Discernibility Metric** (Bayardo & Agrawal) — the sum of squared
  equivalence-class sizes; penalises large, indistinct groups.
* **Average equivalence class size** ``C_avg`` (LeFevre et al.) — how much
  larger the average class is than the minimum required size ``k``.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.datasets.dataset import Dataset
from repro.exceptions import DatasetError
from repro.hierarchy.hierarchy import Hierarchy
from repro.index import LabelInterpreter, evict_when_full, interpreter_for
from repro.metrics.interpretation import SUPPRESSED


def categorical_value_ncp(
    label: str,
    hierarchy: Hierarchy | None,
    domain_size: int,
    interpreter: LabelInterpreter | None = None,
) -> float:
    """NCP of one categorical cell: ``(|leaves(label)| - 1) / (|domain| - 1)``."""
    if domain_size <= 1:
        return 0.0
    if str(label) == SUPPRESSED:
        return 1.0
    if interpreter is None:
        interpreter = interpreter_for(hierarchy)
    leaves = interpreter.leaves(label)
    if not leaves:
        # Only the root "*" resolves to nothing without a hierarchy; it stands
        # for the whole domain and must be charged fully, not 0.
        return 1.0
    return max(0, len(leaves) - 1) / (domain_size - 1)


def numeric_value_ncp(
    label,
    hierarchy: Hierarchy | None,
    domain_low: float,
    domain_high: float,
    interpreter: LabelInterpreter | None = None,
) -> float:
    """NCP of one numeric cell: the width of its range over the domain width."""
    if domain_high <= domain_low:
        return 0.0
    if str(label) == SUPPRESSED:
        return 1.0
    if isinstance(label, (int, float)):
        return 0.0
    if interpreter is None:
        interpreter = interpreter_for(hierarchy)
    span = interpreter.span(label)
    if span is None:
        # A label we cannot interpret numerically; treat as fully generalized.
        return 1.0
    low, high = span
    return max(0.0, min(1.0, (high - low) / (domain_high - domain_low)))


class RelationalLossContext:
    """Pre-computed domain information needed to score anonymized datasets.

    The context is built from the *original* dataset so that domain sizes and
    ranges reflect the true data, then reused to score any number of
    anonymized versions (exactly how SECRETA's varying-parameter execution
    scores a whole sweep).
    """

    def __init__(
        self,
        original: Dataset,
        attributes: Sequence[str] | None = None,
        hierarchies: Mapping[str, Hierarchy] | None = None,
    ):
        self.hierarchies = dict(hierarchies or {})
        if attributes is None:
            attributes = [
                attribute.name
                for attribute in original.schema.relational
                if attribute.quasi_identifier
            ]
        self.attributes = list(attributes)
        self.numeric_attributes: set[str] = set()
        self.domain_sizes: dict[str, int] = {}
        self.domain_ranges: dict[str, tuple[float, float]] = {}
        for name in self.attributes:
            attribute = original.schema[name]
            domain = original.domain(name)
            if not domain:
                raise DatasetError(f"attribute {name!r} has an empty domain")
            if attribute.is_numeric:
                self.numeric_attributes.add(name)
                self.domain_ranges[name] = (float(min(domain)), float(max(domain)))
            self.domain_sizes[name] = len(domain)
        #: One shared label interpreter per scored attribute, plus a per-cell
        #: NCP memo: anonymized columns contain few distinct labels, so the
        #: per-record work collapses to a dictionary lookup.
        self._interpreters: dict[str, LabelInterpreter] = {
            name: interpreter_for(self.hierarchies.get(name)) for name in self.attributes
        }
        self._cell_ncp_cache: dict[tuple[str, object], float] = {}

    def cell_ncp(self, attribute: str, label) -> float:
        """NCP of a single anonymized cell (memoized per distinct label).

        Raw numeric cells are not cached: they already score instantly and
        high-cardinality columns would pay memory for no speedup.
        """
        hierarchy = self.hierarchies.get(attribute)
        interpreter = self._interpreters.get(attribute)
        numeric = attribute in self.numeric_attributes
        if numeric and isinstance(label, (int, float)):
            low, high = self.domain_ranges[attribute]
            return numeric_value_ncp(label, hierarchy, low, high, interpreter)
        key = (attribute, label)
        cached = self._cell_ncp_cache.get(key)
        if cached is None:
            if numeric:
                low, high = self.domain_ranges[attribute]
                cached = numeric_value_ncp(label, hierarchy, low, high, interpreter)
            else:
                cached = categorical_value_ncp(
                    label, hierarchy, self.domain_sizes[attribute], interpreter
                )
            evict_when_full(self._cell_ncp_cache)
            self._cell_ncp_cache[key] = cached
        return cached

    def record_ncp(self, record) -> float:
        """Average NCP of one anonymized record over the scored attributes."""
        if not self.attributes:
            return 0.0
        return sum(
            self.cell_ncp(attribute, record[attribute]) for attribute in self.attributes
        ) / len(self.attributes)


def global_certainty_penalty(
    original: Dataset,
    anonymized: Dataset,
    attributes: Sequence[str] | None = None,
    hierarchies: Mapping[str, Hierarchy] | None = None,
    context: RelationalLossContext | None = None,
) -> float:
    """GCP: the average record NCP of the anonymized dataset (0 = intact).

    Pass a pre-built ``context`` to reuse its domain information and NCP memo
    when scoring many anonymized versions of the same original dataset.
    """
    if len(anonymized) == 0:
        return 0.0
    if context is None:
        context = RelationalLossContext(original, attributes, hierarchies)
    total = sum(context.record_ncp(record) for record in anonymized)
    return total / len(anonymized)


def ncp_per_attribute(
    original: Dataset,
    anonymized: Dataset,
    attributes: Sequence[str] | None = None,
    hierarchies: Mapping[str, Hierarchy] | None = None,
) -> dict[str, float]:
    """Average NCP of each scored attribute (diagnostic view used in plots)."""
    context = RelationalLossContext(original, attributes, hierarchies)
    if len(anonymized) == 0:
        return {attribute: 0.0 for attribute in context.attributes}
    result = {}
    for attribute in context.attributes:
        total = sum(
            context.cell_ncp(attribute, record[attribute]) for record in anonymized
        )
        result[attribute] = total / len(anonymized)
    return result


def discernibility_metric(
    anonymized: Dataset, attributes: Sequence[str] | None = None
) -> int:
    """Discernibility: sum of squared equivalence-class sizes."""
    if attributes is None:
        attributes = [
            attribute.name
            for attribute in anonymized.schema.relational
            if attribute.quasi_identifier
        ]
    groups = anonymized.group_by(list(attributes))
    return sum(len(indices) ** 2 for indices in groups.values())


def average_class_size(
    anonymized: Dataset, k: int, attributes: Sequence[str] | None = None
) -> float:
    """``C_avg``: (records / classes) / k.  1.0 is the ideal value."""
    if k < 1:
        raise DatasetError("k must be at least 1")
    if attributes is None:
        attributes = [
            attribute.name
            for attribute in anonymized.schema.relational
            if attribute.quasi_identifier
        ]
    groups = anonymized.group_by(list(attributes))
    if not groups:
        return 0.0
    return (len(anonymized) / len(groups)) / k
