"""Micro-benchmark: the price and payoff of the fault-tolerant engine.

PR 7 rerouted ``WorkerPool.map`` from one ``executor.map`` call to per-task
futures driven by an :class:`~repro.engine.resilience.ExecutionPolicy`
(bounded retries, timeouts, crash recovery, a degradation ladder).  Two
numbers keep that honest:

* **no-fault overhead** — the resilient path versus a plain
  ``ProcessPoolExecutor.map`` over the *same* shared-memory tasks (the PR 4
  fan-out restated).  Acceptance: under 5% on the full-size run — the
  machinery may cost bookkeeping, never throughput.
* **recovery cost** — the same sweep with one injected worker crash: how
  much wall-clock one respawn-and-replay cycle adds, with the results still
  byte-identical to the undisturbed run.

The measured workload matches ``bench_shared_pool.py``: an 8-task metric
sweep (UL, discernibility, C_avg per task) over a 50k-record RT-dataset on
two workers.  Writes ``BENCH_resilience.json`` at the repository root.

Run standalone (writes the trajectory file)::

    PYTHONPATH=src python benchmarks/bench_resilience.py            # full 50k run
    PYTHONPATH=src python benchmarks/bench_resilience.py --smoke    # small CI run

or through pytest (only collected when addressed explicitly)::

    python -m pytest benchmarks/bench_resilience.py -m slow -s
"""

from __future__ import annotations

import json
import os
import sys
import time
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path

import pytest

from repro.columnar.shared import resolve_shared_dataset
from repro.datasets import generate_rt_dataset
from repro.engine.faults import FaultPlan
from repro.engine.pool import WorkerPool
from repro.engine.resilience import ExecutionPolicy, RunReport
from repro.metrics import average_class_size, discernibility_metric, utility_loss

REPO_ROOT = Path(__file__).resolve().parent.parent
TRAJECTORY_FILE = REPO_ROOT / "BENCH_resilience.json"

N_RECORDS = 50_000
N_TASKS = 8
MAX_WORKERS = 2
MAX_OVERHEAD_FRACTION = 0.05

SMOKE_KWARGS = dict(n_records=4_000, n_tasks=4)


def _metric_task(task) -> tuple[float, int, float]:
    """One sweep point over the shared dataset (module-level: picklable)."""
    manifest, k = task
    dataset = resolve_shared_dataset(manifest)
    attributes = [a.name for a in dataset.schema.relational if a.quasi_identifier]
    return (
        utility_loss(dataset, dataset, attribute="Items"),
        discernibility_metric(dataset, attributes),
        average_class_size(dataset, k, attributes),
    )


def _prepare(n_records: int, n_tasks: int):
    dataset = generate_rt_dataset(n_records=n_records, n_items=40, seed=2014)
    for attribute in dataset.schema.names:
        dataset.columnar(attribute)
    dataset.columnar("Items").bitset_postings()
    ks = [2 + task for task in range(n_tasks)]
    return dataset, ks


def run_plain(tasks) -> tuple[list, float]:
    """The PR 4 fan-out restated: one executor.map, no resilience loop."""
    start = time.perf_counter()
    with ProcessPoolExecutor(max_workers=MAX_WORKERS) as executor:
        results = list(executor.map(_metric_task, tasks))
    return results, time.perf_counter() - start


def run_resilient(
    tasks, policy: ExecutionPolicy | None = None
) -> tuple[list, float, RunReport]:
    """The PR 7 path: per-task futures under an ExecutionPolicy."""
    report = RunReport()
    start = time.perf_counter()
    with WorkerPool(max_workers=MAX_WORKERS) as pool:
        results = pool.map(_metric_task, tasks, policy=policy, report=report)
    return results, time.perf_counter() - start, report


def run_benchmark(
    n_records: int = N_RECORDS, n_tasks: int = N_TASKS, repeats: int = 2
) -> dict:
    dataset, ks = _prepare(n_records, n_tasks)

    # One host pool owns the export; both measured paths get a *fresh*
    # executor (spawn + worker-side attach included) so the comparison
    # isolates the resilience machinery itself, not warm-worker reuse.
    with WorkerPool(max_workers=MAX_WORKERS) as host:
        manifest = host.share(dataset)
        tasks = [(manifest, k) for k in ks]

        # Interleave the repeats so machine drift hits both paths equally;
        # take the best of each (standard micro-benchmark practice).
        plain_seconds, resilient_seconds = [], []
        for _ in range(repeats):
            plain_results, seconds = run_plain(tasks)
            plain_seconds.append(seconds)
            resilient_results, seconds, no_fault_report = run_resilient(tasks)
            resilient_seconds.append(seconds)
            assert resilient_results == plain_results

        # Recovery: the same sweep with one worker crash on task 3.
        crash_policy = ExecutionPolicy(
            backoff_base=0.0, fault_plan=FaultPlan.build((3, 0, "crash"))
        )
        crashed_results, crashed_seconds, crash_report = run_resilient(
            tasks, policy=crash_policy
        )
        assert crashed_results == plain_results

    best_plain = min(plain_seconds)
    best_resilient = min(resilient_seconds)
    overhead = best_resilient / best_plain - 1.0
    return {
        "dataset": {
            "n_records": n_records,
            "n_tasks": n_tasks,
            "max_workers": MAX_WORKERS,
        },
        "plain_executor_map": {"seconds": best_plain, "samples": plain_seconds},
        "resilient_pool_map": {
            "seconds": best_resilient,
            "samples": resilient_seconds,
            "total_attempts": no_fault_report.total_attempts,
            "retries": no_fault_report.total_retries,
        },
        "no_fault_overhead_fraction": overhead,
        "recovery_one_crash": {
            "seconds": crashed_seconds,
            "added_seconds_vs_no_fault": crashed_seconds - best_resilient,
            "respawns": crash_report.respawns,
            "retries": crash_report.total_retries,
            "replays": sum(task.replays for task in crash_report.tasks),
            "results_identical": True,
        },
    }


def write_trajectory(payload: dict) -> Path:
    TRAJECTORY_FILE.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return TRAJECTORY_FILE


@pytest.mark.slow
def test_resilience_overhead_under_five_percent(record):
    payload = run_benchmark()
    record("resilience", payload)
    write_trajectory(payload)
    assert payload["no_fault_overhead_fraction"] < MAX_OVERHEAD_FRACTION
    assert payload["recovery_one_crash"]["respawns"] >= 1


def test_resilience_smoke(record):
    """Fast CI smoke: recovery works and the accounting is coherent.

    The 5% bar is asserted only on the full-size run — at smoke scale each
    task is milliseconds and scheduler noise dominates the ratio.  In CI
    (``CI`` set) the small-size payload is written to
    ``BENCH_resilience.json`` for the artifact upload; local test runs
    leave the committed full-size trajectory untouched.
    """
    payload = run_benchmark(**SMOKE_KWARGS, repeats=1)
    record("resilience_smoke", payload)
    if os.environ.get("CI"):
        write_trajectory(payload)
    recovery = payload["recovery_one_crash"]
    assert recovery["respawns"] >= 1
    assert recovery["results_identical"]
    assert payload["resilient_pool_map"]["retries"] == 0


def _print_summary(payload: dict) -> None:
    plain = payload["plain_executor_map"]
    resilient = payload["resilient_pool_map"]
    recovery = payload["recovery_one_crash"]
    print(
        f"dataset: {payload['dataset']['n_records']} records, "
        f"{payload['dataset']['n_tasks']} tasks, "
        f"{payload['dataset']['max_workers']} workers"
    )
    print(f"plain executor.map:  {plain['seconds']:.3f}s")
    print(
        f"resilient pool.map:  {resilient['seconds']:.3f}s "
        f"({payload['no_fault_overhead_fraction']:+.1%} overhead)"
    )
    print(
        f"one-crash recovery:  {recovery['seconds']:.3f}s "
        f"(+{recovery['added_seconds_vs_no_fault']:.3f}s, "
        f"{recovery['respawns']} respawn(s), {recovery['replays']} replay(s))"
    )


if __name__ == "__main__":
    kwargs = SMOKE_KWARGS if "--smoke" in sys.argv[1:] else {}
    result = run_benchmark(**kwargs)
    path = write_trajectory(result)
    _print_summary(result)
    print(f"trajectory written to {path}")
