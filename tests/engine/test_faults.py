"""Unit tests for the deterministic fault-injection harness (`repro.engine.faults`).

The chaos suites trust the harness to fire exactly where scheduled; these
tests pin that contract: coordinate matching, picklability (a plan ships to
worker processes inside every submission), the soft-fault behaviours, and
the pid gate that keeps hard faults from killing the orchestrating process
when a task has been degraded to an in-parent backend.
"""

from __future__ import annotations

import os
import pickle

import pytest

from repro.engine.faults import (
    FAULT_KINDS,
    Corrupted,
    Fault,
    FaultPlan,
    InjectedFault,
    faulted_call,
)
from repro.exceptions import ConfigurationError


def _double(value: int) -> int:
    return value * 2


class TestFaultValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown fault kind"):
            Fault(task_index=0, attempt=0, kind="explode")

    def test_negative_task_index_rejected(self):
        with pytest.raises(ConfigurationError, match="task_index"):
            Fault(task_index=-1, attempt=0, kind="error")

    def test_attempt_below_minus_one_rejected(self):
        with pytest.raises(ConfigurationError, match="attempt"):
            Fault(task_index=0, attempt=-2, kind="error")

    @pytest.mark.parametrize("kind", FAULT_KINDS)
    def test_all_declared_kinds_construct(self, kind):
        assert Fault(task_index=0, attempt=0, kind=kind).kind == kind


class TestFaultPlan:
    def test_build_shorthand_and_kind_for(self):
        plan = FaultPlan.build((0, 0, "crash"), (2, 1, "error"), (5, -1, "hang"))
        assert plan.kind_for(0, 0) == "crash"
        assert plan.kind_for(0, 1) is None
        assert plan.kind_for(2, 1) == "error"
        assert plan.kind_for(5, 0) == "hang"
        assert plan.kind_for(5, 7) == "hang"  # attempt=-1 fires every attempt
        assert plan.kind_for(1, 0) is None

    def test_plan_captures_parent_pid(self):
        assert FaultPlan.build((0, 0, "crash")).parent_pid == os.getpid()

    def test_plan_round_trips_through_pickle(self):
        plan = FaultPlan.build((0, 0, "exit137"), (1, 2, "corrupt"), hang_seconds=9.0)
        clone = pickle.loads(pickle.dumps(plan))
        assert clone == plan
        assert clone.kind_for(1, 2) == "corrupt"


class TestFaultedCall:
    def test_unscheduled_coordinates_run_the_worker(self):
        plan = FaultPlan.build((3, 0, "error"))
        assert faulted_call(_double, 21, 0, 0, plan) == 42

    def test_error_fault_raises_injected_fault(self):
        plan = FaultPlan.build((1, 0, "error"))
        with pytest.raises(InjectedFault, match="task 1 attempt 0"):
            faulted_call(_double, 21, 1, 0, plan)

    def test_error_fault_fires_on_every_backend(self):
        # Soft faults ignore the pid gate: this call runs in the parent.
        plan = FaultPlan.build((0, -1, "error"))
        with pytest.raises(InjectedFault):
            faulted_call(_double, 21, 0, 5, plan)

    def test_corrupt_fault_wraps_the_real_result(self):
        plan = FaultPlan.build((0, 0, "corrupt"))
        result = faulted_call(_double, 21, 0, 0, plan)
        assert isinstance(result, Corrupted)
        assert result.payload == 42

    @pytest.mark.parametrize("kind", ["crash", "exit137", "hang"])
    def test_hard_faults_are_gated_off_in_the_parent_process(self, kind):
        # The plan was built in this process, so parent_pid matches and the
        # worker-killing fault must NOT fire — this test surviving is the
        # assertion.  The degradation ladder relies on exactly this.
        plan = FaultPlan.build((0, -1, kind), hang_seconds=60.0)
        assert faulted_call(_double, 21, 0, 0, plan) == 42
