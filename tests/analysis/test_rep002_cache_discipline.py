"""REP002: cache-invalidation discipline fixtures."""

from __future__ import annotations

from lint_harness import new_codes

from repro.analysis.manifest import InvariantManifest

MANIFEST = InvariantManifest(
    protected_attributes=("_records", "_columnar", "_schema"),
    record_mutators=("_set", "_delete", "_rename"),
    sanctioned_modules=("src/pkg/dataset.py",),
)

DIRECT_WRITE = """
    def clobber(dataset, rows):
        dataset._records = rows
"""

IN_PLACE_MUTATION = """
    def sneak(dataset, row):
        dataset._records.append(row)
        dataset._columnar.clear()
"""

SUBSCRIPT_WRITE = """
    def poke(dataset, column):
        dataset._columnar["age"] = column
"""

RECORD_MUTATOR_CALL = """
    def rewrite(record, value):
        record._set("age", value)
"""

PUBLIC_API = """
    def fine(dataset, row):
        dataset.append(row)
        dataset.set_value(0, "age", 30)
"""

READ_ONLY = """
    def inspect(dataset):
        return len(dataset._records), dict(dataset._columnar)
"""


class TestRep002:
    def test_direct_write_is_flagged(self, harness):
        findings = harness.findings(
            "src/pkg/other.py", DIRECT_WRITE, manifest=MANIFEST, select=["REP002"]
        )
        assert new_codes(findings) == ["REP002"]
        assert "_records" in findings[0].message

    def test_in_place_mutation_is_flagged(self, harness):
        findings = harness.findings(
            "src/pkg/other.py", IN_PLACE_MUTATION, manifest=MANIFEST, select=["REP002"]
        )
        assert new_codes(findings) == ["REP002", "REP002"]

    def test_subscript_write_is_flagged(self, harness):
        findings = harness.findings(
            "src/pkg/other.py", SUBSCRIPT_WRITE, manifest=MANIFEST, select=["REP002"]
        )
        assert new_codes(findings) == ["REP002"]

    def test_record_mutator_call_is_flagged(self, harness):
        findings = harness.findings(
            "src/pkg/other.py",
            RECORD_MUTATOR_CALL,
            manifest=MANIFEST,
            select=["REP002"],
        )
        assert new_codes(findings) == ["REP002"]

    def test_sanctioned_module_is_exempt(self, harness):
        findings = harness.findings(
            "src/pkg/dataset.py", DIRECT_WRITE, manifest=MANIFEST, select=["REP002"]
        )
        assert findings == []

    def test_tests_are_out_of_scope(self, harness):
        findings = harness.findings(
            "tests/test_poke.py", DIRECT_WRITE, manifest=MANIFEST, select=["REP002"]
        )
        assert findings == []

    def test_public_api_and_reads_are_clean(self, harness):
        assert (
            harness.findings(
                "src/pkg/other.py", PUBLIC_API, manifest=MANIFEST, select=["REP002"]
            )
            == []
        )
        assert (
            harness.findings(
                "src/pkg/reader.py", READ_ONLY, manifest=MANIFEST, select=["REP002"]
            )
            == []
        )

    def test_standalone_suppression_covers_next_line(self, harness):
        source = (
            "def clobber(dataset, rows):\n"
            "    # repro: allow[REP002] -- fixture rebuilds a fresh dataset\n"
            "    dataset._records = rows\n"
        )
        findings = harness.findings(
            "src/pkg/other.py", source, manifest=MANIFEST, select=["REP002"]
        )
        assert len(findings) == 1
        assert findings[0].suppressed
        assert new_codes(findings) == []
