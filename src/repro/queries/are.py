"""Average Relative Error (ARE).

ARE (Xu et al., KDD 2006) is SECRETA's "de facto utility indicator": it
measures how accurately a query workload can be answered on the anonymized
data.  For each query the exact count on the original dataset is compared to
the estimate obtained from the anonymized dataset, and the relative errors are
averaged::

    ARE = (1/|W|) * sum_q |estimate_q - actual_q| / max(actual_q, floor)

The ``floor`` (called a *sanity bound* in the literature) avoids dividing by
zero for queries with no matching records.

Estimates resolve generalized labels in one of two *universe modes*
(``docs/queries.md``): ``"original"`` (the default) keys every label
interpreter by the original dataset's attribute domains — captured here when
the caller does not thread a prepared
:class:`~repro.datasets.domains.DatasetDomains` snapshot — so root-generalized
records contribute leaf-uniform probabilities consistent with the
utility-loss charging rule; ``"seed"`` reproduces the hierarchy-only
resolution (the regression reference).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.datasets.dataset import Dataset
from repro.datasets.domains import DatasetDomains
from repro.exceptions import QueryError
from repro.hierarchy.hierarchy import Hierarchy
from repro.index import LabelInterpreter, interpreter_for
from repro.queries.query import Query, _require_universe_mode
from repro.queries.workload import QueryWorkload


@dataclass(frozen=True)
class QueryEvaluation:
    """Per-query evaluation record (actual count, estimate, relative error)."""

    query: Query
    actual: float
    estimate: float
    relative_error: float


@dataclass(frozen=True)
class AreResult:
    """The outcome of evaluating a workload on original vs. anonymized data."""

    are: float
    per_query: tuple[QueryEvaluation, ...]

    @property
    def worst_query(self) -> QueryEvaluation | None:
        if not self.per_query:
            return None
        return max(self.per_query, key=lambda entry: entry.relative_error)

    def summary(self) -> dict:
        return {
            "are": self.are,
            "queries": len(self.per_query),
            "max_relative_error": max(
                (entry.relative_error for entry in self.per_query), default=0.0
            ),
        }


def relative_error(actual: float, estimate: float, floor: float = 1.0) -> float:
    """Relative error of one estimate with a sanity floor on the denominator."""
    if floor <= 0:
        raise QueryError("the sanity floor must be positive")
    return abs(estimate - actual) / max(actual, floor)


def evaluate_query(
    query: Query,
    original: Dataset,
    anonymized: Dataset,
    hierarchies: Mapping[str, Hierarchy] | None = None,
    floor: float = 1.0,
    interpreters: Mapping[str, LabelInterpreter] | None = None,
    *,
    domains: DatasetDomains | None = None,
    universe_mode: str = "original",
    vectorized: bool = True,
) -> QueryEvaluation:
    """Evaluate one query on the original and the anonymized dataset."""
    actual = float(query.count(original, vectorized=vectorized))
    estimate = float(
        query.estimate(
            anonymized,
            hierarchies=hierarchies,
            interpreters=interpreters,
            domains=domains,
            universe_mode=universe_mode,
            vectorized=vectorized,
        )
    )
    return QueryEvaluation(
        query=query,
        actual=actual,
        estimate=estimate,
        relative_error=relative_error(actual, estimate, floor=floor),
    )


def workload_interpreters(
    hierarchies: Mapping[str, Hierarchy] | None,
    domains: DatasetDomains | None = None,
) -> dict[str, LabelInterpreter]:
    """One shared label interpreter per hierarchy- or domain-backed attribute.

    Built once per workload evaluation so every query of the workload resolves
    generalized labels through the same memoized index instead of re-walking
    hierarchies per record per query.  With a ``domains`` snapshot each
    interpreter is keyed by its attribute's original domain (the
    ``"original"`` universe mode); without one the interpreters resolve
    against the hierarchies alone (the ``"seed"`` mode).
    """
    hierarchies = dict(hierarchies or {})
    attributes = set(hierarchies)
    if domains is not None:
        attributes |= set(domains.relational) | set(domains.items)
    return {
        attribute: interpreter_for(
            hierarchies.get(attribute),
            domains.universe_for(attribute) if domains is not None else None,
        )
        for attribute in attributes
    }


def average_relative_error(
    workload: QueryWorkload | Iterable[Query],
    original: Dataset,
    anonymized: Dataset,
    hierarchies: Mapping[str, Hierarchy] | None = None,
    floor: float = 1.0,
    *,
    domains: DatasetDomains | None = None,
    universe_mode: str = "original",
    vectorized: bool = True,
) -> AreResult:
    """Evaluate a whole workload and return the ARE with per-query detail.

    ``domains`` threads a prepared snapshot of the original dataset's
    attribute domains (the engine captures one in its experiment resources);
    when omitted under ``universe_mode="original"`` it is captured from
    ``original`` directly, so the universe-aware semantics never depend on
    the caller remembering to pass it.
    """
    _require_universe_mode(universe_mode)
    if workload is None:
        raise QueryError("average_relative_error needs a query workload, got None")
    if universe_mode == "original":
        if domains is None:
            domains = DatasetDomains.capture(original)
    else:
        domains = None  # the seed semantics ignore any supplied snapshot
    interpreters = workload_interpreters(hierarchies, domains)
    per_query = tuple(
        evaluate_query(
            query,
            original,
            anonymized,
            hierarchies=hierarchies,
            floor=floor,
            interpreters=interpreters,
            domains=domains,
            universe_mode=universe_mode,
            vectorized=vectorized,
        )
        for query in workload
    )
    if not per_query:
        raise QueryError("cannot compute the ARE of an empty query workload")
    are = sum(entry.relative_error for entry in per_query) / len(per_query)
    return AreResult(are=are, per_query=per_query)
