"""Inverted index of a transaction attribute: item → posting list.

The constraint-based transaction algorithms (COAT, PCTA) spend almost all of
their time asking *"which records could contain an item of this group?"* —
the union of the group members' posting lists.  Since PR 2 the postings are
stored as dense ``uint64`` bitsets (:mod:`repro.columnar.bitset`): a group
union is a vectorized word-wise OR, constraint support is ANDs plus a
popcount, and the record *sets* the PR 1 API promised (``postings()``,
``union()`` returning ``frozenset``) are materialized lazily and memoized, so
callers that only need supports/sizes never pay for boxing record ids.

The same groups recur across constraint iterations, so the per-group union
bitsets and materialized frozensets are memoized by the (frozen) item group.
The memoization is pure: a cached union is exactly the union that would be
recomputed, so algorithm outputs are unchanged.
"""

from __future__ import annotations

from typing import Iterable, Mapping

import numpy as np

from repro.columnar.bitset import (
    bitset_from_indices,
    indices_of,
    popcount,
    popcount_rows,
    union_rows,
    word_count,
)
from repro.datasets.dataset import Dataset
from repro.index.interpreter import evict_when_full

_EMPTY: frozenset[int] = frozenset()


class InvertedIndex:
    """Per-item posting bitsets over one transaction attribute.

    ``cached=False`` disables union memoization (every union is recomputed);
    it exists so tests can verify the memoization changes nothing.
    """

    def __init__(
        self,
        postings: Mapping[str, Iterable[int]],
        n_records: int = 0,
        cached: bool = True,
    ) -> None:
        materialized = {
            str(item): frozenset(int(i) for i in records)
            for item, records in postings.items()
        }
        capacity = int(n_records)
        for records in materialized.values():
            if records:
                capacity = max(capacity, max(records) + 1)
        items = sorted(materialized)
        bits = np.zeros((len(items), word_count(capacity)), dtype=np.uint64)
        for token, item in enumerate(items):
            bits[token] = bitset_from_indices(materialized[item], capacity)
        self._init_from_bits(items, bits, n_records=n_records, cached=cached)
        # The constructor was handed the record sets already; keep them so
        # postings() needs no re-materialization on this path.
        self._posting_sets = materialized

    def _init_from_bits(
        self,
        items: list[str],
        bits: np.ndarray,
        n_records: int,
        cached: bool,
    ) -> None:
        self._items = items
        self._token: dict[str, int] = {item: t for t, item in enumerate(items)}
        self._bits = bits
        self._frequencies = popcount_rows(bits) if len(items) else np.zeros(0, np.int64)
        self.n_records = n_records
        self._cached = cached
        self._posting_sets: dict[str, frozenset[int]] = {}
        self._union_bits_memo: dict[frozenset, np.ndarray] = {}
        self._union_sets: dict[frozenset, frozenset[int]] = {}

    @classmethod
    def from_dataset(
        cls, dataset: Dataset, attribute: str | None = None, cached: bool = True
    ) -> "InvertedIndex":
        """Build the index of ``attribute`` (default: the only transaction one).

        Construction goes through the dataset's cached columnar view
        (:meth:`~repro.datasets.dataset.Dataset.columnar`): the CSR token
        column is scattered into posting bitsets in one vectorized pass.
        """
        column = dataset.columnar(attribute)
        index = cls.__new__(cls)
        index._init_from_bits(
            list(column.vocabulary.items),
            column.bitset_postings(),
            n_records=column.n_records,
            cached=cached,
        )
        return index

    def __repr__(self) -> str:
        return (
            f"InvertedIndex(items={len(self._items)}, "
            f"records={self.n_records}, cached_unions={len(self._union_bits_memo)})"
        )

    def __contains__(self, item: object) -> bool:
        return item in self._token

    def __len__(self) -> int:
        return len(self._items)

    @property
    def universe(self) -> frozenset[str]:
        """All indexed items."""
        return frozenset(self._items)

    def postings(self, item: str) -> frozenset[int]:
        """Records containing ``item`` (empty for unknown items)."""
        cached = self._posting_sets.get(item)
        if cached is not None:
            return cached
        token = self._token.get(item)
        if token is None:
            return _EMPTY
        records = frozenset(int(i) for i in indices_of(self._bits[token]))
        self._posting_sets[item] = records
        return records

    def frequency(self, item: str) -> int:
        """Support of a single item."""
        token = self._token.get(item)
        return int(self._frequencies[token]) if token is not None else 0

    def _group_bits(self, key: frozenset) -> np.ndarray:
        """The union bitset of an item group (memoized when caching is on)."""
        if self._cached:
            cached = self._union_bits_memo.get(key)
            if cached is not None:
                return cached
        lookup = self._token
        tokens = [lookup[item] for item in key if item in lookup]
        bits = union_rows(self._bits, np.asarray(tokens, dtype=np.int64))
        if self._cached:
            evict_when_full(self._union_bits_memo)
            self._union_bits_memo[key] = bits
        return bits

    @staticmethod
    def _as_key(items: Iterable[str]) -> frozenset:
        return items if isinstance(items, frozenset) else frozenset(items)

    def union(self, items: Iterable[str]) -> frozenset[int]:
        """Records containing *any* item of the group (memoized per group)."""
        key = self._as_key(items)
        if self._cached:
            cached = self._union_sets.get(key)
            if cached is not None:
                return cached
        result = frozenset(int(i) for i in indices_of(self._group_bits(key)))
        if self._cached:
            evict_when_full(self._union_sets)
            self._union_sets[key] = result
        return result

    def union_size(self, items: Iterable[str]) -> int:
        """``len(union(items))`` without materializing the record set."""
        return popcount(self._group_bits(self._as_key(items)))

    def merged_union_size(
        self, items_a: Iterable[str], items_b: Iterable[str]
    ) -> int:
        """``len(union(items_a) | union(items_b))`` in the bitset domain.

        The PCTA merge scorer uses this to rate a candidate cluster merge
        without building either record set.
        """
        bits_a = self._group_bits(self._as_key(items_a))
        bits_b = self._group_bits(self._as_key(items_b))
        return popcount(bits_a | bits_b)

    def joint_support(self, groups: Iterable[Iterable[str]]) -> int:
        """Records containing an item of *every* group (0 for no groups).

        This is the support computation of COAT/PCTA privacy constraints:
        each constraint item is represented by its current group, and a record
        supports the constraint when it intersects every group.  The whole
        computation stays in the bitset domain: OR per group (memoized), AND
        across groups, one popcount at the end.
        """
        covering: np.ndarray | None = None
        for group in groups:
            bits = self._group_bits(self._as_key(group))
            covering = bits if covering is None else covering & bits
            if not covering.any():
                return 0
        return popcount(covering) if covering is not None else 0
