"""ARE semantic regression baseline for the universe modes.

The ``"original"`` universe mode is a deliberate semantic change (ROADMAP:
"Universe-aware query estimation"): root-generalized records stop
contributing probability 0 and ARE becomes consistent with the utility-loss
charging rule.  This module is the committed baseline for that change:

* seeded COAT/PCTA outputs (with the hierarchy-free root ``*`` applied to
  surviving items, the form external SECRETA outputs carry) are pinned to
  the pre-change ARE values under ``universe_mode="seed"``,
* the direction and consistency of the change under ``"original"`` is
  asserted: every record resolves its labels to *something*, so no query
  estimate collapses to 0 merely because the root resolved against an empty
  universe.
"""

import pytest

from repro.algorithms.base import apply_item_mapping
from repro.datasets import generate_rt_dataset
from repro.engine import AnonymizationModule, ExperimentResources, transaction_config
from repro.queries import average_relative_error, generate_query_workload

#: Pinned pre-change ARE values (seed semantics) of the scenarios below.
#: These were computed with the per-record estimator as of this commit and
#: must never drift: ``universe_mode="seed"`` is the equivalence reference.
SEED_BASELINE = {
    "coat": 0.7548611111111111,
    "pcta": 0.7275926302778154,
}
ORIGINAL_BASELINE = {
    "coat": 0.7440873558540224,
    "pcta": 0.7122294864257828,
}


@pytest.fixture(scope="module")
def scenario():
    rt = generate_rt_dataset(n_records=120, n_items=10, seed=2014)
    workload = generate_query_workload(rt, n_queries=30, seed=7)
    return rt, workload


def rooted_output(rt, workload, algorithm: str):
    """A seeded COAT/PCTA output with two surviving items root-generalized."""
    config = transaction_config(algorithm, k=35)
    resources = ExperimentResources.prepare(rt, config, workload=workload)
    anonymized = AnonymizationModule(rt, resources).run(config).dataset
    survivors = sorted(
        {
            item
            for record in anonymized
            for item in record["Items"]
            if not item.startswith("(") and item != "*"
        }
    )
    assert len(survivors) >= 2, "scenario needs surviving singleton items"
    rooted = anonymized.copy()
    apply_item_mapping(rooted, "Items", {item: "*" for item in survivors[:2]})
    return rooted


@pytest.mark.parametrize("algorithm", ["coat", "pcta"])
class TestAreRegressionBaseline:
    def test_seed_mode_reproduces_pre_change_values(self, scenario, algorithm):
        rt, workload = scenario
        rooted = rooted_output(rt, workload, algorithm)
        result = average_relative_error(workload, rt, rooted, universe_mode="seed")
        assert result.are == pytest.approx(SEED_BASELINE[algorithm], rel=1e-12)
        # The kernel and per-record paths are the same semantics bit for bit.
        scalar = average_relative_error(
            workload, rt, rooted, universe_mode="seed", vectorized=False
        )
        assert result.are == scalar.are

    def test_original_mode_direction_of_change(self, scenario, algorithm):
        rt, workload = scenario
        rooted = rooted_output(rt, workload, algorithm)
        seed = average_relative_error(workload, rt, rooted, universe_mode="seed")
        original = average_relative_error(
            workload, rt, rooted, universe_mode="original"
        )
        assert original.are == pytest.approx(ORIGINAL_BASELINE[algorithm], rel=1e-12)
        # Root-generalized records now contribute leaf-uniform probabilities,
        # recovering signal for queries the seed semantics zeroed out.
        assert original.are < seed.are
        assert original.are == pytest.approx(original.are)  # finite
        seed_zero = sum(1 for entry in seed.per_query if entry.estimate == 0.0)
        original_zero = sum(
            1 for entry in original.per_query if entry.estimate == 0.0
        )
        assert original_zero < seed_zero
        # Consistency with UL's charging rule: no estimate is 0 merely
        # because a label resolved against an empty universe — every record
        # of this output still publishes *some* label for every query item.
        assert original_zero == 0

    def test_original_mode_estimates_stay_bounded(self, scenario, algorithm):
        rt, workload = scenario
        rooted = rooted_output(rt, workload, algorithm)
        original = average_relative_error(
            workload, rt, rooted, universe_mode="original"
        )
        for entry in original.per_query:
            assert 0.0 <= entry.estimate <= len(rt)
