"""FIG3 / SCEN1 — Evaluation mode: "Evaluating a method for RT-datasets".

The Evaluation screen (Figure 3) shows, for one configured method:

(a) ARE scores for a varying parameter (here δ, with k and m fixed),
(b) the runtime of the algorithm and its phases,
(c) the frequency of generalized values in a selected relational attribute,
(d) the relative error of transaction item frequencies.

Each benchmark regenerates one of those series with the Cluster+Apriori
combination under RTmerger and records it for EXPERIMENTS.md.
"""

from __future__ import annotations

from repro.engine import (
    MethodEvaluator,
    ParameterSweep,
    VaryingParameterExperiment,
    rt_config,
)

CONFIG = rt_config(
    "cluster", "apriori", bounding="rtmerger", k=10, m=2, delta=0.5,
    label="Cluster+Apriori/RTmerger",
)


def test_a_are_vs_delta(benchmark, session, record):
    """(a) ARE against a varying δ with fixed k and m."""
    sweep = ParameterSweep("delta", (0.0, 0.25, 0.5, 0.75, 1.0))

    def run():
        experiment = VaryingParameterExperiment(
            session.dataset, session.resources(), verify_privacy=False
        )
        return experiment.run(CONFIG, sweep)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    record(
        "fig3a_are_vs_delta",
        {
            "configuration": result.configuration["label"],
            "delta": list(result.values),
            "are": result.series["are"].y,
            "relational_gcp": result.series["relational_gcp"].y,
            "transaction_ul": result.series["transaction_ul"].y,
        },
    )
    assert len(result.series["are"]) == len(sweep)


def test_b_runtime_and_phases(benchmark, session, record):
    """(b) total runtime and the runtime of the algorithm's phases."""

    def run():
        evaluator = MethodEvaluator(session.dataset, session.resources(), verify_privacy=False)
        return evaluator.evaluate(CONFIG)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    record(
        "fig3b_phase_runtime",
        {
            "total_seconds": report.runtime_seconds,
            "phase_seconds": report.phase_seconds,
        },
    )
    assert report.phase_seconds
    assert report.runtime_seconds >= max(report.phase_seconds.values())


def test_c_generalized_value_frequencies(benchmark, session, record):
    """(c) frequencies of generalized values in a relational attribute."""
    evaluator = MethodEvaluator(session.dataset, session.resources(), verify_privacy=False)
    report = evaluator.evaluate(CONFIG)

    def frequencies():
        return report.generalized_value_frequencies["Education"]

    education = benchmark(frequencies)
    record("fig3c_generalized_education", education)
    assert sum(education.values()) == len(session.dataset)


def test_d_item_frequency_error(benchmark, session, record):
    """(d) relative error between original and anonymized item frequencies."""
    evaluator = MethodEvaluator(session.dataset, session.resources(), verify_privacy=False)

    def run():
        return evaluator.evaluate(CONFIG).item_frequency_errors

    errors = benchmark.pedantic(run, rounds=1, iterations=1)
    finite = [error for error in errors.values() if error != float("inf")]
    record(
        "fig3d_item_frequency_error",
        {
            "items": len(errors),
            "mean_error": sum(finite) / len(finite) if finite else 0.0,
            "worst5": dict(sorted(errors.items(), key=lambda kv: -kv[1])[:5]),
        },
    )
    assert errors
