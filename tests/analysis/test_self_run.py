"""The linter's own acceptance test: this repository must lint clean.

Runs the exact command CI runs (``python -m repro.analysis src tests
benchmarks``) against the working tree and requires zero new findings —
everything the rules flag must be fixed, suppressed with a reason, or
carried in the committed baseline.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestSelfRun:
    def test_repository_is_clean_modulo_baseline(self, capsys):
        exit_code = main(
            [
                "src",
                "tests",
                "benchmarks",
                "--root",
                str(REPO_ROOT),
                "--format",
                "json",
            ]
        )
        payload = json.loads(capsys.readouterr().out)
        new = [f for f in payload["findings"] if f["status"] == "new"]
        assert new == [], f"repo has unhandled lint findings: {new}"
        assert exit_code == 0

    def test_every_suppression_and_baseline_entry_carries_a_reason(self, capsys):
        main(
            [
                "src",
                "tests",
                "benchmarks",
                "--root",
                str(REPO_ROOT),
                "--format",
                "json",
            ]
        )
        payload = json.loads(capsys.readouterr().out)
        handled = [
            f for f in payload["findings"] if f["status"] in ("suppressed", "baselined")
        ]
        assert handled, "expected the repo to exercise suppressions and baseline"
        for finding in handled:
            assert finding["reason"].strip(), finding
            assert "TODO" not in finding["reason"], finding

    def test_committed_baseline_fingerprints_are_current(self):
        baseline_path = REPO_ROOT / ".repro-lint-baseline.json"
        payload = json.loads(baseline_path.read_text())
        assert payload["version"] == 2
        assert payload["fingerprint_fields"] == [
            "code",
            "path",
            "symbol",
            "normalized_line",
        ]
        for entry in payload["entries"]:
            assert (REPO_ROOT / entry["path"]).exists(), entry
