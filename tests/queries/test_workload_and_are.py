"""Tests for workload generation, persistence and ARE."""

import pytest

from repro.datasets import (
    Attribute,
    Dataset,
    Schema,
    generate_rt_dataset,
    toy_rt_dataset,
)
from repro.exceptions import QueryError
from repro.queries import (
    Query,
    QueryWorkload,
    RangeCondition,
    average_relative_error,
    evaluate_query,
    generate_query_workload,
    relative_error,
)


@pytest.fixture
def rt():
    return generate_rt_dataset(n_records=120, n_items=20, seed=21)


class TestWorkload:
    def test_empty_workload_rejected(self):
        with pytest.raises(QueryError):
            QueryWorkload([])

    def test_add_remove(self):
        workload = QueryWorkload([Query(items=["a"])])
        workload.add(Query(items=["b"]))
        assert len(workload) == 2
        workload.remove(0)
        assert len(workload) == 1
        with pytest.raises(QueryError):
            workload.remove(10)

    def test_remove_refuses_to_drain_the_workload(self):
        workload = QueryWorkload([Query(items=["a"])])
        with pytest.raises(QueryError, match="last query"):
            workload.remove(0)
        assert len(workload) == 1  # the invariant survives the refusal
        # A bad index is still reported as such, not as a draining refusal.
        with pytest.raises(QueryError, match="no query at index"):
            workload.remove(10)

    def test_generation_redraws_unusable_records(self):
        # Most records yield no predicates (no QI values, empty basket);
        # bounded redrawing still fills the workload from the usable ones.
        schema = Schema(
            [Attribute.categorical("City"), Attribute.transaction("Items")]
        )
        rows = [{"City": None, "Items": []}] * 12 + [
            {"City": "athens", "Items": ["a", "b"]},
            {"City": "berlin", "Items": ["b", "c"]},
        ]
        sparse = Dataset(schema, rows)
        workload = generate_query_workload(sparse, n_queries=8, seed=2)
        assert len(workload) == 8

    def test_generation_raises_when_nothing_is_queryable(self):
        schema = Schema(
            [Attribute.categorical("City"), Attribute.transaction("Items")]
        )
        unusable = Dataset(schema, [{"City": None, "Items": []}] * 5)
        with pytest.raises(QueryError):
            generate_query_workload(unusable, n_queries=4, seed=0)

    def test_generation_grounded_in_data(self, rt):
        workload = generate_query_workload(rt, n_queries=25, seed=3)
        assert len(workload) > 0
        # Most queries should have at least one matching record in the data
        # they were generated from.
        nonzero = sum(1 for query in workload if query.count(rt) > 0)
        assert nonzero >= len(workload) * 0.9

    def test_generation_is_deterministic(self, rt):
        a = generate_query_workload(rt, n_queries=10, seed=5)
        b = generate_query_workload(rt, n_queries=10, seed=5)
        assert [q.to_dict() for q in a] == [q.to_dict() for q in b]

    def test_generation_parameter_validation(self, rt):
        with pytest.raises(QueryError):
            generate_query_workload(rt, n_queries=0)
        with pytest.raises(QueryError):
            generate_query_workload(rt, range_width=0)

    def test_save_load_round_trip(self, tmp_path, rt):
        workload = generate_query_workload(rt, n_queries=8, seed=1)
        path = workload.save(tmp_path / "workload.json")
        loaded = QueryWorkload.load(path)
        assert len(loaded) == len(workload)
        assert [q.to_dict() for q in loaded] == [q.to_dict() for q in workload]

    def test_load_missing_or_invalid(self, tmp_path):
        with pytest.raises(QueryError):
            QueryWorkload.load(tmp_path / "missing.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(QueryError):
            QueryWorkload.load(bad)


class TestAre:
    def test_relative_error_floor(self):
        assert relative_error(0, 5, floor=1.0) == 5.0
        assert relative_error(10, 5) == 0.5
        with pytest.raises(QueryError):
            relative_error(1, 1, floor=0)

    def test_identical_datasets_have_zero_are(self):
        dataset = toy_rt_dataset()
        workload = QueryWorkload(
            [Query(conditions={"Age": RangeCondition(20, 50)}), Query(items=["bread"])]
        )
        result = average_relative_error(workload, dataset, dataset)
        assert result.are == pytest.approx(0.0)
        assert len(result.per_query) == 2

    def test_worst_query_and_summary(self):
        dataset = toy_rt_dataset()
        suppressed = dataset.copy()
        for index in range(len(suppressed)):
            suppressed.set_value(index, "Items", [])
        workload = QueryWorkload(
            [Query(items=["bread"]), Query(conditions={"Age": RangeCondition(20, 90)})]
        )
        result = average_relative_error(workload, dataset, suppressed)
        assert result.are > 0
        assert result.worst_query.query.items == frozenset({"bread"})
        summary = result.summary()
        assert summary["queries"] == 2
        assert summary["max_relative_error"] >= result.are

    def test_evaluate_query_fields(self):
        dataset = toy_rt_dataset()
        evaluation = evaluate_query(Query(items=["bread"]), dataset, dataset)
        assert evaluation.actual == 4
        assert evaluation.estimate == pytest.approx(4)
        assert evaluation.relative_error == pytest.approx(0.0)

    def test_missing_workload_raises_clear_error(self):
        dataset = toy_rt_dataset()
        with pytest.raises(QueryError, match="workload"):
            average_relative_error(None, dataset, dataset)

    def test_empty_workload_raises_clear_error(self):
        dataset = toy_rt_dataset()
        with pytest.raises(QueryError, match="empty"):
            average_relative_error([], dataset, dataset)

    def test_unknown_universe_mode_rejected(self):
        dataset = toy_rt_dataset()
        with pytest.raises(QueryError):
            average_relative_error(
                [Query(items=["bread"])], dataset, dataset, universe_mode="bogus"
            )

    def test_universe_modes_agree_on_identical_datasets(self):
        dataset = toy_rt_dataset()
        workload = QueryWorkload(
            [Query(conditions={"Age": RangeCondition(20, 50)}), Query(items=["bread"])]
        )
        seed = average_relative_error(workload, dataset, dataset, universe_mode="seed")
        original = average_relative_error(workload, dataset, dataset)
        assert seed.are == pytest.approx(0.0)
        assert original.are == pytest.approx(0.0)
