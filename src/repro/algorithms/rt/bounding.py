"""Bounding methods for anonymizing RT-datasets (Poulis et al., ECML/PKDD 2013).

An RT-dataset mixes relational attributes (protected through k-anonymity) and
a transaction attribute (protected through k^m-anonymity).  SECRETA combines
one algorithm of each kind through a *bounding method*:

1. the relational algorithm forms equivalence classes (clusters) of at least
   ``k`` records,
2. the transaction algorithm anonymizes the transaction projection of every
   cluster so that, within the cluster, any combination of up to ``m`` items
   matches at least ``k`` records — together this yields (k, k^m)-anonymity,
3. clusters whose transaction part would have to be destroyed to reach the
   guarantee (utility loss above the threshold ``δ``) are *merged* with other
   clusters and re-anonymized.  The three bounding methods differ in how the
   merge partner is chosen:

   * **Rmerger** — the partner that increases the relational information loss
     the least (favours relational utility),
   * **Tmerger** — the partner whose transactions are most similar (favours
     transaction utility),
   * **RTmerger** — the partner with the best balanced combination of both.

SECRETA exposes 20 relational×transaction algorithm combinations, each usable
with any of the three bounding methods.
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

from repro.algorithms.base import (
    AnonymizationResult,
    Anonymizer,
    PhaseTimer,
    relational_quasi_identifiers,
    validate_k,
)
from repro.algorithms.relational.cluster import ClusterAnonymizer
from repro.algorithms.transaction.apriori import AprioriAnonymizer
from repro.datasets.dataset import Dataset
from repro.exceptions import AlgorithmError, ConfigurationError
from repro.hierarchy.hierarchy import Hierarchy
from repro.metrics.relational import global_certainty_penalty
from repro.metrics.transaction import utility_loss

#: A factory producing a configured transaction anonymizer for one cluster.
TransactionFactory = Callable[[Dataset], Anonymizer]


class RtBoundingAnonymizer(Anonymizer):
    """Base class of the three bounding methods (see module docstring)."""

    name = "rt-bounding"
    data_kind = "rt"
    #: Merge-partner policy: ``"r"``, ``"t"`` or ``"rt"`` (set by subclasses).
    merge_strategy = "rt"

    def __init__(
        self,
        k: int,
        m: int = 2,
        delta: float = 0.5,
        relational_algorithm: Anonymizer | None = None,
        transaction_factory: TransactionFactory | None = None,
        hierarchies: Mapping[str, Hierarchy] | None = None,
        item_hierarchy: Hierarchy | None = None,
        relational_attributes: Sequence[str] | None = None,
        transaction_attribute: str | None = None,
        max_merges: int | None = None,
    ):
        if not 0 <= delta <= 1:
            raise ConfigurationError("delta must lie in [0, 1]")
        if m < 1:
            raise ConfigurationError("m must be at least 1")
        self.k = int(k)
        self.m = int(m)
        self.delta = float(delta)
        self.relational_algorithm = relational_algorithm
        self.transaction_factory = transaction_factory
        self.hierarchies = dict(hierarchies or {})
        self.item_hierarchy = item_hierarchy
        self.relational_attributes = (
            list(relational_attributes) if relational_attributes is not None else None
        )
        self.transaction_attribute = transaction_attribute
        self.max_merges = max_merges

    def parameters(self) -> dict:
        return {
            "k": self.k,
            "m": self.m,
            "delta": self.delta,
            "relational_algorithm": getattr(self.relational_algorithm, "name", "cluster"),
            "bounding": self.name,
        }

    # -- phase 1: relational clustering -------------------------------------------
    def _initial_clusters(
        self, dataset: Dataset, attributes: Sequence[str]
    ) -> tuple[list[list[int]], ClusterAnonymizer]:
        """Clusters of at least k records plus the helper used to generalize them."""
        helper = ClusterAnonymizer(self.k, self.hierarchies, attributes=list(attributes))
        algorithm = self.relational_algorithm
        if algorithm is None or isinstance(algorithm, ClusterAnonymizer):
            if isinstance(algorithm, ClusterAnonymizer):
                helper = algorithm
            clusters = helper.build_clusters(dataset, attributes)
            return clusters, helper
        # Any other relational algorithm: run it and use the equivalence
        # classes of its output as the initial clusters.
        result = algorithm.anonymize(dataset)
        groups = result.dataset.group_by(list(attributes))
        clusters = [sorted(indices) for indices in groups.values()]
        helper._prepare(dataset, list(attributes))
        return clusters, helper

    # -- phase 2: per-cluster transaction anonymization -----------------------------
    def _default_transaction_factory(self) -> TransactionFactory:
        def factory(_subset: Dataset) -> Anonymizer:
            return AprioriAnonymizer(
                self.k, self.m, hierarchy=self.item_hierarchy, attribute=self.transaction_attribute
            )

        return factory

    def _anonymize_cluster_transactions(
        self,
        dataset: Dataset,
        cluster: Sequence[int],
        attribute: str,
        factory: TransactionFactory,
    ) -> tuple[list[frozenset], float]:
        """Anonymize one cluster's transaction projection; return itemsets and UL."""
        subset = dataset.subset(cluster)
        algorithm = factory(subset)
        result = algorithm.anonymize(subset)
        itemsets = [record[attribute] for record in result.dataset]
        loss = utility_loss(
            subset, result.dataset, attribute=attribute, hierarchy=self.item_hierarchy
        )
        return itemsets, loss

    # -- phase 3: merging ---------------------------------------------------------
    def _cluster_items(self, dataset: Dataset, cluster: Sequence[int], attribute: str) -> set:
        items: set = set()
        for index in cluster:
            items |= set(dataset[index][attribute])
        return items

    def _relational_merge_cost(
        self,
        helper: ClusterAnonymizer,
        dataset: Dataset,
        attributes: Sequence[str],
        cluster_a: Sequence[int],
        cluster_b: Sequence[int],
    ) -> float:
        merged = list(cluster_a) + list(cluster_b)
        return helper._cluster_cost(dataset, list(attributes), merged)

    def _transaction_merge_cost(
        self, dataset: Dataset, cluster_a: Sequence[int], cluster_b: Sequence[int], attribute: str
    ) -> float:
        items_a = self._cluster_items(dataset, cluster_a, attribute)
        items_b = self._cluster_items(dataset, cluster_b, attribute)
        union = items_a | items_b
        if not union:
            return 0.0
        jaccard = len(items_a & items_b) / len(union)
        return 1.0 - jaccard

    def _merge_score(
        self,
        helper: ClusterAnonymizer,
        dataset: Dataset,
        attributes: Sequence[str],
        attribute: str,
        cluster_a: Sequence[int],
        cluster_b: Sequence[int],
    ) -> float:
        if self.merge_strategy == "r":
            return self._relational_merge_cost(helper, dataset, attributes, cluster_a, cluster_b)
        if self.merge_strategy == "t":
            return self._transaction_merge_cost(dataset, cluster_a, cluster_b, attribute)
        relational = self._relational_merge_cost(
            helper, dataset, attributes, cluster_a, cluster_b
        )
        transactional = self._transaction_merge_cost(dataset, cluster_a, cluster_b, attribute)
        return 0.5 * relational + 0.5 * transactional

    # -- main -----------------------------------------------------------------------
    def anonymize(self, dataset: Dataset) -> AnonymizationResult:
        attributes = self.relational_attributes or relational_quasi_identifiers(dataset)
        if not attributes:
            raise AlgorithmError(f"{self.name}: the dataset has no relational quasi-identifiers")
        attribute = self.transaction_attribute or dataset.single_transaction_attribute()
        validate_k(self.k, len(dataset), self.name)
        factory = self.transaction_factory or self._default_transaction_factory()

        timer = PhaseTimer()
        with timer.phase("relational clustering"):
            clusters, helper = self._initial_clusters(dataset, attributes)
        initial_clusters = len(clusters)

        with timer.phase("transaction anonymization"):
            outputs: list[tuple[list[frozenset], float]] = [
                self._anonymize_cluster_transactions(dataset, cluster, attribute, factory)
                for cluster in clusters
            ]

        merges = 0
        merge_budget = self.max_merges if self.max_merges is not None else len(clusters)
        with timer.phase("cluster merging"):
            while len(clusters) > 1 and merges < merge_budget:
                losses = [loss for _, loss in outputs]
                worst = max(range(len(clusters)), key=lambda position: losses[position])
                if losses[worst] <= self.delta:
                    break
                candidates = [
                    position for position in range(len(clusters)) if position != worst
                ]
                partner = min(
                    candidates,
                    key=lambda position: self._merge_score(
                        helper, dataset, attributes, attribute, clusters[worst], clusters[position]
                    ),
                )
                merged_cluster = sorted(clusters[worst] + clusters[partner])
                keep = [
                    position
                    for position in range(len(clusters))
                    if position not in (worst, partner)
                ]
                clusters = [clusters[position] for position in keep] + [merged_cluster]
                outputs = [outputs[position] for position in keep] + [
                    self._anonymize_cluster_transactions(dataset, merged_cluster, attribute, factory)
                ]
                merges += 1

        with timer.phase("apply"):
            anonymized = helper.generalize_clusters(
                dataset, clusters, attributes, name_suffix=self.name
            )
            for cluster, (itemsets, _loss) in zip(clusters, outputs):
                for position, index in enumerate(cluster):
                    anonymized.set_value(index, attribute, itemsets[position])

        relational_gcp = global_certainty_penalty(
            dataset, anonymized, attributes=attributes, hierarchies=self.hierarchies
        )
        transaction_ul = utility_loss(
            dataset, anonymized, attribute=attribute, hierarchy=self.item_hierarchy
        )
        statistics = {
            "initial_clusters": initial_clusters,
            "final_clusters": len(clusters),
            "merges": merges,
            "relational_gcp": relational_gcp,
            "transaction_ul": transaction_ul,
            "max_cluster_ul": max((loss for _, loss in outputs), default=0.0),
            "cluster_assignment": [list(cluster) for cluster in clusters],
        }
        return AnonymizationResult(
            dataset=anonymized,
            algorithm=self.name,
            parameters=self.parameters(),
            runtime_seconds=timer.total,
            phase_seconds=timer.phases,
            statistics=statistics,
        )


class Rmerger(RtBoundingAnonymizer):
    """Merge partners are chosen to preserve relational utility."""

    name = "rmerger"
    merge_strategy = "r"


class Tmerger(RtBoundingAnonymizer):
    """Merge partners are chosen to preserve transaction utility."""

    name = "tmerger"
    merge_strategy = "t"


class RTmerger(RtBoundingAnonymizer):
    """Merge partners balance relational and transaction utility."""

    name = "rtmerger"
    merge_strategy = "rt"
