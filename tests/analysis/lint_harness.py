"""Shared helpers for the repro-lint test suite.

Each rule test writes a small source snippet into a throwaway repo layout
under ``tmp_path`` and lints it with a purpose-built manifest, so the
assertions cover the rule logic without depending on the real codebase.

Note on suppression fixtures: reason-less ``allow[...]`` comments are built
by string concatenation so the *test files themselves* stay clean when the
self-run lints ``tests/``.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.analysis.core import AnalysisReport, Finding, analyze_paths
from repro.analysis.manifest import InvariantManifest


class LintHarness:
    """Write fixture modules into a temp repo root and lint them."""

    def __init__(self, root: Path) -> None:
        self.root = root

    def write(self, relpath: str, source: str) -> Path:
        path = self.root / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
        return path

    def lint(
        self,
        *relpaths: str,
        manifest: InvariantManifest | None = None,
        select: list[str] | None = None,
    ) -> AnalysisReport:
        paths = list(relpaths) or ["."]
        return analyze_paths(
            paths,
            root=self.root,
            manifest=manifest if manifest is not None else InvariantManifest(),
            select=select,
        )

    def findings(
        self,
        relpath: str,
        source: str,
        manifest: InvariantManifest | None = None,
        select: list[str] | None = None,
    ) -> list[Finding]:
        """One-shot: write one module, lint it, return its findings."""
        self.write(relpath, source)
        return self.lint(relpath, manifest=manifest, select=select).findings


def codes(findings: list[Finding]) -> list[str]:
    return [finding.code for finding in findings]


def new_codes(findings: list[Finding]) -> list[str]:
    return [finding.code for finding in findings if finding.is_new]
