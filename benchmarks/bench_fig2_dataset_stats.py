"""FIG2 — Main screen: dataset editing and attribute histograms (Figure 2).

The main screen of SECRETA loads an RT-dataset, lets the user edit it and
plots histograms of the frequency of values in any attribute.  This benchmark
times the statistics computation behind those plots and records the histogram
series for EXPERIMENTS.md.
"""

from __future__ import annotations

from repro.datasets import (
    attribute_histogram,
    dataset_summary,
    save_csv,
    value_frequencies,
)
from repro.datasets.csv_io import write_csv_text


def test_attribute_histograms(benchmark, rt_dataset, record):
    """Histograms of every attribute (the bottom pane of Figure 2)."""

    def compute():
        return {
            attribute.name: attribute_histogram(rt_dataset, attribute.name, bins=10)
            for attribute in rt_dataset.schema
        }

    histograms = benchmark(compute)
    record(
        "fig2_histograms",
        {
            "records": len(rt_dataset),
            "attributes": list(histograms),
            "education_histogram": histograms["Education"],
            "items_top5": dict(
                sorted(value_frequencies(rt_dataset, "Items").items(),
                       key=lambda kv: -kv[1])[:5]
            ),
        },
    )
    assert sum(histograms["Education"]["counts"]) == len(rt_dataset)


def test_dataset_summary(benchmark, rt_dataset, record):
    """The per-attribute summary table of the Dataset Editor."""
    summary = benchmark(dataset_summary, rt_dataset)
    record("fig2_summary", summary)
    assert summary["records"] == len(rt_dataset)


def test_dataset_round_trip(benchmark, rt_dataset, tmp_path_factory):
    """CSV export of the (edited) dataset — the editor's store action."""
    directory = tmp_path_factory.mktemp("fig2")

    def round_trip():
        return save_csv(rt_dataset, directory / "dataset.csv")

    path = benchmark(round_trip)
    assert path.exists()


def test_csv_serialisation_throughput(benchmark, rt_dataset):
    """In-memory CSV serialisation (what every export call pays)."""
    text = benchmark(write_csv_text, rt_dataset)
    assert text.count("\n") == len(rt_dataset) + 1
