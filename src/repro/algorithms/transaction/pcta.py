"""PCTA: Privacy-Constrained Clustering-based Transaction Anonymization
(Gkoulalas-Divanis & Loukides, Transactions on Data Privacy 2012).

Like COAT, PCTA protects a set of privacy constraints (itemsets an adversary
may know) with threshold ``k``, but instead of being limited by a utility
policy it *clusters items*: starting from singleton clusters, it repeatedly
merges the pair of clusters that best helps the currently hardest constraint
while costing the least utility, until every constraint is supported by at
least ``k`` transactions or by none.  Each final cluster is published as a
single generalized item.
"""

from __future__ import annotations

from repro.algorithms.base import (
    AnonymizationResult,
    Anonymizer,
    PhaseTimer,
    apply_item_mapping,
)
from repro.datasets.dataset import Dataset
from repro.exceptions import AlgorithmError, ConfigurationError
from repro.index import InvertedIndex
from repro.metrics.transaction import utility_loss
from repro.policies.privacy import PrivacyConstraint, PrivacyPolicy
from repro.policies.utility import generalized_label


class Pcta(Anonymizer):
    """Clustering-based satisfaction of privacy constraints."""

    name = "pcta"
    data_kind = "transaction"

    def __init__(
        self,
        privacy_policy: PrivacyPolicy,
        attribute: str | None = None,
        merge_candidates: int = 20,
    ):
        if privacy_policy is None:
            raise ConfigurationError("PCTA needs a privacy policy")
        self.privacy_policy = privacy_policy
        self.attribute = attribute
        #: How many merge partners are scored per step (a performance knob;
        #: the most frequent co-occurring clusters are considered first).
        self.merge_candidates = int(merge_candidates)

    def parameters(self) -> dict:
        return {
            "k": self.privacy_policy.k,
            "privacy_constraints": len(self.privacy_policy),
            "attribute": self.attribute,
            "merge_candidates": self.merge_candidates,
        }

    # -- support bookkeeping ----------------------------------------------------
    def _constraint_support(
        self,
        constraint: PrivacyConstraint,
        cluster_of: dict[str, int],
        clusters: dict[int, frozenset[str]],
        index: InvertedIndex,
        suppressed: set[str],
    ) -> int:
        """Records that could contain every item of ``constraint``.

        Each constraint item is represented by its current cluster; the
        per-cluster posting unions are memoized by the index, so rescoring the
        constraint set each merge round costs set intersections only.
        """
        member_clusters = []
        for item in constraint.items:
            if item in suppressed:
                return 0
            cluster = clusters.get(cluster_of.get(item, -1), frozenset({item}))
            member_clusters.append(cluster - suppressed)
        return index.joint_support(member_clusters)

    # -- main ----------------------------------------------------------------------
    def anonymize(self, dataset: Dataset) -> AnonymizationResult:
        attribute = self.attribute or dataset.single_transaction_attribute()
        timer = PhaseTimer()
        k = self.privacy_policy.k

        with timer.phase("initialisation"):
            index = self._build_index(dataset, attribute)
            universe = sorted(index.universe)
            clusters: dict[int, frozenset[str]] = {
                position: frozenset({item}) for position, item in enumerate(universe)
            }
            cluster_of: dict[str, int] = {item: position for position, item in enumerate(universe)}
            suppressed: set[str] = set()

        merges = 0
        suppressed_items = 0
        with timer.phase("constraint satisfaction"):
            while True:
                violated = [
                    (self._constraint_support(c, cluster_of, clusters, index, suppressed), c)
                    for c in self.privacy_policy
                ]
                violated = [(support, c) for support, c in violated if 0 < support < k]
                if not violated:
                    break
                violated.sort(key=lambda entry: entry[0])
                support, constraint = violated[0]

                # Merge the cluster of the constraint's rarest item with the
                # candidate cluster that maximises support gain per added item.
                rarest = min(
                    (item for item in constraint.items if item not in suppressed),
                    key=index.frequency,
                )
                source_id = cluster_of[rarest]
                source = clusters[source_id]
                candidates = sorted(
                    (identifier for identifier in clusters if identifier != source_id),
                    key=lambda identifier: -index.union_size(clusters[identifier]),
                )[: self.merge_candidates]

                best_choice = None
                best_score = None
                # Size-only queries: merge scoring stays in the bitset domain,
                # no record-set materialization.
                source_key = source - suppressed
                source_support = index.union_size(source_key)
                for identifier in candidates:
                    merged_support = index.merged_union_size(
                        clusters[identifier] - suppressed, source_key
                    )
                    gain = merged_support - source_support
                    if gain <= 0:
                        continue
                    cost = len(clusters[identifier]) + len(source)
                    score = gain / cost
                    if best_score is None or score > best_score:
                        best_score = score
                        best_choice = identifier
                if best_choice is None:
                    # No merge increases the support: suppress the rarest item.
                    suppressed.add(rarest)
                    suppressed_items += 1
                    continue

                merged = clusters[source_id] | clusters[best_choice]
                clusters[source_id] = merged
                for item in clusters[best_choice]:
                    cluster_of[item] = source_id
                del clusters[best_choice]
                merges += 1

        with timer.phase("apply"):
            mapping: dict[str, str | None] = {}
            for item in universe:
                if item in suppressed:
                    mapping[item] = None
                    continue
                cluster = clusters[cluster_of[item]] - suppressed
                if len(cluster) > 1:
                    mapping[item] = generalized_label(cluster)
            anonymized = dataset.copy(name=f"{dataset.name}[pcta]")
            apply_item_mapping(anonymized, attribute, mapping)

        with timer.phase("verification"):
            residual = [
                constraint
                for constraint in self.privacy_policy
                if 0
                < self._constraint_support(
                    constraint, cluster_of, clusters, index, suppressed
                )
                < k
            ]
            if residual:
                raise AlgorithmError(
                    f"PCTA failed to satisfy {len(residual)} privacy constraints"
                )

        final_clusters = {
            identifier: cluster - suppressed
            for identifier, cluster in clusters.items()
            if len(cluster - suppressed) > 1
        }
        statistics = {
            "merges": merges,
            "generalized_clusters": len(final_clusters),
            "largest_cluster": max((len(c) for c in final_clusters.values()), default=1),
            "suppressed_items": suppressed_items,
            "utility_loss": utility_loss(dataset, anonymized, attribute=attribute),
        }
        return AnonymizationResult(
            dataset=anonymized,
            algorithm=self.name,
            parameters=self.parameters(),
            runtime_seconds=timer.total,
            phase_seconds=timer.phases,
            statistics=statistics,
        )
