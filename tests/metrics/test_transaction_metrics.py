"""Tests for transaction information-loss metrics."""

import pytest

from repro.datasets import Attribute, Dataset, Schema
from repro.exceptions import DatasetError
from repro.metrics import (
    average_item_frequency_error,
    estimated_item_frequencies,
    item_frequency_error,
    item_generalization_cost,
    suppression_ratio,
    utility_loss,
)


@pytest.fixture
def original(simple_transactions):
    return simple_transactions


def rewrite_items(dataset, mapping):
    """Apply an item -> label (or None for suppression) mapping to every record."""
    anonymized = dataset.copy()
    for index, record in enumerate(dataset):
        new_items = []
        for item in record["Items"]:
            label = mapping.get(item, item)
            if label is not None:
                new_items.append(label)
        anonymized.set_value(index, "Items", new_items)
    return anonymized


class TestItemGeneralizationCost:
    def test_original_item_costs_nothing(self):
        assert item_generalization_cost("a", universe_size=5) == 0.0

    def test_group_cost_scales_with_size(self):
        assert item_generalization_cost("(a,b)", universe_size=5) == pytest.approx(0.25)
        assert item_generalization_cost("(a,b,c,d,e)", universe_size=5) == pytest.approx(1.0)

    def test_degenerate_universe(self):
        assert item_generalization_cost("(a,b)", universe_size=1) == 0.0

    def test_root_label_costs_one_without_hierarchy(self):
        # Regression: on the hierarchy-free COAT/PCTA path the root label "*"
        # used to resolve to an empty set and be charged 0 instead of 1.
        assert item_generalization_cost(
            "*", universe_size=5, universe={"a", "b", "c", "d", "e"}
        ) == pytest.approx(1.0)


class TestUtilityLoss:
    def test_identity_has_zero_loss(self, original):
        assert utility_loss(original, original) == pytest.approx(0.0)

    def test_full_suppression_has_full_loss(self, original):
        empty = rewrite_items(original, {item: None for item in original.item_universe()})
        assert utility_loss(original, empty) == pytest.approx(1.0)

    def test_generalization_loss_between_zero_and_one(self, original):
        generalized = rewrite_items(original, {"a": "(a,b)", "b": "(a,b)"})
        loss = utility_loss(original, generalized)
        assert 0.0 < loss < 1.0

    def test_generalization_cheaper_than_suppression(self, original):
        generalized = rewrite_items(original, {"a": "(a,b)", "b": "(a,b)"})
        suppressed = rewrite_items(original, {"a": None, "b": None})
        assert utility_loss(original, generalized) < utility_loss(original, suppressed)

    def test_misaligned_datasets_rejected(self, original):
        shorter = original.subset(range(len(original) - 1))
        with pytest.raises(DatasetError):
            utility_loss(original, shorter)

    def test_root_generalization_has_full_loss_without_hierarchy(self, original):
        # Regression: generalizing every item to the root "*" destroys all
        # utility, so UL must be 1.0 even when no hierarchy is supplied (the
        # COAT/PCTA path).  The root label used to be charged 0.
        rooted = rewrite_items(
            original, {item: "*" for item in original.item_universe()}
        )
        assert utility_loss(original, rooted) == pytest.approx(1.0)

    def test_universe_less_interpreter_rejected(self, original):
        from repro.index import interpreter_for

        with pytest.raises(DatasetError):
            utility_loss(original, original, interpreter=interpreter_for(None))

    def test_root_generalization_not_counted_as_suppression(self, original):
        rooted = rewrite_items(
            original, {item: "*" for item in original.item_universe()}
        )
        assert suppression_ratio(original, rooted) == 0.0


class TestSuppressionRatio:
    def test_zero_when_everything_is_kept(self, original):
        assert suppression_ratio(original, original) == 0.0

    def test_counts_missing_occurrences(self, original):
        anonymized = rewrite_items(original, {"a": None})
        total = sum(len(record["Items"]) for record in original)
        a_occurrences = sum(1 for record in original if "a" in record["Items"])
        assert suppression_ratio(original, anonymized) == pytest.approx(
            a_occurrences / total
        )

    def test_generalization_is_not_suppression(self, original):
        anonymized = rewrite_items(original, {"a": "(a,b)"})
        assert suppression_ratio(original, anonymized) == 0.0


class TestItemFrequencyError:
    def test_zero_error_for_identity(self, original):
        errors = item_frequency_error(original, original)
        assert all(error == pytest.approx(0.0) for error in errors.values())
        assert average_item_frequency_error(original, original) == pytest.approx(0.0)

    def test_estimated_frequencies_split_generalized_support(self):
        schema = Schema([Attribute.transaction("Items")])
        original = Dataset(schema, [{"Items": ["a"]}, {"Items": ["b"]}])
        anonymized = Dataset(schema, [{"Items": ["(a,b)"]}, {"Items": ["(a,b)"]}])
        estimates = estimated_item_frequencies(anonymized, {"a", "b"})
        assert estimates["a"] == pytest.approx(1.0)
        assert estimates["b"] == pytest.approx(1.0)
        errors = item_frequency_error(original, anonymized)
        assert all(error == pytest.approx(0.0) for error in errors.values())

    def test_error_grows_with_suppression(self, original):
        suppressed = rewrite_items(original, {"a": None})
        errors = item_frequency_error(original, suppressed)
        assert errors["a"] == pytest.approx(1.0)
        assert average_item_frequency_error(original, suppressed) > 0.0
