"""``repro.analysis`` — the project's AST-based invariant linter (repro-lint).

The columnar/shared-memory/cache subsystems built in PRs 1-5 rest on
conventions that code review alone used to enforce: every shared-memory
segment must unlink on every exit path, every dataset mutation must
invalidate the columnar cache, every vectorized kernel must keep a scalar
equivalence reference, hot paths must not regress to per-record Python
loops, exceptions must stay typed, and anything shipped through the worker
pool must stay picklable.  This package turns each of those disciplines into
a mechanical check (one ``REP0xx`` rule each) that runs over the source tree
as a CI gate:

``python -m repro.analysis [paths...]``

Findings can be silenced three ways, in order of preference: fix the code,
suppress one line with ``# repro: allow[REP0xx] -- reason`` (the reason is
mandatory), or grandfather a pre-existing finding into the committed
baseline file (``.repro-lint-baseline.json``) with a reason.  See
``docs/static-analysis.md`` for the rule catalogue and etiquette, and
``python -m repro.analysis --explain REP001`` for any single rule.
"""

from __future__ import annotations

from repro.analysis.baseline import Baseline
from repro.analysis.core import (
    AnalysisReport,
    Finding,
    ModuleContext,
    Project,
    Rule,
    all_rules,
    analyze_paths,
    rule_by_code,
)
from repro.analysis.manifest import InvariantManifest

__all__ = [
    "AnalysisReport",
    "Baseline",
    "Finding",
    "InvariantManifest",
    "ModuleContext",
    "Project",
    "Rule",
    "all_rules",
    "analyze_paths",
    "rule_by_code",
]
