"""Tests for the shared algorithm infrastructure."""

import time

import pytest

from repro.algorithms.base import (
    AnonymizationResult,
    PhaseTimer,
    apply_item_mapping,
    apply_value_mapping,
    relational_quasi_identifiers,
    require_hierarchies,
    validate_k,
)
from repro.exceptions import ConfigurationError
from repro.hierarchy import build_categorical_hierarchy


class TestPhaseTimer:
    def test_phases_accumulate(self):
        timer = PhaseTimer()
        with timer.phase("a"):
            time.sleep(0.01)
        with timer.phase("a"):
            pass
        with timer.phase("b"):
            pass
        assert set(timer.phases) == {"a", "b"}
        assert timer.phases["a"] >= 0.01
        assert timer.total >= timer.phases["a"]


class TestResultSummary:
    def test_summary_flattens_parameters_and_statistics(self, toy_dataset):
        result = AnonymizationResult(
            dataset=toy_dataset,
            algorithm="demo",
            parameters={"k": 3},
            runtime_seconds=0.5,
            statistics={"gcp": 0.1},
        )
        summary = result.summary()
        assert summary["algorithm"] == "demo"
        assert summary["param_k"] == 3
        assert summary["gcp"] == 0.1
        assert summary["records"] == len(toy_dataset)


class TestHelpers:
    def test_relational_quasi_identifiers_excludes_sensitive(self, simple_relational):
        assert relational_quasi_identifiers(simple_relational) == ["Age", "Zip"]

    def test_require_hierarchies(self):
        hierarchy = build_categorical_hierarchy(["a", "b"], fanout=2)
        require_hierarchies(["X"], {"X": hierarchy}, "algo")
        with pytest.raises(ConfigurationError):
            require_hierarchies(["X", "Y"], {"X": hierarchy}, "algo")

    def test_validate_k(self):
        validate_k(2, 10, "algo")
        with pytest.raises(ConfigurationError):
            validate_k(1, 10, "algo")
        with pytest.raises(ConfigurationError):
            validate_k(11, 10, "algo")

    def test_apply_value_mapping(self, simple_relational):
        apply_value_mapping(simple_relational, "Zip", {"4370": "43**"})
        assert simple_relational[0]["Zip"] == "43**"
        assert simple_relational[2]["Zip"] == "4371"

    def test_apply_item_mapping_suppresses_and_deduplicates(self, simple_transactions):
        apply_item_mapping(
            simple_transactions, "Items", {"a": "(a,b)", "b": "(a,b)", "e": None}
        )
        assert simple_transactions[0]["Items"] == frozenset({"(a,b)"})
        assert "e" not in simple_transactions[5]["Items"]
