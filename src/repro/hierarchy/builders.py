"""Automatic construction of generalization hierarchies.

SECRETA's Policy Specification Module "invokes algorithms that automatically
generate hierarchies" when the data publisher does not supply them.  The
builders here implement the standard constructions used in the literature:

* numeric attributes — a balanced interval hierarchy obtained by recursively
  splitting the sorted domain into ``fanout`` equally sized groups
  (leaves are the distinct values, internal nodes are ``[low-high]`` labels),
* categorical attributes and transaction item domains — a balanced fan-out
  tree over the sorted distinct values (Terrovitis-style item hierarchies).

Interval labels carry their numeric bounds so information-loss metrics can
measure the width of a generalized numeric value without re-parsing labels.
"""

from __future__ import annotations

import re
from typing import Iterable, Sequence

import numpy as np

from repro.datasets.dataset import Dataset
from repro.exceptions import HierarchyError
from repro.hierarchy.hierarchy import Hierarchy, HierarchyBuilder

#: Label of the root ("anything") node used by generated hierarchies.
ROOT_LABEL = "*"

_INTERVAL_PATTERN = re.compile(
    r"^\[\s*(-?\d+(?:\.\d+)?)\s*-\s*(-?\d+(?:\.\d+)?)\s*\]$"
)


def format_interval(low: float, high: float) -> str:
    """Canonical label for the closed interval ``[low-high]``."""

    def fmt(value: float) -> str:
        value = float(value)
        return str(int(value)) if value.is_integer() else str(value)

    return f"[{fmt(low)}-{fmt(high)}]"


def parse_interval(label: str) -> tuple[float, float] | None:
    """Bounds of an interval label, or ``None`` if the label is not one."""
    match = _INTERVAL_PATTERN.match(str(label).strip())
    if not match:
        return None
    low, high = float(match.group(1)), float(match.group(2))
    return (low, high) if low <= high else (high, low)


def _split_groups(values: Sequence, fanout: int) -> list[list]:
    """Split ``values`` into at most ``fanout`` contiguous, balanced groups."""
    groups = np.array_split(np.arange(len(values)), min(fanout, len(values)))
    return [[values[i] for i in group] for group in groups if len(group)]


def build_categorical_hierarchy(
    values: Iterable[str], fanout: int = 3, attribute: str = ""
) -> Hierarchy:
    """Balanced fan-out hierarchy over a categorical domain.

    Distinct values are sorted and recursively split top-down into at most
    ``fanout`` groups per node until groups are small enough to hold the
    leaves directly.  Internal labels take the form ``{first..last}``
    describing the span of leaves they cover; the root is ``*``.
    """
    if fanout < 2:
        raise HierarchyError("fanout must be at least 2")
    leaves = sorted({str(v) for v in values if v is not None})
    if not leaves:
        raise HierarchyError(f"cannot build a hierarchy for {attribute!r}: no values")

    builder = HierarchyBuilder(ROOT_LABEL, attribute=attribute)

    def attach(group: list[str], parent: str) -> None:
        if len(group) <= fanout:
            for leaf in group:
                builder.add(leaf, parent)
            return
        for subgroup in _split_groups(group, fanout):
            if len(subgroup) == 1:
                builder.add(subgroup[0], parent)
                continue
            label = f"{{{subgroup[0]}..{subgroup[-1]}}}"
            builder.add(label, parent)
            attach(subgroup, label)

    attach(leaves, ROOT_LABEL)
    return builder.build()


def build_numeric_hierarchy(
    values: Iterable[float], fanout: int = 4, attribute: str = ""
) -> Hierarchy:
    """Balanced interval hierarchy over a numeric domain.

    Leaves are the distinct values (as strings); each internal node is the
    closed interval spanning its descendants, labelled ``[low-high]``; the
    root is ``*`` and carries the full domain interval.
    """
    if fanout < 2:
        raise HierarchyError("fanout must be at least 2")
    numbers = sorted({float(v) for v in values if v is not None})
    if not numbers:
        raise HierarchyError(f"cannot build a hierarchy for {attribute!r}: no values")

    def leaf_label(value: float) -> str:
        return str(int(value)) if value.is_integer() else str(value)

    builder = HierarchyBuilder(ROOT_LABEL, attribute=attribute)
    builder.set_interval(ROOT_LABEL, numbers[0], numbers[-1])

    def attach(group: list[float], parent: str) -> None:
        if len(group) <= fanout:
            for value in group:
                label = leaf_label(value)
                builder.add(label, parent)
                builder.set_interval(label, value, value)
            return
        for subgroup in _split_groups(group, fanout):
            if len(subgroup) == 1:
                label = leaf_label(subgroup[0])
                builder.add(label, parent)
                builder.set_interval(label, subgroup[0], subgroup[0])
                continue
            label = format_interval(subgroup[0], subgroup[-1])
            if label == parent:
                # Degenerate case: identical span as the parent; attach leaves.
                for value in subgroup:
                    leaf = leaf_label(value)
                    builder.add(leaf, parent)
                    builder.set_interval(leaf, value, value)
                continue
            builder.add(label, parent)
            builder.set_interval(label, subgroup[0], subgroup[-1])
            attach(subgroup, label)

    attach(numbers, ROOT_LABEL)
    return builder.build()


def build_item_hierarchy(
    items: Iterable[str], fanout: int = 4, attribute: str = ""
) -> Hierarchy:
    """Balanced fan-out hierarchy over a transaction item universe.

    This is the construction used by Terrovitis et al. for set-valued data:
    items are sorted and grouped into generalized items of increasing span,
    with ``*`` (ALL items) as the root.
    """
    return build_categorical_hierarchy(items, fanout=fanout, attribute=attribute)


def build_hierarchies_for_dataset(
    dataset: Dataset,
    fanout: int = 4,
    numeric_fanout: int | None = None,
    attributes: Sequence[str] | None = None,
) -> dict[str, Hierarchy]:
    """Automatically generate a hierarchy for each (quasi-identifier) attribute.

    ``attributes`` restricts generation to the given names; by default all
    quasi-identifier attributes (relational and transaction) are covered.
    """
    numeric_fanout = numeric_fanout or fanout
    if attributes is None:
        targets = [a for a in dataset.schema if a.quasi_identifier]
    else:
        targets = [dataset.schema[name] for name in attributes]

    hierarchies: dict[str, Hierarchy] = {}
    for attribute in targets:
        name = attribute.name
        if attribute.is_numeric:
            hierarchies[name] = build_numeric_hierarchy(
                (v for v in dataset.column(name) if v is not None),
                fanout=numeric_fanout,
                attribute=name,
            )
        elif attribute.is_categorical:
            hierarchies[name] = build_categorical_hierarchy(
                (v for v in dataset.column(name) if v is not None),
                fanout=fanout,
                attribute=name,
            )
        else:
            hierarchies[name] = build_item_hierarchy(
                dataset.item_universe(name), fanout=fanout, attribute=name
            )
    return hierarchies


def interval_bounds(hierarchy: Hierarchy | None, label: str) -> tuple[float, float] | None:
    """Numeric bounds of a generalized value.

    Resolution order: the node's stored interval (if the label belongs to the
    hierarchy), the parsed ``[low-high]`` label, or the label itself as a
    single number.  Returns ``None`` for categorical labels.
    """
    if hierarchy is not None and label in hierarchy:
        node = hierarchy.node(label)
        if node.interval is not None:
            return node.interval
    parsed = parse_interval(label)
    if parsed is not None:
        return parsed
    try:
        value = float(label)
    except (TypeError, ValueError):
        return None
    return (value, value)
