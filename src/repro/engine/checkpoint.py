"""Durable checkpointing of experiment task DAGs: content-addressed resume.

PR 7 made a single run fault tolerant; this module makes a *sweep* durable.
An interrupted :class:`~repro.engine.experiment.VaryingParameterExperiment`
or :class:`~repro.engine.comparator.MethodComparator` used to lose every
completed cell to a SIGKILL, OOM or power loss — now each completed task is
persisted in a :class:`CheckpointStore` and a re-run recomputes only what is
missing.  The hard part is doing this *robustly*, and the design leans on
three classic durability disciplines:

* **content-addressed keys** — a cell's key is a :func:`stable_digest` of
  everything that determines its value: the dataset's content fingerprint
  (:meth:`~repro.datasets.dataset.Dataset.fingerprint`), the
  hierarchies/policies/workload, the configuration, the sweep coordinates
  and a key-schema version.  Any input change changes the key, so a stale
  cell can never be served — it is simply never looked up again.  The
  digest canonicalises hash-randomised containers (``set``/``frozenset``/
  ``dict``) so keys are identical across processes and Python invocations
  regardless of ``PYTHONHASHSEED``.
* **atomic, checksummed records** — cells are written by
  :func:`atomic_write_bytes` (write to a temp file in the same directory,
  flush, ``fsync``, ``os.replace``, directory ``fsync``) and framed with a
  magic + version + length + CRC32C header (:func:`encode_frame`).  A torn,
  truncated or bit-rotted record fails the frame checks on load and is
  treated as *missing*: the task recomputes and the corruption is reported
  as a structured warning on the :class:`~repro.engine.resilience.RunReport`
  — never a crash, never a silently wrong result.
* **a store format version** — the store directory carries a ``FORMAT``
  header file; a store written by an incompatible layout is rebuilt (its
  cells dropped) rather than misread.

Execution threads through :func:`run_checkpointed`, which
:func:`~repro.engine.runner.run_many` delegates to when a store is passed:
hits are served from disk (and re-validated by the policy's result
validator when one exists), misses run through the ordinary resilient
engine wrapped in a :class:`_StoringWorker` that persists every result the
moment it exists — so a crash one task later costs one task, not the sweep.

See ``docs/robustness.md`` ("Checkpoint & resume") for the store layout and
the corruption semantics, and :class:`~repro.engine.faults.CheckpointFaults`
for the chaos-suite fault points (kill-after-store, torn-write truncation).
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import pickle
import struct
import tempfile
import threading
import time
import weakref
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, Iterator, Sequence

import numpy as np

from repro.datasets.dataset import Dataset
from repro.engine.faults import CheckpointFaults, Corrupted
from repro.exceptions import CheckpointError
from repro.hierarchy.hierarchy import Hierarchy
from repro.policies.privacy import PrivacyPolicy
from repro.policies.utility import UtilityPolicy
from repro.queries.workload import QueryWorkload

if TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from repro.engine.config import AnonymizationConfig
    from repro.engine.experiment import ParameterSweep
    from repro.engine.pool import WorkerPool
    from repro.engine.resilience import ExecutionPolicy, RunReport
    from repro.engine.resources import ExperimentResources

# ---------------------------------------------------------------------------
# CRC32C (Castagnoli), slicing-by-8.
#
# ``zlib.crc32`` is the IEEE polynomial; storage systems standardised on
# Castagnoli (0x1EDC6F41, reflected 0x82F63B78) for its better burst-error
# detection, and this store follows them.  No C extension is available here,
# so the kernel is the classic slicing-by-8 table walk: eight lookup tables,
# one 8-byte chunk per loop iteration — slow compared to hardware CRC but
# comfortably faster than pickling the payloads it guards.

_CRC_POLYNOMIAL = 0x82F63B78


def _crc32c_tables() -> tuple[tuple[int, ...], ...]:
    base = []
    for index in range(256):
        crc = index
        for _ in range(8):
            crc = (crc >> 1) ^ _CRC_POLYNOMIAL if crc & 1 else crc >> 1
        base.append(crc)
    tables = [tuple(base)]
    for _ in range(7):
        previous = tables[-1]
        tables.append(
            tuple((value >> 8) ^ base[value & 0xFF] for value in previous)
        )
    return tuple(tables)


_CRC_TABLES = _crc32c_tables()


def crc32c(data: bytes, crc: int = 0) -> int:
    """CRC32C (Castagnoli) of ``data``, continuing from ``crc``."""
    t0, t1, t2, t3, t4, t5, t6, t7 = _CRC_TABLES
    crc ^= 0xFFFFFFFF
    view = memoryview(data)
    length = len(view)
    bulk = length - (length % 8)
    position = 0
    while position < bulk:
        low = int.from_bytes(view[position : position + 4], "little") ^ crc
        crc = (
            t7[low & 0xFF]
            ^ t6[(low >> 8) & 0xFF]
            ^ t5[(low >> 16) & 0xFF]
            ^ t4[(low >> 24) & 0xFF]
            ^ t3[view[position + 4]]
            ^ t2[view[position + 5]]
            ^ t1[view[position + 6]]
            ^ t0[view[position + 7]]
        )
        position += 8
    table = t0
    while position < length:
        crc = (crc >> 8) ^ table[(crc ^ view[position]) & 0xFF]
        position += 1
    return crc ^ 0xFFFFFFFF


# ---------------------------------------------------------------------------
# Durable writes.


def atomic_write_bytes(path: Path | str, data: bytes) -> None:
    """Write ``data`` to ``path`` durably: temp file → fsync → atomic rename.

    The temp file lives in the target directory so the ``os.replace`` is a
    same-filesystem atomic rename; the directory itself is fsynced afterwards
    so the rename survives a power loss.  Readers therefore see either the
    old content or the new content, never a torn mixture — which is exactly
    the property the REP008 lint rule pins on every store write.
    """
    target = Path(path)
    directory = target.parent
    directory.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        prefix=target.name + ".", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, target)
    except BaseException:
        _unlink_quietly(tmp_name)
        raise
    _fsync_directory(directory)


def _unlink_quietly(path: str) -> None:
    """Best-effort temp-file removal on a failed write (never raises)."""
    try:
        os.unlink(path)
    except OSError:  # pragma: no cover - cleanup of an already-failed write
        pass


def _fsync_directory(directory: Path) -> None:
    """Flush a directory entry to disk where the platform supports it."""
    flag = getattr(os, "O_DIRECTORY", None)
    if flag is None:  # pragma: no cover - non-POSIX platforms
        return
    try:
        fd = os.open(directory, os.O_RDONLY | flag)
    except OSError:  # pragma: no cover - e.g. permissions; rename still holds
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - fsync unsupported on directory fds
        pass
    finally:
        os.close(fd)


# ---------------------------------------------------------------------------
# Record framing: magic + version + CRC32C + length, then the payload.

_MAGIC = b"RPCK"

#: Bump when the frame layout or the cell payload encoding changes
#: incompatibly; stores written under another version are rebuilt.
FORMAT_VERSION = 1

_HEADER = struct.Struct("<4sIIQ")  # magic, format version, crc32c, length


def _payload_check(payload: bytes) -> int:
    """The frame's integrity check: CRC32C over the payload's BLAKE2b digest.

    Cell payloads are multi-megabyte pickles, and the table-driven Python
    CRC runs at single-digit MiB/s — checksumming them directly would cost
    more than computing many of the cells.  Hashing the payload with C-speed
    BLAKE2b first and CRCing the 32-byte digest keeps the frame's detection
    strength (any payload change flips the digest, hence the CRC) at >700
    MiB/s, which is what keeps the cold-run overhead inside the benchmark's
    5% budget (``benchmarks/bench_resume.py``).
    """
    return crc32c(hashlib.blake2b(payload, digest_size=32).digest())


def encode_frame(payload: bytes) -> bytes:
    """Frame ``payload`` with the magic/version/CRC32C/length header."""
    return (
        _HEADER.pack(_MAGIC, FORMAT_VERSION, _payload_check(payload), len(payload))
        + payload
    )


def decode_frame(blob: bytes) -> bytes:
    """The payload of a framed record; :class:`CheckpointError` on any damage.

    Every failure mode maps to one message: a record too short to hold the
    header (torn write), a wrong magic (not a checkpoint record), a wrong
    version (stale format), a length mismatch (truncation or trailing
    garbage) and a CRC mismatch (bit rot).
    """
    if len(blob) < _HEADER.size:
        raise CheckpointError(
            f"record truncated: {len(blob)} bytes is shorter than the "
            f"{_HEADER.size}-byte frame header"
        )
    magic, version, checksum, length = _HEADER.unpack_from(blob)
    if magic != _MAGIC:
        raise CheckpointError(f"bad record magic {magic!r}")
    if version != FORMAT_VERSION:
        raise CheckpointError(
            f"record format version {version} does not match {FORMAT_VERSION}"
        )
    payload = blob[_HEADER.size :]
    if len(payload) != length:
        raise CheckpointError(
            f"record length mismatch: header says {length} bytes, "
            f"found {len(payload)}"
        )
    actual = _payload_check(payload)
    if actual != checksum:
        raise CheckpointError(
            f"record checksum mismatch: header says {checksum:#010x}, "
            f"payload hashes to {actual:#010x}"
        )
    return payload


# ---------------------------------------------------------------------------
# Stable content digests (the key half of content addressing).

#: Bump when the *meaning* of a key changes (new inputs folded in, different
#: resource semantics) so old cells are orphaned instead of wrongly reused.
#: Version 2: the attack-simulation flag joined the key inputs (PR 9).
KEY_SCHEMA_VERSION = 2

_SEPARATOR = b"\x1f"


def _tagged(tag: bytes, *chunks: bytes) -> Iterator[bytes]:
    yield tag
    for chunk in chunks:
        yield struct.pack("<Q", len(chunk))
        yield chunk


def _encoded(value: object) -> bytes:
    return b"".join(_encode(value))


def _encode(value: object) -> Iterator[bytes]:
    """Canonical byte encoding: equal values encode equally, across processes.

    ``pickle`` is *not* stable enough to key on — ``set``/``frozenset``
    iteration order (and therefore their pickles) depends on
    ``PYTHONHASHSEED`` — so this encoder sorts hash-randomised containers by
    their own encoded bytes and tags every value with its type, keeping
    ``25``, ``25.0`` and ``"25"`` apart.  Unknown types raise
    :class:`~repro.exceptions.CheckpointError` instead of hashing something
    unstable.
    """
    if value is None:
        yield b"N"
    elif isinstance(value, bool):
        yield b"B1" if value else b"B0"
    elif isinstance(value, int):
        yield from _tagged(b"I", str(value).encode())
    elif isinstance(value, float):
        yield b"F" + struct.pack(">d", value)
    elif isinstance(value, str):
        yield from _tagged(b"S", value.encode("utf-8"))
    elif isinstance(value, (bytes, bytearray)):
        yield from _tagged(b"Y", bytes(value))
    elif isinstance(value, np.generic):
        yield from _encode(value.item())
    elif isinstance(value, np.ndarray):
        yield from _tagged(
            b"A",
            value.dtype.str.encode(),
            repr(value.shape).encode(),
            np.ascontiguousarray(value).tobytes(),
        )
    elif isinstance(value, (list, tuple)):
        yield b"L(" if isinstance(value, list) else b"T("
        for element in value:
            yield from _encode(element)
        yield b")"
    elif isinstance(value, dict):
        yield b"D("
        for _, encoded_key, encoded_value in sorted(
            (_encoded(key), _encoded(key), _encoded(item))
            for key, item in value.items()
        ):
            yield encoded_key
            yield encoded_value
        yield b")"
    elif isinstance(value, (set, frozenset)):
        yield b"E("
        for encoded in sorted(_encoded(element) for element in value):
            yield encoded
        yield b")"
    elif isinstance(value, Dataset):
        yield from _tagged(b"DS", value.fingerprint().encode())
    elif isinstance(value, Hierarchy):
        yield _encoded_hierarchy(value)
    elif isinstance(value, PrivacyPolicy):
        yield from _tagged(b"PP")
        yield from _encode(
            (value.k, [constraint.items for constraint in value.constraints])
        )
    elif isinstance(value, UtilityPolicy):
        yield from _tagged(b"UP")
        yield from _encode([constraint.items for constraint in value.constraints])
    elif isinstance(value, QueryWorkload):
        yield from _tagged(b"QW", value.name.encode())
        yield from _encode(value.queries)
    elif dataclasses.is_dataclass(value) and not isinstance(value, type):
        yield from _tagged(
            b"C", f"{type(value).__module__}.{type(value).__qualname__}".encode()
        )
        for field in dataclasses.fields(value):
            yield from _tagged(b"f", field.name.encode())
            yield from _encode(getattr(value, field.name))
        yield b")"
    else:
        raise CheckpointError(
            f"cannot build a stable digest for {type(value).__module__}."
            f"{type(value).__qualname__}; teach repro.engine.checkpoint._encode "
            f"a canonical encoding before keying checkpoints on it"
        )


def _encode_hierarchy(hierarchy: Hierarchy) -> Iterator[bytes]:
    """A hierarchy as its sorted ``(label, parent, interval, children)`` map.

    Node identity, parentage, interval bounds and sibling order fully
    determine generalization behaviour; ``_nodes`` insertion order does not,
    so the map is sorted by label.
    """
    yield from _tagged(b"H", hierarchy.attribute.encode())
    entries = []
    for label in sorted(hierarchy.labels):
        node = hierarchy.node(label)
        entries.append(
            (
                label,
                node.parent.label if node.parent is not None else None,
                node.interval,
                tuple(child.label for child in node.children),
            )
        )
    yield from _encode(entries)


#: Hierarchies are frozen after construction (``Hierarchy.__init__`` indexes
#: the whole node tree and no mutator API exists), so their canonical
#: encoding can be memoised by object identity.  Key derivation encodes the
#: same hierarchies once per task otherwise — measurable against the
#: checkpoint overhead budget on large domains.
_HIERARCHY_ENCODINGS: "weakref.WeakKeyDictionary[Hierarchy, bytes]" = (
    weakref.WeakKeyDictionary()
)


def _encoded_hierarchy(hierarchy: Hierarchy) -> bytes:
    try:
        return _HIERARCHY_ENCODINGS[hierarchy]
    except KeyError:
        encoded = b"".join(_encode_hierarchy(hierarchy))
        _HIERARCHY_ENCODINGS[hierarchy] = encoded
        return encoded


def stable_digest(value: object) -> str:
    """Hex digest of ``value``'s canonical encoding (process-independent)."""
    digest = hashlib.blake2b(digest_size=20)
    for chunk in _encode(value):
        digest.update(chunk)
    return digest.hexdigest()


def task_key(kind: str, *parts: object) -> str:
    """A checkpoint-cell key: ``kind`` plus everything the result depends on."""
    return stable_digest((KEY_SCHEMA_VERSION, kind) + parts)


def sweep_point_keys(
    dataset: Dataset,
    resources: "ExperimentResources",
    verify_privacy: bool,
    universe_mode: str,
    config: "AnonymizationConfig",
    sweep: "ParameterSweep",
    simulate_attacks: bool = False,
) -> list[str]:
    """One key per sweep point of a varying-parameter experiment.

    Computed in the orchestrating process from the *real* dataset (never a
    shared-memory manifest), after the original-domain snapshot has been
    captured — so a resumed run, which captures the identical snapshot,
    derives the identical keys.
    """
    return [
        task_key(
            "sweep-point",
            dataset.fingerprint(),
            resources,
            bool(verify_privacy),
            universe_mode,
            bool(simulate_attacks),
            config,
            sweep.parameter,
            value,
        )
        for value in sweep.values
    ]


def configuration_keys(
    dataset: Dataset,
    resources: "ExperimentResources",
    verify_privacy: bool,
    universe_mode: str,
    configurations: Sequence["AnonymizationConfig"],
    sweep: "ParameterSweep",
    simulate_attacks: bool = False,
) -> list[str]:
    """One key per configuration of a comparison (whole-sweep granularity)."""
    return [
        task_key(
            "configuration",
            dataset.fingerprint(),
            resources,
            bool(verify_privacy),
            universe_mode,
            bool(simulate_attacks),
            config,
            sweep,
        )
        for config in configurations
    ]


# ---------------------------------------------------------------------------
# The store.


@dataclass(frozen=True)
class CheckpointOutcome:
    """What one cell lookup found: a hit, a miss, or detected corruption."""

    status: str  # "hit" | "miss" | "corrupt"
    value: Any = None
    detail: str = ""


class CheckpointStore:
    """A directory of durable, checksummed, content-addressed task cells.

    Layout: ``<directory>/FORMAT`` (the store-format header) and
    ``<directory>/cells/<key>.ckpt`` (one framed pickle per completed task).
    A ``FORMAT`` mismatch — stale layout or damaged header — rebuilds the
    store: all cells are dropped and recomputed rather than misread.

    The store is picklable (it travels inside comparator task tuples so
    worker processes persist their own inner sweep points); only the
    directory path and the fault plan ship, never open file handles.

    ``faults`` is the chaos-suite hook
    (:class:`~repro.engine.faults.CheckpointFaults`): deterministic
    kill-after-store and truncate-after-store fault points.  ``None`` in
    production.
    """

    FORMAT_FILE = "FORMAT"
    CELLS_DIR = "cells"
    CELL_SUFFIX = ".ckpt"

    def __init__(
        self,
        directory: str | Path,
        faults: CheckpointFaults | None = None,
    ) -> None:
        self._directory = Path(directory)
        self._faults = faults
        self._lock = threading.Lock()
        self._stores = 0
        self._seconds_storing = 0.0
        self._seconds_loading = 0.0
        self._prepared = False

    # -- pickling (the store travels into worker processes) ------------------
    def __getstate__(self) -> tuple[str, CheckpointFaults | None]:
        return (str(self._directory), self._faults)

    def __setstate__(self, state: tuple[str, CheckpointFaults | None]) -> None:
        directory, faults = state
        self.__init__(directory, faults=faults)  # type: ignore[misc]

    # -- introspection -------------------------------------------------------
    @property
    def directory(self) -> Path:
        return self._directory

    @property
    def stores(self) -> int:
        """Cells written through this instance (this process, this life)."""
        return self._stores

    @property
    def stats(self) -> dict[str, float]:
        """Durability cost accounting for this instance's lifetime.

        ``seconds_storing`` covers pickling, framing and the fsync'd atomic
        write of every :meth:`store`; ``seconds_loading`` covers the read,
        frame verification and unpickling of every :meth:`load`.  Together
        they are the wall-clock this process spent on checkpoint machinery —
        the number the cold-overhead budget is asserted on
        (``benchmarks/bench_resume.py``), measured where it accrues instead
        of through end-to-end differencing that machine drift can swamp.
        """
        with self._lock:
            return {
                "stores": float(self._stores),
                "seconds_storing": self._seconds_storing,
                "seconds_loading": self._seconds_loading,
            }

    def cell_path(self, key: str) -> Path:
        if not key or any(char not in "0123456789abcdef" for char in key):
            raise CheckpointError(
                f"malformed checkpoint key {key!r}: keys are lowercase hex "
                f"digests (see stable_digest)"
            )
        return self._directory / self.CELLS_DIR / f"{key}{self.CELL_SUFFIX}"

    def keys(self) -> list[str]:
        """Keys of every cell currently on disk (sorted)."""
        cells = self._directory / self.CELLS_DIR
        if not cells.is_dir():
            return []
        return sorted(
            path.name[: -len(self.CELL_SUFFIX)]
            for path in cells.iterdir()
            if path.name.endswith(self.CELL_SUFFIX)
        )

    def __repr__(self) -> str:
        return f"CheckpointStore(directory={str(self._directory)!r})"

    # -- format guard --------------------------------------------------------
    def _format_header(self) -> bytes:
        return _MAGIC + struct.pack("<I", FORMAT_VERSION) + b"\n"

    def _prepare(self) -> None:
        """Create the layout; rebuild the store on a format mismatch."""
        if self._prepared:
            return
        self._directory.mkdir(parents=True, exist_ok=True)
        format_path = self._directory / self.FORMAT_FILE
        expected = self._format_header()
        try:
            current: bytes | None = format_path.read_bytes()
        except FileNotFoundError:
            current = None
        if current != expected:
            if current is not None:
                self._drop_cells()
            atomic_write_bytes(format_path, expected)
        (self._directory / self.CELLS_DIR).mkdir(exist_ok=True)
        self._prepared = True

    def _drop_cells(self) -> None:
        """Delete every cell (stale-format rebuild); keys stay content-true."""
        cells = self._directory / self.CELLS_DIR
        if not cells.is_dir():
            return
        for path in cells.iterdir():
            if path.name.endswith(self.CELL_SUFFIX):
                try:
                    path.unlink()
                except FileNotFoundError:  # pragma: no cover - raced unlink
                    continue

    # -- the cell protocol ---------------------------------------------------
    def load(self, key: str) -> CheckpointOutcome:
        """Look one cell up; damage degrades to a miss with a reason.

        Returns a ``"hit"`` with the unpickled value, a ``"miss"`` when the
        cell has never been written, or a ``"corrupt"`` when the record
        exists but fails the frame checks (torn write, truncation, bit rot,
        stale frame version) or cannot be unpickled — the caller recomputes
        and surfaces ``detail`` as a structured warning.
        """
        started = time.perf_counter()
        try:
            return self._load(key)
        finally:
            with self._lock:
                self._seconds_loading += time.perf_counter() - started

    def _load(self, key: str) -> CheckpointOutcome:
        self._prepare()
        path = self.cell_path(key)
        try:
            blob = path.read_bytes()
        except FileNotFoundError:
            return CheckpointOutcome("miss")
        except OSError as error:  # pragma: no cover - I/O failure degrades
            return CheckpointOutcome(
                "corrupt", detail=f"checkpoint cell {key} is unreadable: {error}"
            )
        try:
            payload = decode_frame(blob)
            value = pickle.loads(payload)
        except CheckpointError as error:
            return CheckpointOutcome(
                "corrupt", detail=f"checkpoint cell {key} is damaged: {error}"
            )
        # repro: allow[REP005] -- any unpickling failure IS the corruption this method exists to detect; it degrades to a structured recompute outcome, never a crash
        except Exception as error:  # noqa: BLE001
            return CheckpointOutcome(
                "corrupt",
                detail=f"checkpoint cell {key} failed to unpickle: {error!r}",
            )
        return CheckpointOutcome("hit", value=value)

    def store(self, key: str, value: Any) -> Path:
        """Persist one completed task durably (atomic, checksummed)."""
        started = time.perf_counter()
        self._prepare()
        try:
            payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as error:
            raise CheckpointError(
                f"checkpoint value for cell {key} is not picklable: {error}"
            ) from error
        path = self.cell_path(key)
        atomic_write_bytes(path, encode_frame(payload))
        with self._lock:
            self._stores += 1
            self._seconds_storing += time.perf_counter() - started
            count = self._stores
        if self._faults is not None:
            self._faults.after_store(count, path)
        return path


# ---------------------------------------------------------------------------
# Execution: the resume half of run_many.


@dataclass(frozen=True)
class _StoringWorker:
    """Compute-then-persist wrapper for checkpoint misses (picklable).

    Wraps the caller's worker over ``(key, task)`` pairs: the result is
    stored the moment it exists — in the worker process itself under process
    mode — so every completed task survives a crash of any *later* task.
    Injected :class:`~repro.engine.faults.Corrupted` markers are never
    stored: the resilience engine retries them, and only the laundered
    result reaches the store.
    """

    worker: Callable[[Any], Any]
    store: CheckpointStore

    def __call__(self, wrapped: tuple[str, Any]) -> Any:
        key, task = wrapped
        value = self.worker(task)
        if not isinstance(value, Corrupted):
            self.store.store(key, value)
        return value


def run_checkpointed(
    tasks: Sequence[Any],
    worker: Callable[[Any], Any],
    store: CheckpointStore,
    keys: Sequence[str] | None,
    *,
    parallel: bool = False,
    max_workers: int | None = None,
    mode: str | None = None,
    pool: "WorkerPool | None" = None,
    policy: "ExecutionPolicy | None" = None,
    report: "RunReport | None" = None,
) -> list[Any]:
    """:func:`~repro.engine.runner.run_many` with durable resume.

    Every task needs a content-addressed key (``keys[i]`` for ``tasks[i]``).
    Hits are served from the store — re-validated by ``policy.validate_result``
    when one exists, so a stored-but-invalid value is recomputed, never
    served.  Misses (including corrupt cells, which also land a structured
    warning on ``report``) run through the ordinary engine wrapped in the
    storing worker.  ``report`` receives one
    :class:`~repro.engine.resilience.TaskReport` per task with its
    ``checkpoint`` field set to ``"hit"``, ``"miss"`` or ``"corrupt"``.
    """
    from repro.engine.resilience import RunReport
    from repro.engine.runner import run_many

    task_list = list(tasks)
    if keys is None:
        raise CheckpointError(
            "checkpointed execution needs one checkpoint key per task; "
            "compute them with sweep_point_keys/configuration_keys/task_key"
        )
    key_list = [str(key) for key in keys]
    if len(key_list) != len(task_list):
        raise CheckpointError(
            f"{len(task_list)} task(s) but {len(key_list)} checkpoint key(s)"
        )
    if len(set(key_list)) != len(key_list):
        raise CheckpointError(
            "checkpoint keys must be unique within a run; duplicate keys "
            "mean two tasks claim the same cell"
        )

    results: list[Any] = [None] * len(task_list)
    statuses = ["miss"] * len(task_list)
    warnings: list[str] = []
    misses: list[tuple[int, str, Any]] = []
    for position, (key, task) in enumerate(zip(key_list, task_list)):
        outcome = store.load(key)
        if (
            outcome.status == "hit"
            and policy is not None
            and policy.validate_result is not None
            and not policy.validate_result(outcome.value)
        ):
            outcome = CheckpointOutcome(
                "corrupt",
                detail=(
                    f"checkpoint cell {key} was rejected by the policy's "
                    f"result validator; recomputing"
                ),
            )
        if outcome.status == "hit":
            results[position] = outcome.value
            statuses[position] = "hit"
        else:
            if outcome.status == "corrupt":
                statuses[position] = "corrupt"
                warnings.append(outcome.detail)
            misses.append((position, key, task))

    sub_report: "RunReport | None" = None
    if misses:
        if report is not None or policy is not None:
            sub_report = RunReport()
        sub_results = run_many(
            [(key, task) for _, key, task in misses],
            _StoringWorker(worker, store),
            parallel=parallel,
            max_workers=max_workers,
            mode=mode,
            pool=pool,
            policy=policy,
            report=sub_report,
        )
        for (position, _key, _task), value in zip(misses, sub_results):
            results[position] = value
    if report is not None:
        _merge_reports(report, sub_report, statuses, misses, warnings)
    return results


def _merge_reports(
    report: "RunReport",
    sub_report: "RunReport | None",
    statuses: Sequence[str],
    misses: Sequence[tuple[int, str, Any]],
    warnings: Sequence[str],
) -> None:
    """Fold the miss-run's report plus the hit bookkeeping into ``report``.

    The sub-run numbered its tasks 0..n_misses-1; its task reports are
    remapped to the original task positions, tagged with their checkpoint
    status, and interleaved with synthetic completed reports for the hits so
    ``report.tasks`` covers every task exactly once, in order.
    """
    from repro.engine.resilience import TaskReport

    report.warnings.extend(warnings)
    by_position: dict[int, TaskReport] = {}
    if sub_report is not None:
        report.respawns += sub_report.respawns
        report.degradations += sub_report.degradations
        report.wall_seconds += sub_report.wall_seconds
        if not report.backend:
            report.backend = sub_report.backend
        for task_report, (position, _key, _task) in zip(sub_report.tasks, misses):
            task_report.index = position
            task_report.checkpoint = statuses[position]
            by_position[position] = task_report
    for position, status in enumerate(statuses):
        if position in by_position:
            continue
        if status == "hit":
            by_position[position] = TaskReport(
                index=position,
                completed=True,
                final_backend="checkpoint",
                checkpoint="hit",
            )
        else:  # pragma: no cover - a miss without a sub-report task entry
            by_position[position] = TaskReport(index=position, checkpoint=status)
    if not report.backend:
        report.backend = "checkpoint"
    report.tasks.extend(task for _, task in sorted(by_position.items()))
