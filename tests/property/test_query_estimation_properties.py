"""Property-based tests for universe-aware query estimation.

Three invariants anchor the estimation semantics:

* on *original* (truthful) data the probabilistic estimate collapses to the
  exact count, in both universe modes,
* an estimate is a sum of per-record probabilities in ``[0, 1]``, so it can
  never exceed the dataset size,
* the columnar estimation kernel is a pure reshaping of the per-record path,
  so the two agree to float equality (``==``, not approximately) on arbitrary
  generalized outputs.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import Attribute, Dataset, DatasetDomains, Schema
from repro.queries import Query, RangeCondition, ValueCondition

ITEMS = [f"i{n}" for n in range(8)]
CITIES = ["athens", "berlin", "chania", "delft"]

records = st.fixed_dictionaries(
    {
        "Age": st.one_of(st.none(), st.integers(min_value=18, max_value=80)),
        "City": st.one_of(st.none(), st.sampled_from(CITIES)),
        "Items": st.sets(st.sampled_from(ITEMS), max_size=4),
    }
)

datasets = st.lists(records, min_size=1, max_size=25)

#: item -> published label: intact, the root, a group, or suppressed.
item_mappings = st.dictionaries(
    st.sampled_from(ITEMS),
    st.one_of(
        st.none(),
        st.just("*"),
        st.sets(st.sampled_from(ITEMS), min_size=2, max_size=4).map(
            lambda items: "(" + ",".join(sorted(items)) + ")"
        ),
    ),
    max_size=len(ITEMS),
)

#: city -> published label: intact, the root, or a group label.
city_mappings = st.dictionaries(
    st.sampled_from(CITIES),
    st.one_of(
        st.just("*"),
        st.sets(st.sampled_from(CITIES), min_size=2, max_size=3).map(
            lambda values: "(" + ",".join(sorted(values)) + ")"
        ),
    ),
    max_size=len(CITIES),
)

queries = st.builds(
    lambda low, width, accepted, items: Query(
        conditions={
            "Age": RangeCondition(low, low + width),
            "City": ValueCondition(accepted),
        },
        items=items,
    ),
    st.integers(min_value=15, max_value=75),
    st.integers(min_value=0, max_value=30),
    st.sets(st.sampled_from(CITIES), min_size=1, max_size=2),
    st.sets(st.sampled_from(ITEMS), max_size=2),
)


def make_dataset(rows) -> Dataset:
    schema = Schema(
        [
            Attribute.numeric("Age"),
            Attribute.categorical("City"),
            Attribute.transaction("Items"),
        ]
    )
    return Dataset(schema, [dict(row, Items=sorted(row["Items"])) for row in rows])


def generalize(dataset: Dataset, item_mapping, city_mapping) -> Dataset:
    anonymized = dataset.copy()
    for index, record in enumerate(dataset):
        items = {item_mapping.get(item, item) for item in record["Items"]}
        anonymized.set_value(index, "Items", sorted(item for item in items if item))
        city = record["City"]
        if city is not None:
            anonymized.set_value(index, "City", city_mapping.get(city, city))
        age = record["Age"]
        if age is not None and age >= 50:
            anonymized.set_value(index, "Age", "[50-80]")
        elif age is not None and age <= 25:
            # The hierarchy-free numeric root: resolved leaf-uniformly
            # against the domain snapshot in the "original" mode only.
            anonymized.set_value(index, "Age", "*")
    return anonymized


@settings(max_examples=60, deadline=None)
@given(rows=datasets, query=queries)
def test_estimate_equals_count_on_original_data(rows, query):
    dataset = make_dataset(rows)
    domains = DatasetDomains.capture(dataset)
    count = query.count(dataset)
    assert query.count(dataset, vectorized=False) == count
    for mode in ("seed", "original"):
        estimate = query.estimate(dataset, domains=domains, universe_mode=mode)
        assert estimate == pytest.approx(count)


@settings(max_examples=60, deadline=None)
@given(
    rows=datasets,
    query=queries,
    item_mapping=item_mappings,
    city_mapping=city_mappings,
)
def test_estimate_bounded_by_dataset_size(rows, query, item_mapping, city_mapping):
    dataset = make_dataset(rows)
    anonymized = generalize(dataset, item_mapping, city_mapping)
    domains = DatasetDomains.capture(dataset)
    for mode in ("seed", "original"):
        estimate = query.estimate(anonymized, domains=domains, universe_mode=mode)
        assert 0.0 <= estimate <= len(dataset) + 1e-9


@settings(max_examples=60, deadline=None)
@given(
    rows=datasets,
    query=queries,
    item_mapping=item_mappings,
    city_mapping=city_mappings,
)
def test_columnar_kernel_matches_per_record_path_exactly(
    rows, query, item_mapping, city_mapping
):
    dataset = make_dataset(rows)
    anonymized = generalize(dataset, item_mapping, city_mapping)
    domains = DatasetDomains.capture(dataset)
    assert query.count(anonymized) == query.count(anonymized, vectorized=False)
    for mode in ("seed", "original"):
        kernel = query.estimate(anonymized, domains=domains, universe_mode=mode)
        scalar = query.estimate(
            anonymized, domains=domains, universe_mode=mode, vectorized=False
        )
        assert kernel == scalar  # bit-for-bit, not approximately
