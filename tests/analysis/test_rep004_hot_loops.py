"""REP004: hot-path loop ban fixtures."""

from __future__ import annotations

from lint_harness import new_codes

from repro.analysis.manifest import InvariantManifest

MANIFEST = InvariantManifest(
    hot_modules=("src/pkg/metrics.py",),
    scalar_fallbacks=("src/pkg/metrics.py::slow_score",),
)

RECORD_LOOP = """
    def score(dataset):
        total = 0.0
        for record in dataset.records:
            total += record["weight"]
        return total
"""

FALLBACK_LOOP = """
    def slow_score(dataset):
        total = 0.0
        for record in dataset.records:
            total += record["weight"]
        return total
"""

NESTED_IN_FALLBACK = """
    def slow_score(dataset):
        def inner():
            for record in dataset._records:
                yield record
        return sum(1 for _ in inner())
"""

NON_RECORD_LOOP = """
    def score(values):
        total = 0.0
        for value in values:
            total += value
        return total
"""


class TestRep004:
    def test_record_loop_in_hot_module_is_flagged(self, harness):
        findings = harness.findings(
            "src/pkg/metrics.py", RECORD_LOOP, manifest=MANIFEST, select=["REP004"]
        )
        assert new_codes(findings) == ["REP004"]
        assert findings[0].symbol == "score"

    def test_declared_scalar_fallback_is_exempt(self, harness):
        assert (
            harness.findings(
                "src/pkg/metrics.py",
                FALLBACK_LOOP,
                manifest=MANIFEST,
                select=["REP004"],
            )
            == []
        )

    def test_helper_nested_in_fallback_is_exempt(self, harness):
        assert (
            harness.findings(
                "src/pkg/metrics.py",
                NESTED_IN_FALLBACK,
                manifest=MANIFEST,
                select=["REP004"],
            )
            == []
        )

    def test_non_hot_module_is_out_of_scope(self, harness):
        assert (
            harness.findings(
                "src/pkg/other.py", RECORD_LOOP, manifest=MANIFEST, select=["REP004"]
            )
            == []
        )

    def test_loop_over_plain_values_is_clean(self, harness):
        assert (
            harness.findings(
                "src/pkg/metrics.py",
                NON_RECORD_LOOP,
                manifest=MANIFEST,
                select=["REP004"],
            )
            == []
        )

    def test_suppression_with_reason_is_honored(self, harness):
        source = RECORD_LOOP.replace(
            "for record in dataset.records:",
            "for record in dataset.records:  "
            "# repro: allow[REP004] -- cold path, runs once per export",
        )
        findings = harness.findings(
            "src/pkg/metrics.py", source, manifest=MANIFEST, select=["REP004"]
        )
        assert len(findings) == 1
        assert findings[0].suppressed
        assert new_codes(findings) == []
