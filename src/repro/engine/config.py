"""Anonymization configurations.

A configuration captures everything the GUI's "Method evaluation" /
"Methods comparison" panes let the user choose: which algorithm(s) to run,
the privacy parameters ``k``, ``m`` and ``δ``, which attributes participate,
and how missing inputs (hierarchies, policies) should be generated.  The same
configuration object drives single runs, varying-parameter sweeps and
multi-configuration comparisons.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.algorithms.registry import get_spec
from repro.exceptions import ConfigurationError

#: The parameters a varying-parameter experiment may sweep.
SWEEPABLE_PARAMETERS = ("k", "m", "delta")


@dataclass(frozen=True)
class AnonymizationConfig:
    """A complete description of one anonymization request."""

    #: Relational algorithm name (``incognito``, ``top-down``, ``cluster``,
    #: ``full-subtree``) or ``None`` when only transactions are anonymized.
    relational_algorithm: str | None = None
    #: Transaction algorithm name (``coat``, ``pcta``, ``apriori``, ``lra``,
    #: ``vpa``) or ``None`` when only relational attributes are anonymized.
    transaction_algorithm: str | None = None
    #: Bounding method (``rmerger``, ``tmerger``, ``rtmerger``) used when both
    #: algorithm kinds are selected (RT-datasets).
    bounding_method: str = "rtmerger"

    #: Privacy parameters.
    k: int = 5
    m: int = 2
    delta: float = 0.5

    #: Attribute selection; ``None`` means "all quasi-identifiers".
    relational_attributes: tuple[str, ...] | None = None
    transaction_attribute: str | None = None

    #: Automatic-generation knobs (used when hierarchies/policies are absent).
    hierarchy_fanout: int = 4
    privacy_strategy: str = "items"
    utility_strategy: str = "frequency"
    utility_group_size: int = 4

    #: Free-form display label (defaults to a description of the algorithms).
    label: str | None = None

    #: Extra keyword arguments forwarded to the algorithm constructors.
    extra: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.relational_algorithm is None and self.transaction_algorithm is None:
            raise ConfigurationError(
                "a configuration needs a relational and/or a transaction algorithm"
            )
        if self.relational_algorithm is not None:
            spec = get_spec(self.relational_algorithm)
            if spec.kind != "relational":
                raise ConfigurationError(
                    f"{self.relational_algorithm!r} is not a relational algorithm"
                )
        if self.transaction_algorithm is not None:
            spec = get_spec(self.transaction_algorithm)
            if spec.kind != "transaction":
                raise ConfigurationError(
                    f"{self.transaction_algorithm!r} is not a transaction algorithm"
                )
        if self.mode == "rt":
            spec = get_spec(self.bounding_method)
            if spec.kind != "rt":
                raise ConfigurationError(
                    f"{self.bounding_method!r} is not a bounding method"
                )
        if self.k < 2:
            raise ConfigurationError("k must be at least 2")
        if self.m < 1:
            raise ConfigurationError("m must be at least 1")
        if not 0 <= self.delta <= 1:
            raise ConfigurationError("delta must lie in [0, 1]")
        if self.relational_attributes is not None:
            object.__setattr__(
                self, "relational_attributes", tuple(self.relational_attributes)
            )

    # -- derived views ----------------------------------------------------------
    @property
    def mode(self) -> str:
        """``"relational"``, ``"transaction"`` or ``"rt"``."""
        if self.relational_algorithm and self.transaction_algorithm:
            return "rt"
        if self.relational_algorithm:
            return "relational"
        return "transaction"

    @property
    def display_label(self) -> str:
        if self.label:
            return self.label
        if self.mode == "rt":
            return (
                f"{self.relational_algorithm}+{self.transaction_algorithm}"
                f"/{self.bounding_method}"
            )
        return self.relational_algorithm or self.transaction_algorithm

    def describe(self) -> dict[str, Any]:
        """A flat, report-friendly description of the configuration."""
        return {
            "label": self.display_label,
            "mode": self.mode,
            "relational_algorithm": self.relational_algorithm,
            "transaction_algorithm": self.transaction_algorithm,
            "bounding_method": self.bounding_method if self.mode == "rt" else None,
            "k": self.k,
            "m": self.m,
            "delta": self.delta,
        }

    # -- sweeping ------------------------------------------------------------------
    def with_parameter(self, parameter: str, value: Any) -> "AnonymizationConfig":
        """A copy of the configuration with one (sweepable) parameter replaced."""
        if parameter not in SWEEPABLE_PARAMETERS:
            raise ConfigurationError(
                f"cannot vary parameter {parameter!r}; "
                f"expected one of {SWEEPABLE_PARAMETERS}"
            )
        if parameter in ("k", "m"):
            value = int(value)
        else:
            value = float(value)
        return dataclasses.replace(self, **{parameter: value})

    def replace(self, **changes: Any) -> "AnonymizationConfig":
        """A copy of the configuration with arbitrary fields replaced."""
        return dataclasses.replace(self, **changes)


def relational_config(algorithm: str, k: int = 5, **kwargs: Any) -> AnonymizationConfig:
    """Convenience constructor for a relational-only configuration."""
    return AnonymizationConfig(relational_algorithm=algorithm, k=k, **kwargs)


def transaction_config(algorithm: str, k: int = 5, m: int = 2, **kwargs: Any) -> AnonymizationConfig:
    """Convenience constructor for a transaction-only configuration."""
    return AnonymizationConfig(transaction_algorithm=algorithm, k=k, m=m, **kwargs)


def rt_config(
    relational: str,
    transaction: str,
    bounding: str = "rtmerger",
    k: int = 5,
    m: int = 2,
    delta: float = 0.5,
    **kwargs: Any,
) -> AnonymizationConfig:
    """Convenience constructor for an RT-dataset configuration."""
    return AnonymizationConfig(
        relational_algorithm=relational,
        transaction_algorithm=transaction,
        bounding_method=bounding,
        k=k,
        m=m,
        delta=delta,
        **kwargs,
    )
