"""Columnar / bitset kernel layer for transaction attributes.

The row-oriented :class:`~repro.datasets.dataset.Dataset` stores itemsets as
per-record ``frozenset`` values — the right shape for anonymization
algorithms that group and rewrite *records*, and the wrong shape for the
set-algebra hot loops (posting-list unions, constraint support, utility
loss).  This package supplies the compact, vectorizable twin:

* :class:`ItemVocabulary` — ``item → token id`` over the sorted item universe,
* :class:`TransactionColumn` — a CSR-style tokenized item column
  (``indptr``/``tokens`` arrays) with lazily cached derived structures,
* :class:`CategoricalColumn` / :class:`NumericColumn` — the relational twin:
  one ``int32`` code per record over the column's distinct values (plus a
  ``float64`` ``NaN``-missing view for numeric attributes),
* :mod:`repro.columnar.bitset` — dense ``uint64`` posting bitsets with
  popcount-based union/intersection/support kernels,
* :mod:`repro.columnar.estimation` — shape-level reduction kernels for the
  query-estimation hot path (order-preserving :func:`sequential_sum`,
  per-CSR-row :func:`row_max`, boolean-mask packing),
* :mod:`repro.columnar.shared` — zero-copy fan-out: pack the flat column
  arrays into one ``multiprocessing.shared_memory`` segment
  (:class:`SharedDatasetExport`) and rebuild read-only dataset views in
  worker processes from the picklable manifest (see ``docs/parallelism.md``).

``Dataset.columnar()`` builds and caches one column view per attribute
(transaction or relational); :class:`repro.index.InvertedIndex`, the
transaction metrics, the relational GCP/NCP and grouping metrics, and the
greedy-clustering / RT-merge kernels run on it.  See ``docs/columnar.md``
for the layout and materialization rules.
"""

from __future__ import annotations

from repro.columnar.bitset import (
    WORD_BITS,
    bitset_from_indices,
    empty_bitset,
    indices_of,
    intersect_rows,
    popcount,
    popcount_rows,
    posting_matrix,
    union_rows,
    word_count,
)
from repro.columnar.column import TransactionColumn
from repro.columnar.estimation import mask_to_bitset, row_max, sequential_sum
from repro.columnar.relational import CategoricalColumn, NumericColumn
from repro.columnar.shared import (
    SharedDatasetExport,
    SharedDatasetManifest,
    attach,
    attach_cached,
    resolve_shared_dataset,
)
from repro.columnar.vocabulary import ItemVocabulary

__all__ = [
    "WORD_BITS",
    "CategoricalColumn",
    "ItemVocabulary",
    "NumericColumn",
    "SharedDatasetExport",
    "SharedDatasetManifest",
    "TransactionColumn",
    "attach",
    "attach_cached",
    "resolve_shared_dataset",
    "bitset_from_indices",
    "empty_bitset",
    "indices_of",
    "intersect_rows",
    "mask_to_bitset",
    "popcount",
    "popcount_rows",
    "posting_matrix",
    "row_max",
    "sequential_sum",
    "union_rows",
    "word_count",
]
