"""REP004 — no per-record Python loops in the hot modules.

The modules listed as ``hot_modules`` were rebuilt on columnar kernels
precisely to remove ``for record in ...records`` loops from the scoring and
merge paths.  A new per-record loop there is a silent 10–100x regression
that no correctness test will catch; the retained scalar fallbacks are
exempted by qualified name.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.core import Finding, ModuleContext, Rule, register
from repro.analysis.manifest import InvariantManifest

_RECORD_ITER_NAMES = frozenset({"records", "_records"})


def _iterates_records(iter_expr: ast.expr) -> bool:
    for node in ast.walk(iter_expr):
        if isinstance(node, ast.Attribute) and node.attr in _RECORD_ITER_NAMES:
            return True
        if isinstance(node, ast.Name) and node.id in _RECORD_ITER_NAMES:
            return True
    return False


@register
class HotPathLoops(Rule):
    code = "REP004"
    name = "hot-path-loop-ban"
    summary = "manifest-declared hot modules must not grow per-record loops"
    explanation = (
        "Modules listed in [rep004] hot_modules score or merge via columnar "
        "kernels; their per-record loops were deliberately removed (or "
        "demoted to declared scalar fallbacks).  A `for ... in X.records` "
        "loop added anywhere else in those modules reintroduces O(records) "
        "Python-level work on a path that runs once per candidate per "
        "iteration — a large slowdown that stays invisible to correctness "
        "tests.  Either use the columnar kernel, or register the function as "
        "a scalar fallback in the manifest (with the parity test REP003 "
        "demands)."
    )

    def check_module(
        self, module: ModuleContext, manifest: InvariantManifest
    ) -> Iterable[Finding]:
        if module.relpath not in manifest.hot_modules:
            return
        fallbacks = manifest.scalar_fallbacks
        for node in module.walk():
            if not isinstance(node, (ast.For, ast.AsyncFor)):
                continue
            if not _iterates_records(node.iter):
                continue
            site = f"{module.relpath}::{module.qualname(node)}"
            if any(
                site == fallback or site.startswith(fallback + ".")
                for fallback in fallbacks
            ):
                continue
            yield module.finding(
                self,
                node,
                "per-record loop in a hot module; use the columnar kernel "
                "or declare this function as a scalar fallback in the "
                "manifest",
            )
