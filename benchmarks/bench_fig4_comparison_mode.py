"""FIG4 / SCEN2 — Comparison mode: "Comparing methods for RT-datasets".

The Comparison screen (Figure 4) executes several configurations across a
varying parameter and plots their utility and efficiency side by side.  The
benchmark compares three representative configurations across k and records
every indicator series; the expected *shape* (documented in EXPERIMENTS.md)
is that ARE and information loss grow with k and that local-recoding methods
retain more utility than full-domain ones.
"""

from __future__ import annotations

from repro.engine import MethodComparator, ParameterSweep, rt_config
from repro.frontend.plotting import comparison_figure

CONFIGURATIONS = [
    rt_config("cluster", "apriori", bounding="rtmerger", m=2, delta=0.6,
              label="Cluster+Apriori/RTmerger"),
    rt_config("incognito", "apriori", bounding="rmerger", m=2, delta=0.6,
              label="Incognito+Apriori/Rmerger"),
    rt_config("cluster", "lra", bounding="tmerger", m=2, delta=0.6,
              label="Cluster+LRA/Tmerger"),
]
SWEEP = ParameterSweep("k", (5, 15, 25))


def test_comparison_mode_sweep(benchmark, session, record):
    """Run the full Comparison-mode benchmark (3 configurations x 3 k values)."""

    def run():
        comparator = MethodComparator(
            session.dataset, session.resources(), verify_privacy=False
        )
        return comparator.compare(CONFIGURATIONS, SWEEP)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    payload = {
        "parameter": report.parameter,
        "values": report.values,
        "series": {},
        "are_table": report.table("are"),
    }
    for indicator in ("are", "relational_gcp", "transaction_ul", "runtime_seconds"):
        payload["series"][indicator] = {
            sweep.configuration["label"]: sweep.series[indicator].y
            for sweep in report.sweeps
            if indicator in sweep.series
        }
    record("fig4_comparison_mode", payload)

    # Shape assertions (who wins / how curves move), not absolute numbers.
    for sweep in report.sweeps:
        gcp = sweep.series["relational_gcp"].y
        assert gcp[-1] >= gcp[0] - 1e-9, "information loss must not shrink as k grows"
    figure = comparison_figure(report, "are")
    assert len(figure.series) == len(CONFIGURATIONS)


def test_comparison_figure_rendering(benchmark, session, record):
    """Rendering the comparison figures (the plotting area of Figure 4)."""
    comparator = MethodComparator(session.dataset, session.resources(), verify_privacy=False)
    report = comparator.compare(CONFIGURATIONS[:2], ParameterSweep("k", (5, 15)))

    def render():
        return [
            comparison_figure(report, indicator).to_text()
            for indicator in report.indicators()
        ]

    texts = benchmark(render)
    record("fig4_rendering", {"figures": len(texts)})
    assert all(isinstance(text, str) and text for text in texts)
