"""Verification of privacy guarantees.

These checks are what make the reproduction trustworthy: every algorithm's
output is validated against its declared privacy model, both in the test
suite and (optionally) by the engine after each run.

* *k*-anonymity for relational attributes: every combination of
  quasi-identifier values shared by at least ``k`` records.
* *k*:sup:`m`-anonymity for transaction attributes: an adversary who knows up
  to ``m`` items of an individual cannot narrow that individual down to fewer
  than ``k`` records.  On generalized data the check is performed against the
  *candidate* records — those whose (possibly generalized) itemsets could
  contain the known items — which is the attacker's view and is valid for
  both global and local recoding.
* (*k*, *k*:sup:`m`)-anonymity for RT-datasets (Poulis et al. 2013): the
  relational part is *k*-anonymous and, within every relational equivalence
  class, the transaction part is *k*:sup:`m`-anonymous.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.datasets.dataset import Dataset
from repro.exceptions import DatasetError
from repro.hierarchy.hierarchy import Hierarchy
from repro.metrics.interpretation import label_leaves


# -- relational: k-anonymity ---------------------------------------------------
def equivalence_classes(
    dataset: Dataset, attributes: Sequence[str] | None = None
) -> dict[tuple, list[int]]:
    """Equivalence classes over the given (default: QI relational) attributes."""
    if attributes is None:
        attributes = [
            attribute.name
            for attribute in dataset.schema.relational
            if attribute.quasi_identifier
        ]
    return dataset.group_by(list(attributes))


def min_class_size(dataset: Dataset, attributes: Sequence[str] | None = None) -> int:
    """Size of the smallest equivalence class (0 for an empty dataset)."""
    groups = equivalence_classes(dataset, attributes)
    return min((len(indices) for indices in groups.values()), default=0)


def is_k_anonymous(
    dataset: Dataset, k: int, attributes: Sequence[str] | None = None
) -> bool:
    """Whether every equivalence class has at least ``k`` records."""
    if k < 1:
        raise DatasetError("k must be at least 1")
    if len(dataset) == 0:
        return True
    return min_class_size(dataset, attributes) >= k


# -- transactions: k^m-anonymity ------------------------------------------------
def candidate_support(
    dataset: Dataset,
    items: Iterable[str],
    attribute: str | None = None,
    hierarchy: Hierarchy | None = None,
    universe: set[str] | None = None,
) -> int:
    """Number of records whose itemsets could contain all of ``items``."""
    attribute = attribute or dataset.single_transaction_attribute()
    items = [str(item) for item in items]
    support = 0
    for record in dataset:
        covered: set[str] = set()
        for label in record[attribute]:
            covered.update(label_leaves(str(label), hierarchy, universe=universe))
        if all(item in covered for item in items):
            support += 1
    return support


@dataclass(frozen=True)
class KmViolation:
    """A combination of at most ``m`` items supported by fewer than ``k`` records."""

    items: tuple[str, ...]
    support: int


def km_violations(
    dataset: Dataset,
    k: int,
    m: int,
    attribute: str | None = None,
    hierarchy: Hierarchy | None = None,
    universe: Iterable[str] | None = None,
    max_violations: int | None = None,
) -> list[KmViolation]:
    """All item combinations of size <= ``m`` violating k^m-anonymity.

    ``universe`` defaults to the set of original items the anonymized labels
    may stand for; pass the original dataset's universe to check against the
    attacker's full vocabulary.
    """
    if k < 1 or m < 1:
        raise DatasetError("k and m must be at least 1")
    attribute = attribute or dataset.single_transaction_attribute()

    if universe is None:
        derived: set[str] = set()
        for record in dataset:
            for label in record[attribute]:
                derived.update(label_leaves(str(label), hierarchy))
        universe = derived
    universe_set = {str(item) for item in universe}
    ordered = sorted(universe_set)

    # Pre-compute each record's covered original items once.
    covered_sets = []
    for record in dataset:
        covered: set[str] = set()
        for label in record[attribute]:
            covered.update(label_leaves(str(label), hierarchy, universe=universe_set))
        covered_sets.append(covered & universe_set)

    violations: list[KmViolation] = []
    for size in range(1, m + 1):
        for combination in itertools.combinations(ordered, size):
            support = sum(
                1 for covered in covered_sets if covered.issuperset(combination)
            )
            if 0 < support < k:
                violations.append(KmViolation(items=combination, support=support))
                if max_violations is not None and len(violations) >= max_violations:
                    return violations
    return violations


def is_km_anonymous(
    dataset: Dataset,
    k: int,
    m: int,
    attribute: str | None = None,
    hierarchy: Hierarchy | None = None,
    universe: Iterable[str] | None = None,
) -> bool:
    """Whether the transaction attribute satisfies k^m-anonymity."""
    return not km_violations(
        dataset,
        k,
        m,
        attribute=attribute,
        hierarchy=hierarchy,
        universe=universe,
        max_violations=1,
    )


# -- RT-datasets: (k, k^m)-anonymity ----------------------------------------------
def is_k_km_anonymous(
    dataset: Dataset,
    k: int,
    m: int,
    relational_attributes: Sequence[str] | None = None,
    transaction_attribute: str | None = None,
    hierarchy: Hierarchy | None = None,
    universe: Iterable[str] | None = None,
) -> bool:
    """Whether an RT-dataset satisfies (k, k^m)-anonymity (Poulis et al. 2013).

    The relational projection must be k-anonymous and the transaction
    projection of *every relational equivalence class* must be k^m-anonymous,
    so that an adversary combining demographics with up to ``m`` items still
    faces at least ``k`` indistinguishable records.
    """
    transaction_attribute = (
        transaction_attribute or dataset.single_transaction_attribute()
    )
    if not is_k_anonymous(dataset, k, relational_attributes):
        return False
    groups = equivalence_classes(dataset, relational_attributes)
    for indices in groups.values():
        subset = dataset.subset(indices)
        if not is_km_anonymous(
            subset,
            k,
            m,
            attribute=transaction_attribute,
            hierarchy=hierarchy,
            universe=universe,
        ):
            return False
    return True


def privacy_report(
    dataset: Dataset,
    k: int,
    m: int | None = None,
    relational_attributes: Sequence[str] | None = None,
    transaction_attribute: str | None = None,
    hierarchy: Hierarchy | None = None,
) -> dict:
    """A compact report of the privacy status of an anonymized dataset."""
    report: dict = {"records": len(dataset), "k": k}
    has_relational = bool(
        relational_attributes
        if relational_attributes is not None
        else [a for a in dataset.schema.relational if a.quasi_identifier]
    )
    if has_relational:
        report["min_class_size"] = min_class_size(dataset, relational_attributes)
        report["k_anonymous"] = report["min_class_size"] >= k
    if m is not None and dataset.schema.transaction_names:
        report["m"] = m
        report["km_anonymous"] = is_km_anonymous(
            dataset, k, m, attribute=transaction_attribute, hierarchy=hierarchy
        )
    return report
