"""Unit tests for the fault-tolerant execution engine (`repro.engine.resilience`).

Covers policy validation, deterministic backoff, the outcome classification
(ok / error / timeout / crash / corrupt), recovery from worker crashes,
hangs and SIGKILL (exit 137), the ``process → thread → sequential``
degradation ladder, task-identity preservation in :class:`TaskError`, and
the :class:`RunReport` account the engine keeps of every attempt.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.engine.faults import FaultPlan
from repro.engine.pool import WorkerPool
from repro.engine.resilience import (
    DEFAULT_POLICY,
    ExecutionPolicy,
    RunReport,
    execute_tasks,
)
from repro.engine.runner import run_many
from repro.exceptions import ConfigurationError, TaskError

#: A fast policy for tests: no real sleeping between retries.
FAST = dict(backoff_base=0.0)


# Module-level workers: process mode must be able to pickle them.
def _triple(value: int) -> int:
    return value * 3


def _pid_of(value: int) -> int:
    return os.getpid()


class TestExecutionPolicyValidation:
    def test_defaults_are_valid(self):
        assert DEFAULT_POLICY.max_attempts == 3
        assert DEFAULT_POLICY.ladder == ("process", "thread", "sequential")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"task_timeout": 0},
            {"task_timeout": -1.0},
            {"degrade_after": 0},
            {"backoff_factor": 0.5},
            {"backoff_jitter": 1.5},
            {"ladder": ()},
            {"ladder": ("process", "gpu")},
        ],
    )
    def test_invalid_knobs_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            ExecutionPolicy(**kwargs)

    def test_rungs_from_starts_at_backend_and_descends(self):
        policy = ExecutionPolicy()
        assert policy.rungs_from("process") == ("process", "thread", "sequential")
        assert policy.rungs_from("thread") == ("thread", "sequential")
        assert policy.rungs_from("sequential") == ("sequential",)

    def test_rungs_from_respects_a_shortened_ladder(self):
        policy = ExecutionPolicy(ladder=("process", "sequential"))
        assert policy.rungs_from("process") == ("process", "sequential")

    def test_rungs_from_rejects_unknown_backend(self):
        with pytest.raises(ConfigurationError, match="unknown backend"):
            ExecutionPolicy().rungs_from("gpu")


class TestBackoff:
    def test_backoff_is_deterministic_per_seed(self):
        policy = ExecutionPolicy(seed=7)
        delays = [policy.backoff_delay(3, attempt) for attempt in range(4)]
        assert delays == [policy.backoff_delay(3, attempt) for attempt in range(4)]

    def test_backoff_grows_and_respects_cap(self):
        policy = ExecutionPolicy(
            backoff_base=0.1, backoff_factor=2.0, backoff_max=0.3, backoff_jitter=0.0
        )
        assert policy.backoff_delay(0, 0) == pytest.approx(0.1)
        assert policy.backoff_delay(0, 1) == pytest.approx(0.2)
        assert policy.backoff_delay(0, 5) == pytest.approx(0.3)  # capped

    def test_jitter_desynchronises_tasks_without_randomness(self):
        policy = ExecutionPolicy(backoff_base=1.0, backoff_jitter=0.5)
        delays = {policy.backoff_delay(task, 0) for task in range(8)}
        assert len(delays) > 1  # different tasks, different delays
        assert all(0.5 <= delay <= 1.0 for delay in delays)

    def test_seed_changes_the_schedule(self):
        base = ExecutionPolicy(backoff_base=1.0, seed=0).backoff_delay(1, 1)
        other = ExecutionPolicy(backoff_base=1.0, seed=1).backoff_delay(1, 1)
        assert base != other


class TestSequentialBackend:
    def test_plain_run_reports_every_task_ok(self):
        report = RunReport()
        results = execute_tasks(
            [1, 2, 3], _triple, ExecutionPolicy(**FAST), report=report
        )
        assert results == [3, 6, 9]
        assert report.backend == "sequential"
        assert report.total_attempts == 3
        assert report.total_retries == 0
        assert all(task.completed for task in report.tasks)
        assert report.faulted_tasks == []

    def test_error_fault_is_retried_when_policy_allows(self):
        plan = FaultPlan.build((1, 0, "error"))
        report = RunReport()
        results = execute_tasks(
            [1, 2, 3],
            _triple,
            ExecutionPolicy(retry_errors=True, fault_plan=plan, **FAST),
            report=report,
        )
        assert results == [3, 6, 9]
        assert report.task(1).outcomes == ["error", "ok"]
        assert report.task(1).retries == 1

    def test_error_fails_fast_by_default_with_task_identity(self):
        plan = FaultPlan.build((2, -1, "error"))
        with pytest.raises(TaskError) as excinfo:
            execute_tasks([1, 2, 3], _triple, ExecutionPolicy(fault_plan=plan, **FAST))
        assert excinfo.value.task_index == 2
        assert excinfo.value.attempts == 1
        assert excinfo.value.backend == "sequential"

    def test_persistent_error_exhausts_the_attempt_budget(self):
        plan = FaultPlan.build((0, -1, "error"))
        policy = ExecutionPolicy(
            retry_errors=True, max_attempts=3, fault_plan=plan, **FAST
        )
        with pytest.raises(TaskError, match="attempt budget exhausted") as excinfo:
            execute_tasks([5], _triple, policy)
        assert excinfo.value.attempts == 3

    def test_corrupt_results_are_retried_and_laundered(self):
        plan = FaultPlan.build((0, 0, "corrupt"))
        report = RunReport()
        results = execute_tasks(
            [7], _triple, ExecutionPolicy(fault_plan=plan, **FAST), report=report
        )
        assert results == [21]  # never a Corrupted wrapper
        assert report.task(0).outcomes == ["corrupt", "ok"]

    def test_validate_result_rejection_counts_as_corrupt(self):
        policy = ExecutionPolicy(
            max_attempts=2, validate_result=lambda value: value > 100, **FAST
        )
        with pytest.raises(TaskError, match="corrupt"):
            execute_tasks([1], _triple, policy)


class TestThreadBackend:
    def test_thread_backend_runs_and_reports(self):
        report = RunReport()
        results = execute_tasks(
            [1, 2, 3, 4],
            _triple,
            ExecutionPolicy(**FAST),
            backend="thread",
            max_workers=2,
            report=report,
        )
        assert results == [3, 6, 9, 12]
        assert report.backend == "thread"
        assert {t.final_backend for t in report.tasks} == {"thread"}

    def test_thread_timeout_degrades_to_sequential(self):
        # The injected hang fires in *worker threads* too?  No — hang is a
        # hard fault, gated by pid, and threads share the parent pid, so a
        # plan cannot hang a thread.  Use a genuinely slow worker instead.
        report = RunReport()
        policy = ExecutionPolicy(task_timeout=0.2, degrade_after=1, **FAST)
        results = execute_tasks(
            [0.6, 0.0],
            _sleep_then_echo,
            policy,
            backend="thread",
            max_workers=2,
            report=report,
        )
        assert results == [0.6, 0.0]
        slow = report.task(0)
        assert "timeout" in slow.outcomes
        assert slow.final_backend == "sequential"
        assert report.degradations >= 1

    def test_process_backend_without_control_is_rejected(self):
        with pytest.raises(ConfigurationError, match="process_control"):
            execute_tasks([1], _triple, ExecutionPolicy(**FAST), backend="process")


def _sleep_then_echo(value: float) -> float:
    time.sleep(value)
    return value


class TestProcessRecovery:
    def test_crash_once_recovers_and_replays_only_unfinished(self):
        plan = FaultPlan.build((2, 0, "crash"))
        report = RunReport()
        with WorkerPool(max_workers=2) as pool:
            results = pool.map(
                _triple,
                [0, 1, 2, 3, 4],
                policy=ExecutionPolicy(fault_plan=plan, **FAST),
                report=report,
            )
        assert results == [0, 3, 6, 9, 12]
        assert report.respawns >= 1
        assert report.total_retries >= 1
        assert all(task.completed for task in report.tasks)

    def test_sigkill_exit137_recovers(self):
        plan = FaultPlan.build((1, 0, "exit137"))
        report = RunReport()
        with WorkerPool(max_workers=2) as pool:
            results = pool.map(
                _triple,
                [0, 1, 2, 3],
                policy=ExecutionPolicy(fault_plan=plan, **FAST),
                report=report,
            )
        assert results == [0, 3, 6, 9]
        assert report.respawns >= 1

    def test_hang_is_reclaimed_by_task_timeout(self):
        plan = FaultPlan.build((1, 0, "hang"), hang_seconds=30.0)
        report = RunReport()
        started = time.perf_counter()
        with WorkerPool(max_workers=2) as pool:
            results = pool.map(
                _triple,
                [0, 1, 2, 3],
                policy=ExecutionPolicy(task_timeout=2.0, fault_plan=plan, **FAST),
                report=report,
            )
        elapsed = time.perf_counter() - started
        assert results == [0, 3, 6, 9]
        assert elapsed < 20.0  # nowhere near the 30s hang
        assert "timeout" in report.task(1).outcomes

    def test_persistent_worker_killer_degrades_down_the_ladder(self):
        # Task 0 kills its worker process on *every* attempt; the ladder
        # must carry it to an in-parent backend where the fault cannot fire.
        plan = FaultPlan.build((0, -1, "exit137"))
        report = RunReport()
        policy = ExecutionPolicy(degrade_after=1, fault_plan=plan, **FAST)
        with WorkerPool(max_workers=2) as pool:
            results = pool.map(_triple, [0, 1, 2], policy=policy, report=report)
        assert results == [0, 3, 6]
        assert report.degradations >= 1
        assert report.task(0).final_backend in ("thread", "sequential")
        assert "crash" in report.task(0).outcomes

    def test_worker_error_carries_task_identity_from_process_mode(self):
        plan = FaultPlan.build((1, 0, "error"))
        with WorkerPool(max_workers=2) as pool:
            with pytest.raises(TaskError) as excinfo:
                pool.map(
                    _triple,
                    [0, 1, 2],
                    policy=ExecutionPolicy(fault_plan=plan, **FAST),
                )
        assert excinfo.value.task_index == 1
        assert excinfo.value.backend == "process"

    def test_pool_default_policy_applies_when_map_gets_none(self):
        plan = FaultPlan.build((0, 0, "crash"))
        policy = ExecutionPolicy(fault_plan=plan, **FAST)
        report = RunReport()
        with WorkerPool(max_workers=2, policy=policy) as pool:
            assert pool.policy is policy
            assert pool.map(_triple, [1, 2], report=report) == [3, 6]
        assert report.respawns >= 1


class TestRunManyIntegration:
    def test_sequential_fast_path_still_bypasses_the_engine(self):
        # No policy, no report: the legacy in-process shortcut.
        assert run_many([1, 2], _triple, mode="sequential") == [3, 6]

    def test_report_alone_opts_into_the_resilient_path(self):
        report = RunReport()
        assert run_many([1, 2], _triple, mode="sequential", report=report) == [3, 6]
        assert report.total_attempts == 2

    def test_thread_mode_with_policy_routes_through_engine(self):
        plan = FaultPlan.build((0, 0, "error"))
        report = RunReport()
        results = run_many(
            [1, 2, 3],
            _triple,
            mode="thread",
            policy=ExecutionPolicy(retry_errors=True, fault_plan=plan, **FAST),
            report=report,
        )
        assert results == [3, 6, 9]
        assert report.backend == "thread"
        assert report.task(0).retries == 1

    def test_run_report_summary_shape(self):
        report = RunReport()
        run_many([1], _triple, mode="sequential", report=report)
        summary = report.summary()
        assert summary["tasks"] == 1
        assert summary["total_attempts"] == 1
        assert summary["respawns"] == 0
        assert summary["final_backends"] == ["sequential"]
        assert summary["wall_seconds"] >= 0.0
