"""Tests for the Data Export Module and the configuration/queries editors."""

import json

import pytest

from repro.datasets import toy_rt_dataset
from repro.engine import MethodEvaluator, Series, transaction_config
from repro.exceptions import ConfigurationError, QueryError
from repro.frontend import DataExportModule, export_series_csv
from repro.frontend.editors import ConfigurationEditor, QueriesEditor
from repro.queries import Query


class TestExportModule:
    def test_export_dataset_and_workload(self, tmp_path, rt_dataset):
        exporter = DataExportModule(tmp_path)
        dataset_path = exporter.export_dataset(rt_dataset)
        assert dataset_path.exists()
        editor = QueriesEditor(rt_dataset)
        workload = editor.generate(n_queries=5, seed=1)
        assert exporter.export_workload(workload).exists()

    def test_export_series_csv(self, tmp_path):
        series = Series(name="s", x_label="k", y_label="are")
        series.append(2, 0.5)
        path = export_series_csv(series, tmp_path / "series.csv")
        content = path.read_text()
        assert "k,are" in content
        assert "2,0.5" in content

    def test_export_evaluation_writes_summary_and_dataset(self, tmp_path, rt_dataset):
        report = MethodEvaluator(rt_dataset).evaluate(
            transaction_config("apriori", k=3, m=1)
        )
        exporter = DataExportModule(tmp_path)
        written = exporter.export_evaluation(report)
        assert written["anonymized"].exists()
        summary = json.loads(written["summary"].read_text())
        assert "are" in summary
        assert "phase_seconds" in summary

    def test_export_hierarchies_and_policies(self, tmp_path, rt_dataset):
        configuration = ConfigurationEditor(rt_dataset)
        configuration.generate_hierarchies(fanout=3)
        configuration.generate_policies(k=3)
        exporter = DataExportModule(tmp_path)
        hierarchy_paths = exporter.export_hierarchies(configuration.hierarchies)
        assert all(path.exists() for path in hierarchy_paths.values())
        policy_paths = exporter.export_policies(
            configuration.privacy_policy, configuration.utility_policy
        )
        assert set(policy_paths) == {"privacy", "utility"}


class TestConfigurationEditor:
    def test_generate_and_browse_hierarchies(self, rt_dataset):
        editor = ConfigurationEditor(rt_dataset)
        generated = editor.generate_hierarchies(attributes=["Age"], fanout=3)
        assert "Age" in generated
        rows = editor.browse_hierarchy("Age")
        assert rows and rows[0][-1] == "*"

    def test_browse_unknown_hierarchy_raises(self, rt_dataset):
        with pytest.raises(ConfigurationError):
            ConfigurationEditor(rt_dataset).browse_hierarchy("Age")

    def test_save_and_reload_hierarchies(self, tmp_path, rt_dataset):
        editor = ConfigurationEditor(rt_dataset)
        editor.generate_hierarchies(attributes=["Education"], fanout=3)
        editor.save_hierarchies(tmp_path)
        fresh = ConfigurationEditor(rt_dataset)
        loaded = fresh.load_hierarchy_directory(tmp_path)
        assert "Education" in loaded

    def test_save_without_hierarchies_raises(self, tmp_path, rt_dataset):
        with pytest.raises(ConfigurationError):
            ConfigurationEditor(rt_dataset).save_hierarchies(tmp_path)

    def test_generate_and_save_policies(self, tmp_path, rt_dataset):
        editor = ConfigurationEditor(rt_dataset)
        privacy, utility = editor.generate_policies(k=4)
        assert privacy.k == 4
        written = editor.save_policies(tmp_path)
        reloaded = ConfigurationEditor(rt_dataset)
        assert reloaded.load_privacy_policy(written["privacy"]).k == 4
        assert len(reloaded.load_utility_policy(written["utility"])) == len(utility)

    def test_save_policies_without_any_raises(self, tmp_path, rt_dataset):
        with pytest.raises(ConfigurationError):
            ConfigurationEditor(rt_dataset).save_policies(tmp_path)


class TestQueriesEditor:
    def test_generate_edit_save_load(self, tmp_path, rt_dataset):
        editor = QueriesEditor(rt_dataset)
        workload = editor.generate(n_queries=6, seed=2)
        initial = len(workload)
        editor.add_query(Query(items=["i001"]))
        assert len(editor.workload) == initial + 1
        editor.remove_query(0)
        assert len(editor.workload) == initial
        path = editor.save(tmp_path / "workload.json")
        fresh = QueriesEditor(rt_dataset)
        assert len(fresh.load(path)) == initial

    def test_describe_lists_queries(self, rt_dataset):
        editor = QueriesEditor(rt_dataset)
        editor.add_query(Query(items=["i001"]))
        descriptions = editor.describe()
        assert len(descriptions) == 1
        assert "i001" in descriptions[0]

    def test_operations_without_workload_raise(self, rt_dataset, tmp_path):
        editor = QueriesEditor(rt_dataset)
        with pytest.raises(QueryError):
            editor.remove_query(0)
        with pytest.raises(QueryError):
            editor.save(tmp_path / "w.json")
        assert editor.describe() == []

    def test_dataset_editor_round_trip_still_loadable(self, tmp_path):
        # The demonstration edits the dataset and overwrites it; the stored
        # file must load back into a session.
        from repro.frontend import Session

        session = Session(toy_rt_dataset())
        session.dataset_editor.set_value(0, "Education", "PhD")
        path = session.dataset_editor.save(tmp_path / "edited.csv")
        reopened = Session.from_csv(path, transaction_columns=["Items"])
        assert reopened.dataset[0]["Education"] == "PhD"
