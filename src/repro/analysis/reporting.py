"""Text and JSON reporters for analysis runs."""

from __future__ import annotations

import json

from repro.analysis.core import AnalysisReport, Finding


def _status(finding: Finding) -> str:
    if finding.suppressed:
        return "suppressed"
    if finding.baselined:
        return "baselined"
    return "new"


def render_text(report: AnalysisReport, verbose: bool = False) -> str:
    """Human-readable report: one line per finding plus a summary line.

    By default only *new* findings are listed; ``verbose`` also lists the
    suppressed and baselined ones (tagged), which is how you audit what the
    escape hatches are currently hiding.
    """
    lines: list[str] = []
    for finding in report.findings:
        if not verbose and not finding.is_new:
            continue
        tag = "" if finding.is_new else f" ({_status(finding)})"
        where = f" in {finding.symbol}" if finding.symbol else ""
        lines.append(
            f"{finding.location()}: {finding.code} {finding.message}{where}{tag}"
        )
    lines.append(
        f"{len(report.new_findings)} new finding(s), "
        f"{len(report.suppressed_findings)} suppressed, "
        f"{len(report.baselined_findings)} baselined "
        f"({report.analyzed_files} files analyzed)"
    )
    return "\n".join(lines)


def render_json(report: AnalysisReport) -> str:
    """Machine-readable report (stable key order, one object per finding)."""
    payload = {
        "summary": {
            "analyzed_files": report.analyzed_files,
            "new": len(report.new_findings),
            "suppressed": len(report.suppressed_findings),
            "baselined": len(report.baselined_findings),
            "exit_code": report.exit_code,
        },
        "findings": [
            {
                "code": finding.code,
                "message": finding.message,
                "path": finding.path,
                "line": finding.line,
                "column": finding.column,
                "symbol": finding.symbol,
                "status": _status(finding),
                "reason": finding.suppression_reason or finding.baseline_reason,
            }
            for finding in report.findings
        ],
    }
    return json.dumps(payload, indent=2)
