"""Tests for automatic policy generation."""

import pytest

from repro.datasets import generate_market_basket, value_frequencies
from repro.exceptions import PolicyError
from repro.hierarchy import build_item_hierarchy
from repro.policies import (
    generate_policies,
    generate_privacy_policy,
    generate_utility_policy,
    policy_summary,
)


@pytest.fixture
def baskets():
    return generate_market_basket(n_records=300, n_items=20, seed=4)


class TestPrivacyGeneration:
    def test_items_strategy_covers_every_item(self, baskets):
        policy = generate_privacy_policy(baskets, k=5, strategy="items")
        assert len(policy) == len(baskets.item_universe())
        assert policy.k == 5

    def test_rare_strategy_picks_low_support_items(self, baskets):
        policy = generate_privacy_policy(baskets, k=5, strategy="rare", rare_percentile=25)
        supports = value_frequencies(baskets, "Items")
        protected = policy.protected_items
        assert protected
        max_protected = max(supports[item] for item in protected)
        median_support = sorted(supports.values())[len(supports) // 2]
        assert max_protected <= median_support

    def test_itemsets_strategy_draws_from_records(self, baskets):
        policy = generate_privacy_policy(
            baskets, k=3, strategy="itemsets", constraint_size=2, n_constraints=10, seed=1
        )
        assert 1 <= len(policy) <= 10
        for constraint in policy:
            assert 1 <= len(constraint) <= 2
            # Constraints come from real records, so they have support.
            assert policy.constraint_support(baskets, constraint) > 0

    def test_itemsets_strategy_is_deterministic(self, baskets):
        a = generate_privacy_policy(baskets, k=3, strategy="itemsets", seed=7)
        b = generate_privacy_policy(baskets, k=3, strategy="itemsets", seed=7)
        assert [c.items for c in a] == [c.items for c in b]

    def test_unknown_strategy_rejected(self, baskets):
        with pytest.raises(PolicyError):
            generate_privacy_policy(baskets, k=3, strategy="bogus")


class TestUtilityGeneration:
    def test_frequency_strategy_partitions_universe(self, baskets):
        policy = generate_utility_policy(baskets, strategy="frequency", group_size=4)
        assert policy.covered_items == baskets.item_universe()
        for constraint in policy:
            assert len(constraint) <= 4

    def test_singletons_strategy(self, baskets):
        policy = generate_utility_policy(baskets, strategy="singletons")
        assert all(len(constraint) == 1 for constraint in policy)

    def test_hierarchy_strategy_groups_by_subtrees(self, baskets):
        hierarchy = build_item_hierarchy(baskets.item_universe(), fanout=4)
        policy = generate_utility_policy(
            baskets, strategy="hierarchy", hierarchy=hierarchy, hierarchy_depth=1
        )
        assert policy.covered_items == baskets.item_universe()
        assert len(policy) >= 2

    def test_hierarchy_strategy_requires_hierarchy(self, baskets):
        with pytest.raises(PolicyError):
            generate_utility_policy(baskets, strategy="hierarchy")

    def test_unknown_strategy_rejected(self, baskets):
        with pytest.raises(PolicyError):
            generate_utility_policy(baskets, strategy="bogus")


class TestCombinedGeneration:
    def test_generate_policies_pair(self, baskets):
        privacy, utility = generate_policies(baskets, k=4, group_size=5)
        assert privacy.k == 4
        assert utility.covered_items == baskets.item_universe()

    def test_policy_summary_fields(self, baskets):
        privacy, utility = generate_policies(baskets, k=4)
        summary = policy_summary(privacy, utility)
        assert summary["k"] == 4
        assert summary["privacy_constraints"] == len(privacy)
        assert summary["utility_constraints"] == len(utility)
        assert summary["covered_items"] == len(baskets.item_universe())
