"""The REP0xx rule catalogue.

Importing this package registers every rule with the framework registry
(:func:`repro.analysis.core.all_rules` does so lazily).  One module per rule
keeps each invariant's full story — detection logic, rationale, escape
hatches — in one reviewable place.
"""

from __future__ import annotations

from repro.analysis.rules import (  # noqa: F401  (imported for registration)
    rep001_shared_memory,
    rep002_cache_discipline,
    rep003_kernel_parity,
    rep004_hot_loops,
    rep005_exceptions,
    rep006_process_safety,
    rep007_retry_discipline,
    rep008_durability,
    rep009_resource_escape,
    rep010_stale_snapshot,
    rep011_dtype_contracts,
)
