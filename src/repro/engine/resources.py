"""Experiment resources: hierarchies, policies and query workloads.

This is the headless counterpart of SECRETA's Policy Specification Module and
Configuration/Queries Editors: it holds the inputs an anonymization run needs
besides the dataset itself, and can generate any missing ones automatically
(hierarchies with the builders of :mod:`repro.hierarchy`, privacy/utility
policies with the strategies of :mod:`repro.policies`, query workloads with
:func:`repro.queries.generate_query_workload`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.datasets.dataset import Dataset
from repro.datasets.domains import DatasetDomains
from repro.engine.config import AnonymizationConfig
from repro.hierarchy.builders import build_hierarchies_for_dataset, build_item_hierarchy
from repro.hierarchy.hierarchy import Hierarchy
from repro.policies.generation import generate_privacy_policy, generate_utility_policy
from repro.policies.privacy import PrivacyPolicy
from repro.policies.utility import UtilityPolicy
from repro.queries.workload import QueryWorkload, generate_query_workload


@dataclass
class ExperimentResources:
    """The non-dataset inputs of an anonymization experiment."""

    hierarchies: dict[str, Hierarchy] = field(default_factory=dict)
    item_hierarchy: Hierarchy | None = None
    privacy_policy: PrivacyPolicy | None = None
    utility_policy: UtilityPolicy | None = None
    workload: QueryWorkload | None = None
    #: Attribute-domain snapshot of the *original* dataset, captured at
    #: prepare time; query estimation resolves hierarchy-free generalized
    #: labels against it (the ``"original"`` universe mode).
    domains: DatasetDomains | None = None

    @classmethod
    def prepare(
        cls,
        dataset: Dataset,
        config: AnonymizationConfig,
        hierarchies: dict[str, Hierarchy] | None = None,
        item_hierarchy: Hierarchy | None = None,
        privacy_policy: PrivacyPolicy | None = None,
        utility_policy: UtilityPolicy | None = None,
        workload: QueryWorkload | None = None,
        workload_queries: int = 50,
        seed: int = 0,
        domains: DatasetDomains | None = None,
    ) -> "ExperimentResources":
        """Assemble resources for ``config``, generating whatever is missing."""
        resources = cls(
            hierarchies=dict(hierarchies or {}),
            item_hierarchy=item_hierarchy,
            privacy_policy=privacy_policy,
            utility_policy=utility_policy,
            workload=workload,
            domains=domains,
        )
        resources.ensure_for(dataset, config, workload_queries=workload_queries, seed=seed)
        return resources

    # -- completion ---------------------------------------------------------------
    def ensure_for(
        self,
        dataset: Dataset,
        config: AnonymizationConfig,
        workload_queries: int = 50,
        seed: int = 0,
    ) -> None:
        """Generate any resource the configuration needs but does not have."""
        transaction_attribute = self._transaction_attribute(dataset, config)
        if config.relational_algorithm is not None:
            self._ensure_relational_hierarchies(dataset, config)
        if config.transaction_algorithm is not None and transaction_attribute:
            self._ensure_item_hierarchy(dataset, config, transaction_attribute)
            self._ensure_policies(dataset, config, transaction_attribute)
        if self.domains is None and len(dataset):
            # Snapshot the original attribute domains before anonymization:
            # universe-aware ARE resolves generalized labels against them.
            self.domains = DatasetDomains.capture(dataset)
        if self.workload is None and self._can_generate_workload(dataset):
            self.workload = generate_query_workload(
                dataset, n_queries=workload_queries, seed=seed
            )

    def _can_generate_workload(self, dataset: Dataset) -> bool:
        """Whether the dataset has anything a generated workload could query.

        A dataset with no quasi-identifier relational attributes and no
        transaction attribute (or no records) cannot seed queries; the
        workload then stays ``None`` and the evaluator skips ARE instead of
        crashing on generation.
        """
        if not len(dataset):
            return False
        if dataset.schema.transaction_names:
            return True
        return any(
            attribute.quasi_identifier for attribute in dataset.schema.relational
        )

    def _transaction_attribute(
        self, dataset: Dataset, config: AnonymizationConfig
    ) -> str | None:
        if config.transaction_attribute:
            return config.transaction_attribute
        names = dataset.schema.transaction_names
        return names[0] if names else None

    def _relational_attributes(
        self, dataset: Dataset, config: AnonymizationConfig
    ) -> list[str]:
        if config.relational_attributes is not None:
            return list(config.relational_attributes)
        return [
            attribute.name
            for attribute in dataset.schema.relational
            if attribute.quasi_identifier
        ]

    def _ensure_relational_hierarchies(
        self, dataset: Dataset, config: AnonymizationConfig
    ) -> None:
        needed = [
            name
            for name in self._relational_attributes(dataset, config)
            if name not in self.hierarchies
        ]
        if needed:
            self.hierarchies.update(
                build_hierarchies_for_dataset(
                    dataset, fanout=config.hierarchy_fanout, attributes=needed
                )
            )

    def _ensure_item_hierarchy(
        self, dataset: Dataset, config: AnonymizationConfig, attribute: str
    ) -> None:
        if self.item_hierarchy is None:
            self.item_hierarchy = build_item_hierarchy(
                dataset.item_universe(attribute),
                fanout=config.hierarchy_fanout,
                attribute=attribute,
            )

    def _ensure_policies(
        self, dataset: Dataset, config: AnonymizationConfig, attribute: str
    ) -> None:
        from repro.algorithms.registry import get_spec

        spec = get_spec(config.transaction_algorithm)
        if not spec.uses_policies:
            return
        if self.privacy_policy is None or self.privacy_policy.k != config.k:
            self.privacy_policy = generate_privacy_policy(
                dataset,
                k=config.k,
                strategy=config.privacy_strategy,
                attribute=attribute,
            )
        if self.utility_policy is None:
            self.utility_policy = generate_utility_policy(
                dataset,
                strategy=config.utility_strategy,
                attribute=attribute,
                group_size=config.utility_group_size,
                hierarchy=self.item_hierarchy,
            )

    # -- reporting -----------------------------------------------------------------
    def hierarchies_with_items(self, transaction_attribute: str | None) -> dict[str, Hierarchy]:
        """All hierarchies keyed by attribute, including the item hierarchy."""
        combined = dict(self.hierarchies)
        if self.item_hierarchy is not None and transaction_attribute:
            combined[transaction_attribute] = self.item_hierarchy
        return combined

    def summary(self) -> dict:
        return {
            "hierarchies": sorted(self.hierarchies),
            "item_hierarchy": self.item_hierarchy is not None,
            "privacy_constraints": len(self.privacy_policy) if self.privacy_policy else 0,
            "utility_constraints": len(self.utility_policy) if self.utility_policy else 0,
            "workload_queries": len(self.workload) if self.workload else 0,
            "domains": self.domains.summary() if self.domains else None,
        }
