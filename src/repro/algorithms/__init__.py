"""The anonymization algorithms integrated by SECRETA.

Four relational algorithms (Incognito, Top-down specialization, Cluster-based
generalization, Full-subtree bottom-up), five transaction algorithms (COAT,
PCTA, Apriori, LRA, VPA) and the three RT bounding methods (Rmerger, Tmerger,
RTmerger) that combine one algorithm of each kind.
"""

from __future__ import annotations

from repro.algorithms.base import (
    AnonymizationResult,
    Anonymizer,
    PhaseTimer,
    relational_quasi_identifiers,
)
from repro.algorithms.registry import (
    AlgorithmSpec,
    algorithm_names,
    bounding_methods,
    get_spec,
    relational_algorithms,
    transaction_algorithms,
)
from repro.algorithms.relational import (
    ClusterAnonymizer,
    FullSubtreeBottomUp,
    Incognito,
    TopDownSpecialization,
)
from repro.algorithms.rt import (
    Rmerger,
    RTmerger,
    RtBoundingAnonymizer,
    RtCombination,
    Tmerger,
    algorithm_pairs,
    combination_count,
    iter_combinations,
)
from repro.algorithms.transaction import (
    AprioriAnonymizer,
    Coat,
    LraAnonymizer,
    Pcta,
    VpaAnonymizer,
)

__all__ = [
    "AnonymizationResult",
    "Anonymizer",
    "PhaseTimer",
    "relational_quasi_identifiers",
    "AlgorithmSpec",
    "algorithm_names",
    "bounding_methods",
    "get_spec",
    "relational_algorithms",
    "transaction_algorithms",
    "ClusterAnonymizer",
    "FullSubtreeBottomUp",
    "Incognito",
    "TopDownSpecialization",
    "Rmerger",
    "RTmerger",
    "RtBoundingAnonymizer",
    "RtCombination",
    "Tmerger",
    "algorithm_pairs",
    "combination_count",
    "iter_combinations",
    "AprioriAnonymizer",
    "Coat",
    "LraAnonymizer",
    "Pcta",
    "VpaAnonymizer",
]
