"""Tests for the interpretation-index subsystem (repro.index)."""

import pytest

from repro.datasets import Attribute, Dataset, Schema
from repro.hierarchy import build_item_hierarchy
from repro.index import InvertedIndex, LabelInterpreter, interpreter_for
from repro.metrics import SUPPRESSED


class TestLabelInterpreter:
    def test_item_group_resolution(self):
        interpreter = LabelInterpreter(universe={"a", "b", "c"})
        assert interpreter.leaves("(a,b)") == frozenset({"a", "b"})
        assert interpreter.size("(a,b)") == 2

    def test_root_resolves_to_universe_without_hierarchy(self):
        interpreter = LabelInterpreter(universe={"a", "b", "c"})
        assert interpreter.leaves("*") == frozenset({"a", "b", "c"})
        assert interpreter.cost("*") == pytest.approx(1.0)

    def test_root_resolves_to_hierarchy_leaves(self):
        hierarchy = build_item_hierarchy(["a", "b", "c", "d"], fanout=2)
        interpreter = LabelInterpreter(hierarchy)
        assert interpreter.leaves("*") == frozenset({"a", "b", "c", "d"})

    def test_suppression_marker_is_empty(self):
        interpreter = LabelInterpreter(universe={"a", "b"})
        assert interpreter.leaves(SUPPRESSED) == frozenset()
        assert interpreter.cost(SUPPRESSED) == 0.0

    def test_original_item_costs_nothing(self):
        interpreter = LabelInterpreter(universe={"a", "b", "c"})
        assert interpreter.cost("a") == 0.0

    def test_cost_scales_with_group_size(self):
        interpreter = LabelInterpreter(universe={"a", "b", "c", "d", "e"})
        assert interpreter.cost("(a,b)") == pytest.approx(0.25)
        assert interpreter.cost("(a,b,c,d,e)") == pytest.approx(1.0)

    def test_restricted_leaves_intersects_universe(self):
        interpreter = LabelInterpreter(universe={"a", "b"})
        assert interpreter.restricted_leaves("(a,z)") == frozenset({"a"})
        # Unrestricted resolution keeps the out-of-universe member.
        assert interpreter.leaves("(a,z)") == frozenset({"a", "z"})

    def test_span_memoizes_non_numeric_labels(self):
        interpreter = LabelInterpreter()
        assert interpreter.span("[10-20]") == (10.0, 20.0)
        assert interpreter.span("not-a-range") is None
        assert interpreter.span("not-a-range") is None  # cached miss stays a miss

    def test_covered_items_unions_restricted_leaves(self):
        interpreter = LabelInterpreter(universe={"a", "b", "c", "d"})
        covered = interpreter.covered_items(frozenset({"(a,b)", "c", SUPPRESSED}))
        assert covered == frozenset({"a", "b", "c"})

    def test_best_costs_picks_cheapest_covering_label(self):
        interpreter = LabelInterpreter(universe={"a", "b", "c", "d", "e"})
        best = interpreter.best_costs(frozenset({"(a,b)", "a"}))
        assert best["a"] == 0.0  # the intact label is cheaper than its group
        assert best["b"] == pytest.approx(0.25)
        assert "c" not in best

    def test_best_costs_clamped_to_one(self):
        # A hierarchy over more leaves than the dataset universe can produce
        # per-label costs above 1; utility loss never charges more than 1.
        hierarchy = build_item_hierarchy(["a", "b", "c", "d", "e", "f"], fanout=6)
        interpreter = LabelInterpreter(hierarchy, universe={"a", "b"})
        assert max(interpreter.best_costs(frozenset({"*"})).values()) == 1.0

    def test_frequency_weights_split_support_uniformly(self):
        interpreter = LabelInterpreter(universe={"a", "b", "c", "d"})
        weights = interpreter.frequency_weights(frozenset({"(a,b)", "a"}))
        assert weights["a"] == pytest.approx(0.5 + 1.0)
        assert weights["b"] == pytest.approx(0.5)

    def test_leaves_are_cached(self):
        interpreter = LabelInterpreter(universe={"a", "b"})
        assert interpreter.leaves("(a,b)") is interpreter.leaves("(a,b)")


class TestInterpreterFor:
    def test_shared_instance_per_pair(self):
        first = interpreter_for(None, {"a", "b"})
        second = interpreter_for(None, {"b", "a"})
        assert first is second

    def test_distinct_universes_get_distinct_instances(self):
        assert interpreter_for(None, {"a"}) is not interpreter_for(None, {"a", "b"})

    def test_hierarchies_are_cached_separately(self):
        hierarchy = build_item_hierarchy(["a", "b"], fanout=2)
        assert interpreter_for(hierarchy) is interpreter_for(hierarchy)
        assert interpreter_for(hierarchy) is not interpreter_for(None)

    def test_cached_interpreter_does_not_keep_hierarchy_alive(self):
        import gc
        import weakref

        hierarchy = build_item_hierarchy(["a", "b", "c"], fanout=2)
        interpreter = interpreter_for(hierarchy, {"a", "b", "c"})
        assert interpreter.leaves("*") == frozenset({"a", "b", "c"})
        ref = weakref.ref(hierarchy)
        del hierarchy
        gc.collect()
        assert ref() is None  # the cache entry must not pin the hierarchy
        # Already-cached lookups still serve; new hierarchy lookups fail loudly.
        assert interpreter.leaves("*") == frozenset({"a", "b", "c"})
        with pytest.raises(ReferenceError):
            interpreter.leaves("never-seen-label")


@pytest.fixture
def index(simple_transactions):
    return InvertedIndex.from_dataset(simple_transactions)


class TestInvertedIndex:
    def test_postings_and_frequency(self, index, simple_transactions):
        expected = {
            i
            for i, record in enumerate(simple_transactions)
            if "a" in record["Items"]
        }
        assert index.postings("a") == frozenset(expected)
        assert index.frequency("a") == len(expected)
        assert index.postings("unknown") == frozenset()

    def test_universe(self, index):
        assert index.universe == frozenset({"a", "b", "c", "d", "e"})
        assert "a" in index
        assert len(index) == 5

    def test_union_matches_manual_union(self, index):
        manual = set(index.postings("a")) | set(index.postings("d"))
        assert index.union({"a", "d"}) == frozenset(manual)

    def test_union_is_memoized(self, index):
        assert index.union(frozenset({"a", "d"})) is index.union(frozenset({"a", "d"}))

    def test_uncached_union_matches_cached(self, simple_transactions):
        cached = InvertedIndex.from_dataset(simple_transactions)
        uncached = InvertedIndex.from_dataset(simple_transactions, cached=False)
        for group in ({"a"}, {"a", "b"}, {"c", "d", "e"}, set()):
            assert cached.union(group) == uncached.union(group)

    def test_joint_support_counts_intersection(self, index, simple_transactions):
        expected = sum(
            1
            for record in simple_transactions
            if record["Items"] & {"a"} and record["Items"] & {"b", "c"}
        )
        assert index.joint_support([{"a"}, {"b", "c"}]) == expected

    def test_joint_support_empty_group_is_zero(self, index):
        assert index.joint_support([{"a"}, set()]) == 0
        assert index.joint_support([]) == 0
