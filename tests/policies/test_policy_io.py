"""Tests for policy file input/output."""

import pytest

from repro.exceptions import PolicyError
from repro.policies import (
    PrivacyPolicy,
    UtilityPolicy,
    load_privacy_policy,
    load_utility_policy,
    read_privacy_policy_text,
    read_utility_policy_text,
    save_privacy_policy,
    save_utility_policy,
    write_privacy_policy_text,
    write_utility_policy_text,
)


class TestPrivacyPolicyIo:
    def test_round_trip(self, tmp_path):
        policy = PrivacyPolicy([["a"], ["b", "c"]], k=7)
        path = save_privacy_policy(policy, tmp_path / "privacy.txt")
        loaded = load_privacy_policy(path)
        assert loaded.k == 7
        assert {c.items for c in loaded} == {c.items for c in policy}

    def test_text_format(self):
        policy = PrivacyPolicy([["b", "a"]], k=3)
        text = write_privacy_policy_text(policy)
        assert text.splitlines()[0] == "k=3"
        assert "a b" in text

    def test_missing_header_rejected(self):
        with pytest.raises(PolicyError):
            read_privacy_policy_text("a b\nc\n")

    def test_bad_k_rejected(self):
        with pytest.raises(PolicyError):
            read_privacy_policy_text("k=abc\na\n")

    def test_empty_file_rejected(self):
        with pytest.raises(PolicyError):
            read_privacy_policy_text("")
        with pytest.raises(PolicyError):
            read_privacy_policy_text("k=5\n")

    def test_missing_file(self, tmp_path):
        with pytest.raises(PolicyError):
            load_privacy_policy(tmp_path / "missing.txt")


class TestUtilityPolicyIo:
    def test_round_trip(self, tmp_path):
        policy = UtilityPolicy([["a", "b"], ["c"]])
        path = save_utility_policy(policy, tmp_path / "utility.txt")
        loaded = load_utility_policy(path)
        assert {c.items for c in loaded} == {c.items for c in policy}

    def test_text_format(self):
        policy = UtilityPolicy([["b", "a"]])
        assert write_utility_policy_text(policy) == "a b\n"

    def test_empty_file_rejected(self):
        with pytest.raises(PolicyError):
            read_utility_policy_text("\n\n")

    def test_overlap_rejected_on_load(self):
        with pytest.raises(PolicyError):
            read_utility_policy_text("a b\nb c\n")
