"""Tests for the text plotting module."""

import math

import pytest

from repro.engine import Series
from repro.engine.results import ComparisonReport, SweepResult
from repro.frontend import (
    Figure,
    comparison_figure,
    frequency_figure,
    phase_runtime_figure,
    render_bar_chart,
    render_histogram,
    render_line_chart,
)


def make_series(name="s", ys=(1.0, 2.0, 3.0)):
    series = Series(name=name, x_label="k", y_label="are")
    for x, y in enumerate(ys):
        series.append(x, y)
    return series


class TestBarChart:
    def test_contains_labels_and_values(self):
        text = render_bar_chart(["a", "bb"], [1, 2], title="demo")
        assert "demo" in text
        assert " a |" in text
        assert "bb |" in text
        assert "2" in text

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            render_bar_chart(["a"], [1, 2])

    def test_empty_chart(self):
        assert "(no data)" in render_bar_chart([], [], title="empty")

    def test_max_rows_truncates(self):
        text = render_bar_chart(list("abcdef"), range(6), max_rows=2)
        assert "c |" not in text


class TestHistogramRendering:
    def test_categorical(self, toy_dataset):
        from repro.datasets import attribute_histogram

        text = render_histogram(attribute_histogram(toy_dataset, "Education"))
        assert "Histogram of Education" in text
        assert "Bachelors" in text

    def test_numeric(self, toy_dataset):
        from repro.datasets import attribute_histogram

        text = render_histogram(attribute_histogram(toy_dataset, "Age", bins=3))
        assert "Histogram of Age" in text
        assert "[" in text


class TestLineChart:
    def test_renders_axis_and_legend(self):
        text = render_line_chart([make_series("are-curve")], title="ARE vs k")
        assert "ARE vs k" in text
        assert "are-curve" in text
        assert "└" in text

    def test_multiple_series_use_distinct_markers(self):
        text = render_line_chart([make_series("a"), make_series("b", ys=(3, 2, 1))])
        assert "o a" in text
        assert "x b" in text

    def test_empty_and_infinite_series(self):
        assert "(no data)" in render_line_chart([])
        series = Series(name="inf", x_label="k", y_label="are")
        series.append(1, math.inf)
        assert "(no finite data)" in render_line_chart([series])


class TestFigures:
    def test_figure_rows_align_series(self):
        figure = Figure(title="f").add(make_series("a")).add(make_series("b", ys=(9, 8, 7)))
        rows = figure.to_rows()
        assert len(rows) == 3
        assert rows[0]["a"] == 1.0
        assert rows[0]["b"] == 9.0

    def test_figure_as_dict(self):
        figure = Figure(title="f", series=[make_series()])
        data = figure.as_dict()
        assert data["title"] == "f"
        assert len(data["series"]) == 1

    def test_phase_runtime_figure_is_bar(self):
        figure = phase_runtime_figure({"search": 0.5, "apply": 0.1})
        assert figure.kind == "bar"
        assert "search" in figure.to_text()

    def test_frequency_figure_skips_infinite_and_truncates(self):
        figure = frequency_figure({"a": 3, "b": math.inf, "c": 1}, title="freq", max_rows=5)
        labels = figure.series[0].x
        assert "b" not in labels
        assert labels[0] == "a"

    def test_comparison_figure_one_curve_per_configuration(self):
        sweep_a = SweepResult(
            configuration={"label": "A"}, parameter="k", values=[1, 2],
            series={"are": make_series("A:are", ys=(0.1, 0.2))},
        )
        sweep_b = SweepResult(
            configuration={"label": "B"}, parameter="k", values=[1, 2],
            series={"are": make_series("B:are", ys=(0.3, 0.4))},
        )
        report = ComparisonReport(parameter="k", values=[1, 2], sweeps=[sweep_a, sweep_b])
        figure = comparison_figure(report, "are")
        assert len(figure.series) == 2
        assert "are vs k" in figure.title
