"""Columnar / bitset kernel layer for transaction attributes.

The row-oriented :class:`~repro.datasets.dataset.Dataset` stores itemsets as
per-record ``frozenset`` values — the right shape for anonymization
algorithms that group and rewrite *records*, and the wrong shape for the
set-algebra hot loops (posting-list unions, constraint support, utility
loss).  This package supplies the compact, vectorizable twin:

* :class:`ItemVocabulary` — ``item → token id`` over the sorted item universe,
* :class:`TransactionColumn` — a CSR-style tokenized item column
  (``indptr``/``tokens`` arrays) with lazily cached derived structures,
* :mod:`repro.columnar.bitset` — dense ``uint64`` posting bitsets with
  popcount-based union/intersection/support kernels.

``Dataset.columnar()`` builds and caches one :class:`TransactionColumn` per
transaction attribute; :class:`repro.index.InvertedIndex` and the transaction
metrics run on it.  See ``docs/columnar.md`` for the layout and
materialization rules.
"""

from repro.columnar.bitset import (
    WORD_BITS,
    bitset_from_indices,
    empty_bitset,
    indices_of,
    popcount,
    popcount_rows,
    posting_matrix,
    union_rows,
    word_count,
)
from repro.columnar.column import TransactionColumn
from repro.columnar.vocabulary import ItemVocabulary

__all__ = [
    "WORD_BITS",
    "ItemVocabulary",
    "TransactionColumn",
    "bitset_from_indices",
    "empty_bitset",
    "indices_of",
    "popcount",
    "popcount_rows",
    "posting_matrix",
    "union_rows",
    "word_count",
]
