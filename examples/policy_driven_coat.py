"""Constraint-based anonymization with COAT and PCTA.

The motivating applications of the paper — marketing studies over purchased
items, medical studies over diagnosis codes — often come with explicit
requirements: *these* item combinations must not identify anyone, and *those*
items are interchangeable for the analysis.  COAT and PCTA consume exactly
such privacy and utility policies instead of generalization hierarchies.

This example builds a market-basket dataset, expresses policies (both
hand-written and auto-generated), runs COAT and PCTA, and verifies that every
privacy constraint is satisfied while reporting how much utility each
algorithm preserved.

Run with::

    python examples/policy_driven_coat.py
"""

from __future__ import annotations

from repro import Session, transaction_config
from repro.algorithms import Coat, Pcta
from repro.metrics import candidate_support, utility_loss
from repro.policies import (
    PrivacyConstraint,
    PrivacyPolicy,
    UtilityPolicy,
    generate_policies,
    policy_summary,
)


def main() -> None:
    session = Session.generate_transactions(n_records=500, n_items=40, seed=23)
    dataset = session.dataset
    universe = sorted(dataset.item_universe())
    print(f"{len(dataset)} transactions over {len(universe)} items")

    # -- hand-written policies -------------------------------------------------------
    # Protect three rare item combinations with k=10, and declare the first
    # twelve items interchangeable in groups of four.
    privacy = PrivacyPolicy(
        [
            PrivacyConstraint([universe[-1]]),
            PrivacyConstraint([universe[-2], universe[-3]]),
            PrivacyConstraint([universe[-4], universe[-5]]),
        ],
        k=10,
    )
    utility = UtilityPolicy([universe[0:4], universe[4:8], universe[8:12]])

    coat_result = Coat(privacy, utility).anonymize(dataset)
    print("\nCOAT with hand-written policies")
    print("  utility loss:", round(coat_result.statistics["utility_loss"], 4))
    for constraint in privacy:
        support = candidate_support(coat_result.dataset, constraint.items)
        print(f"  constraint {sorted(constraint.items)}: support {support} (needs 0 or >= {privacy.k})")

    # -- auto-generated policies (Policy Specification Module) -------------------------
    auto_privacy, auto_utility = generate_policies(dataset, k=10, group_size=5)
    print("\nAuto-generated policies:", policy_summary(auto_privacy, auto_utility))

    pcta_result = Pcta(auto_privacy).anonymize(dataset)
    coat_auto_result = Coat(auto_privacy, auto_utility).anonymize(dataset)
    print("  COAT utility loss :", round(coat_auto_result.statistics["utility_loss"], 4))
    print("  PCTA utility loss :", round(pcta_result.statistics["utility_loss"], 4))
    print("  PCTA merges       :", pcta_result.statistics["merges"])

    # -- the same run through the engine (Evaluation mode) -------------------------------
    report = session.evaluate(transaction_config("coat", k=10, label="COAT k=10"))
    print("\nEvaluation-mode report for COAT:")
    print("  ARE :", round(report.are, 4))
    print("  UL  :", round(report.utility["transaction_ul"], 4))
    print("  item frequency error:", round(report.utility["item_frequency_error"], 4))

    # Double-check with the library metric that nothing was destroyed outright.
    assert utility_loss(dataset, coat_result.dataset) <= 1.0


if __name__ == "__main__":
    main()
