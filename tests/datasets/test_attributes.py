"""Tests for attribute and schema definitions."""

import pytest

from repro.datasets import Attribute, AttributeKind, Schema
from repro.exceptions import SchemaError


class TestAttribute:
    def test_convenience_constructors_set_kind(self):
        assert Attribute.categorical("Education").kind is AttributeKind.CATEGORICAL
        assert Attribute.numeric("Age").kind is AttributeKind.NUMERIC
        assert Attribute.transaction("Items").kind is AttributeKind.TRANSACTION

    def test_relational_and_transaction_flags(self):
        assert Attribute.numeric("Age").is_relational
        assert Attribute.categorical("Education").is_relational
        assert not Attribute.transaction("Items").is_relational
        assert Attribute.transaction("Items").is_transaction

    def test_quasi_identifier_defaults_to_true(self):
        assert Attribute.categorical("Education").quasi_identifier
        assert not Attribute.categorical("Disease", quasi_identifier=False).quasi_identifier

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Attribute("", AttributeKind.CATEGORICAL)

    def test_attributes_are_hashable_and_frozen(self):
        attribute = Attribute.numeric("Age")
        assert {attribute: 1}[Attribute.numeric("Age")] == 1
        with pytest.raises(AttributeError):
            attribute.name = "Other"


class TestSchema:
    def make_schema(self) -> Schema:
        return Schema(
            [
                Attribute.numeric("Age"),
                Attribute.categorical("Education"),
                Attribute.transaction("Items"),
                Attribute.categorical("Disease", quasi_identifier=False),
            ]
        )

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema([Attribute.numeric("Age"), Attribute.categorical("Age")])

    def test_relational_and_transaction_views(self):
        schema = self.make_schema()
        assert schema.relational_names == ["Age", "Education", "Disease"]
        assert schema.transaction_names == ["Items"]
        assert schema.is_rt_schema()

    def test_quasi_identifiers_view(self):
        schema = self.make_schema()
        names = [a.name for a in schema.quasi_identifiers]
        assert names == ["Age", "Education", "Items"]

    def test_lookup_and_index(self):
        schema = self.make_schema()
        assert schema["Education"].is_categorical
        assert schema.index_of("Items") == 2
        assert "Age" in schema
        assert "Missing" not in schema

    def test_unknown_attribute_raises(self):
        schema = self.make_schema()
        with pytest.raises(SchemaError):
            schema["Missing"]
        with pytest.raises(SchemaError):
            schema.index_of("Missing")

    def test_with_and_without_attribute_are_nondestructive(self):
        schema = self.make_schema()
        extended = schema.with_attribute(Attribute.categorical("Country"))
        assert "Country" in extended
        assert "Country" not in schema
        reduced = schema.without_attribute("Items")
        assert "Items" not in reduced
        assert "Items" in schema

    def test_renamed(self):
        schema = self.make_schema()
        renamed = schema.renamed("Age", "YearsOld")
        assert "YearsOld" in renamed
        assert "Age" not in renamed
        assert renamed["YearsOld"].is_numeric
        with pytest.raises(SchemaError):
            schema.renamed("Age", "Education")
        with pytest.raises(SchemaError):
            schema.renamed("Missing", "Whatever")

    def test_equality_and_iteration_order(self):
        schema = self.make_schema()
        assert schema == self.make_schema()
        assert [a.name for a in schema] == ["Age", "Education", "Items", "Disease"]
