"""Automatic generation of privacy and utility policies.

SECRETA's Policy Specification Module can generate policies automatically
"using the algorithms in [COAT]" when the data publisher does not provide
them.  The strategies implemented here follow that paper's experimental
setup:

Privacy policies
    * ``"items"`` — one constraint per item: every single item must be shared
      by at least ``k`` records (the most conservative, k^1-style policy).
    * ``"rare"`` — one constraint per item whose support is below a
      percentile threshold (rare items are the ones that identify people).
    * ``"itemsets"`` — random itemsets of a chosen size drawn from the data,
      modelling adversaries who know combinations of items.

Utility policies
    * ``"frequency"`` — sort items by support and group consecutive runs of
      ``group_size`` items: similar-popularity items are interchangeable.
    * ``"hierarchy"`` — one constraint per subtree rooted at the given level
      of an item hierarchy: semantically related items are interchangeable.
    * ``"singletons"`` — no generalization allowed (suppression only).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.datasets.dataset import Dataset
from repro.datasets.statistics import value_frequencies
from repro.exceptions import PolicyError
from repro.hierarchy.hierarchy import Hierarchy
from repro.policies.privacy import PrivacyConstraint, PrivacyPolicy
from repro.policies.utility import UtilityConstraint, UtilityPolicy


def generate_privacy_policy(
    dataset: Dataset,
    k: int,
    strategy: str = "items",
    attribute: str | None = None,
    rare_percentile: float = 25.0,
    constraint_size: int = 2,
    n_constraints: int | None = None,
    seed: int = 0,
) -> PrivacyPolicy:
    """Generate a privacy policy from the data (see module docstring)."""
    attribute = attribute or dataset.single_transaction_attribute()
    supports = value_frequencies(dataset, attribute)
    items = sorted(supports)
    if not items:
        raise PolicyError("cannot generate a privacy policy: no items in the data")

    if strategy == "items":
        constraints = [PrivacyConstraint([item]) for item in items]
    elif strategy == "rare":
        threshold = float(np.percentile(list(supports.values()), rare_percentile))
        rare = [item for item in items if supports[item] <= threshold]
        constraints = [PrivacyConstraint([item]) for item in rare]
        if not constraints:
            constraints = [PrivacyConstraint([min(items, key=lambda i: supports[i])])]
    elif strategy == "itemsets":
        if constraint_size < 1:
            raise PolicyError("constraint_size must be at least 1")
        rng = np.random.default_rng(seed)
        count = n_constraints or max(1, len(items) // 2)
        constraints = []
        seen: set[frozenset[str]] = set()
        # Draw itemsets from actual records so constraints have support > 0.
        record_sets = [
            sorted(record[attribute]) for record in dataset if record[attribute]
        ]
        attempts = 0
        while len(constraints) < count and attempts < 20 * count:
            attempts += 1
            basket = record_sets[int(rng.integers(len(record_sets)))]
            size = min(constraint_size, len(basket))
            picked = frozenset(
                rng.choice(basket, size=size, replace=False).tolist()
            )
            if picked and picked not in seen:
                seen.add(picked)
                constraints.append(PrivacyConstraint(picked))
    else:
        raise PolicyError(
            f"unknown privacy policy strategy {strategy!r}; "
            "expected 'items', 'rare' or 'itemsets'"
        )
    return PrivacyPolicy(constraints, k=k)


def generate_utility_policy(
    dataset: Dataset,
    strategy: str = "frequency",
    attribute: str | None = None,
    group_size: int = 4,
    hierarchy: Hierarchy | None = None,
    hierarchy_depth: int = 1,
) -> UtilityPolicy:
    """Generate a utility policy from the data (see module docstring)."""
    attribute = attribute or dataset.single_transaction_attribute()
    supports = value_frequencies(dataset, attribute)
    items = sorted(supports)
    if not items:
        raise PolicyError("cannot generate a utility policy: no items in the data")

    if strategy == "singletons":
        return UtilityPolicy([UtilityConstraint([item]) for item in items])
    if strategy == "frequency":
        if group_size < 1:
            raise PolicyError("group_size must be at least 1")
        by_support = sorted(items, key=lambda item: (-supports[item], item))
        groups = [
            by_support[i : i + group_size]
            for i in range(0, len(by_support), group_size)
        ]
        return UtilityPolicy([UtilityConstraint(group) for group in groups])
    if strategy == "hierarchy":
        if hierarchy is None:
            raise PolicyError("the 'hierarchy' strategy needs an item hierarchy")
        depth = min(hierarchy_depth, hierarchy.height)
        groups: list[list[str]] = []
        covered: set[str] = set()
        for label in hierarchy.nodes_at_depth(depth):
            leaves = [leaf for leaf in hierarchy.leaves(label) if leaf in supports]
            if leaves:
                groups.append(leaves)
                covered.update(leaves)
        leftovers = [item for item in items if item not in covered]
        groups.extend([[item] for item in leftovers])
        return UtilityPolicy([UtilityConstraint(group) for group in groups])
    raise PolicyError(
        f"unknown utility policy strategy {strategy!r}; "
        "expected 'frequency', 'hierarchy' or 'singletons'"
    )


def generate_policies(
    dataset: Dataset,
    k: int,
    privacy_strategy: str = "items",
    utility_strategy: str = "frequency",
    attribute: str | None = None,
    group_size: int = 4,
    hierarchy: Hierarchy | None = None,
    seed: int = 0,
) -> tuple[PrivacyPolicy, UtilityPolicy]:
    """Generate a matching (privacy, utility) policy pair for COAT/PCTA."""
    privacy = generate_privacy_policy(
        dataset, k=k, strategy=privacy_strategy, attribute=attribute, seed=seed
    )
    utility = generate_utility_policy(
        dataset,
        strategy=utility_strategy,
        attribute=attribute,
        group_size=group_size,
        hierarchy=hierarchy,
    )
    return privacy, utility


def policy_summary(privacy: PrivacyPolicy, utility: UtilityPolicy) -> dict:
    """A small report of the generated policies (used by the frontend)."""
    sizes = [len(constraint) for constraint in privacy]
    return {
        "k": privacy.k,
        "privacy_constraints": len(privacy),
        "max_constraint_size": privacy.max_constraint_size(),
        "avg_constraint_size": float(np.mean(sizes)) if sizes else 0.0,
        "utility_constraints": len(utility),
        "covered_items": len(utility.covered_items),
    }
