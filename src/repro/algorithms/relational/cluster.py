"""Cluster-based relational anonymization (Poulis et al., ECML/PKDD 2013).

The relational half of the RT-anonymization framework: records are grouped
into clusters of at least ``k`` members by a greedy nearest-neighbour
procedure, and every cluster is generalized to its minimum bounding
generalization — the value range of its members for numeric attributes, the
lowest common ancestor (or the explicit value set, when no hierarchy is
supplied) for categorical ones.  Unlike the full-domain algorithms the
recoding is *local*: different clusters may generalize the same value
differently, which preserves substantially more utility.

The produced clusters are also the starting point of the RT bounding methods
(Rmerger / Tmerger / RTmerger), which is why the cluster assignment is
reported in the result statistics.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.algorithms.base import (
    AnonymizationResult,
    Anonymizer,
    PhaseTimer,
    relational_quasi_identifiers,
    validate_k,
)
from repro.datasets.dataset import Dataset
from repro.exceptions import AlgorithmError
from repro.hierarchy.builders import format_interval
from repro.hierarchy.hierarchy import Hierarchy
from repro.metrics.relational import global_certainty_penalty
from repro.policies.utility import generalized_label


class _ClusterBounds:
    """Incrementally maintained bounding generalization of one growing cluster.

    Scoring a candidate record against the running bounds is O(#attributes),
    which keeps the greedy clustering loop close to linear.  The categorical
    cost uses the number of distinct values in the cluster (a lower bound of
    the LCA's leaf count); the exact hierarchy-based cost is only needed when
    the cluster is finally generalized.
    """

    def __init__(self, owner: "ClusterAnonymizer", dataset: Dataset, attributes, seed: int):
        self._owner = owner
        self._dataset = dataset
        self._attributes = list(attributes)
        #: name -> (low, high), or ``None`` while the cluster holds no numeric
        #: value for the attribute (a ``None`` seed must not anchor the bounds
        #: at 0 — missing values are skipped exactly as :meth:`add` does).
        self._numeric_bounds: dict[str, tuple[float, float] | None] = {}
        self._categorical_values: dict[str, set[str]] = {}
        for name in self._attributes:
            value = dataset[seed][name]
            if name in owner._numeric:
                self._numeric_bounds[name] = (
                    (float(value), float(value)) if value is not None else None
                )
            else:
                self._categorical_values[name] = (
                    {str(value)} if value is not None else set()
                )

    def cost_with(self, candidate: int) -> float:
        record = self._dataset[candidate]
        cost = 0.0
        for name in self._attributes:
            value = record[name]
            if name in self._owner._numeric:
                span = self._owner._domain_span[name]
                if span <= 0:
                    continue
                bounds = self._numeric_bounds[name]
                if value is not None:
                    number = float(value)
                    low, high = (
                        (number, number)
                        if bounds is None
                        else (min(bounds[0], number), max(bounds[1], number))
                    )
                elif bounds is None:
                    continue
                else:
                    low, high = bounds
                cost += (high - low) / span
            else:
                size = self._owner._domain_size[name]
                if size <= 1:
                    continue
                values = self._categorical_values[name]
                extra = 0 if value is None or str(value) in values else 1
                cost += (len(values) + extra - 1) / max(size - 1, 1)
        return cost / max(len(self._attributes), 1)

    def add(self, candidate: int) -> None:
        record = self._dataset[candidate]
        for name in self._attributes:
            value = record[name]
            if value is None:
                continue
            if name in self._owner._numeric:
                bounds = self._numeric_bounds[name]
                number = float(value)
                self._numeric_bounds[name] = (
                    (number, number)
                    if bounds is None
                    else (min(bounds[0], number), max(bounds[1], number))
                )
            else:
                self._categorical_values[name].add(str(value))


class _ClusterKernel:
    """Vectorized twin of :class:`_ClusterBounds`.

    Column arrays (from ``Dataset.columnar``) plus the running bounds of the
    cluster being grown, scoring *all* candidate records of one greedy step in
    a single array pass: numeric span widening via ``np.fmin``/``np.fmax``
    against the ``NaN``-missing value vectors, categorical membership via code
    comparison against the cluster's value-code mask.  The per-candidate costs
    are numerically identical to :meth:`_ClusterBounds.cost_with` — the same
    operations run in the same attribute order — so the greedy choice (first
    minimum) matches the scalar loop exactly.
    """

    def __init__(self, owner: "ClusterAnonymizer", dataset: Dataset, attributes):
        self._n_attributes = max(len(list(attributes)), 1)
        #: ("num", numbers, span, state index) / ("cat", cells, denominator,
        #: state index) per *contributing* attribute, in attribute order.
        self._specs: list[tuple] = []
        numeric_count = 0
        self._masks: list[np.ndarray] = []
        self._counts: list[int] = []
        for name in attributes:
            if name in owner._numeric:
                span = owner._domain_span[name]
                if span <= 0:
                    continue
                numbers = dataset.columnar(name).numbers
                self._specs.append(("num", numbers, span, numeric_count))
                numeric_count += 1
            else:
                size = owner._domain_size[name]
                if size <= 1:
                    continue
                cells, labels = dataset.columnar(name).string_codes()
                mask = np.zeros(len(labels) + 1, dtype=bool)
                mask[len(labels)] = True  # missing cells never add a new value
                self._specs.append(("cat", cells, max(size - 1, 1), len(self._masks)))
                self._masks.append(mask)
                self._counts.append(0)
        self._lo = np.full(numeric_count, np.inf)
        self._hi = np.full(numeric_count, -np.inf)

    def reset(self, seed: int) -> None:
        """Re-anchor the running bounds on a fresh cluster seeded at ``seed``."""
        for kind, cells_or_numbers, _parameter, position in self._specs:
            if kind == "num":
                value = cells_or_numbers[seed]
                missing = np.isnan(value)
                self._lo[position] = np.inf if missing else value
                self._hi[position] = -np.inf if missing else value
            else:
                mask = self._masks[position]
                mask[:-1] = False
                code = cells_or_numbers[seed]
                if code != mask.size - 1:
                    mask[code] = True
                    self._counts[position] = 1
                else:
                    self._counts[position] = 0

    def add(self, index: int) -> None:
        """Widen the bounds with record ``index`` (mirrors ``_ClusterBounds.add``)."""
        for kind, cells_or_numbers, _parameter, position in self._specs:
            if kind == "num":
                value = cells_or_numbers[index]
                if not np.isnan(value):
                    self._lo[position] = min(self._lo[position], value)
                    self._hi[position] = max(self._hi[position], value)
            else:
                mask = self._masks[position]
                code = cells_or_numbers[index]
                if code != mask.size - 1 and not mask[code]:
                    mask[code] = True
                    self._counts[position] += 1

    def costs(self, candidates: np.ndarray) -> np.ndarray:
        """Bounding-generalization NCP of the cluster widened by each candidate."""
        cost = np.zeros(candidates.size)
        for kind, cells_or_numbers, parameter, position in self._specs:
            if kind == "num":
                values = cells_or_numbers[candidates]
                width = np.fmax(self._hi[position], values) - np.fmin(
                    self._lo[position], values
                )
                cost += np.maximum(width, 0.0) / parameter
            else:
                extra = ~self._masks[position][cells_or_numbers[candidates]]
                cost += (self._counts[position] + extra - 1.0) / parameter
        return cost / self._n_attributes


class ClusterAnonymizer(Anonymizer):
    """Greedy k-member clustering with minimum-bounding generalization."""

    name = "cluster"
    data_kind = "relational"
    #: Grow clusters through the vectorized :class:`_ClusterKernel`; the
    #: scalar :class:`_ClusterBounds` loop (identical output) remains behind
    #: this switch as the equivalence reference.
    vectorized = True

    def __init__(
        self,
        k: int,
        hierarchies: Mapping[str, Hierarchy] | None = None,
        attributes: Sequence[str] | None = None,
        candidate_limit: int | None = None,
    ):
        self.k = int(k)
        self.hierarchies = dict(hierarchies or {})
        self.attributes = list(attributes) if attributes is not None else None
        #: Upper bound on how many unassigned records are scored when growing
        #: a cluster (``None`` scores the whole frontier).  The vectorized
        #: scoring kernel made the full frontier the default — the old
        #: accuracy cap of 250 is no longer needed for speed — but a limit can
        #: still be set to keep the greedy step near-linear on huge datasets.
        self.candidate_limit = candidate_limit

    def parameters(self) -> dict:
        return {
            "k": self.k,
            "attributes": self.attributes,
            "candidate_limit": self.candidate_limit,
        }

    # -- cluster cost model ------------------------------------------------------
    def _prepare(self, dataset: Dataset, attributes: Sequence[str]) -> None:
        self._numeric: set[str] = set()
        self._domain_span: dict[str, float] = {}
        self._domain_size: dict[str, int] = {}
        for name in attributes:
            attribute = dataset.schema[name]
            domain = [v for v in dataset.column(name) if v is not None]
            if (
                domain
                and attribute.is_numeric
                and all(isinstance(value, (int, float)) for value in domain)
            ):
                self._numeric.add(name)
                low, high = float(min(domain)), float(max(domain))
                self._domain_span[name] = max(high - low, 0.0)
            self._domain_size[name] = len(set(domain)) or 1

    def _cluster_cost(
        self, dataset: Dataset, attributes: Sequence[str], indices: Sequence[int]
    ) -> float:
        """NCP of the minimum bounding generalization of the given records."""
        cost = 0.0
        for name in attributes:
            values = [dataset[index][name] for index in indices]
            if name in self._numeric:
                span = self._domain_span[name]
                if span <= 0:
                    continue
                numeric_values = [float(v) for v in values if v is not None]
                if not numeric_values:
                    continue
                cost += (max(numeric_values) - min(numeric_values)) / span
            else:
                distinct = {str(v) for v in values if v is not None}
                size = self._domain_size[name]
                if size <= 1:
                    continue
                hierarchy = self.hierarchies.get(name)
                if hierarchy is not None and len(distinct) > 1:
                    ancestor = hierarchy.lowest_common_ancestor(distinct)
                    width = hierarchy.leaf_count(ancestor)
                else:
                    width = len(distinct)
                cost += (width - 1) / max(size - 1, 1)
        return cost / max(len(attributes), 1)

    def _generalized_values(
        self, dataset: Dataset, attributes: Sequence[str], indices: Sequence[int]
    ) -> dict[str, str]:
        """The published value per attribute for one cluster."""
        published: dict[str, str] = {}
        for name in attributes:
            values = [dataset[index][name] for index in indices]
            if name in self._numeric:
                numeric_values = [float(v) for v in values if v is not None]
                low, high = min(numeric_values), max(numeric_values)
                if low == high:
                    published[name] = (
                        str(int(low)) if float(low).is_integer() else str(low)
                    )
                else:
                    published[name] = format_interval(low, high)
            else:
                distinct = {str(v) for v in values if v is not None}
                if len(distinct) == 1:
                    published[name] = next(iter(distinct))
                else:
                    hierarchy = self.hierarchies.get(name)
                    if hierarchy is not None:
                        published[name] = hierarchy.lowest_common_ancestor(distinct)
                    else:
                        published[name] = generalized_label(distinct)
        return published

    # -- clustering -----------------------------------------------------------------
    def build_clusters(
        self, dataset: Dataset, attributes: Sequence[str] | None = None
    ) -> list[list[int]]:
        """Greedy k-member clustering; exposed for the RT bounding methods."""
        attributes = list(attributes or self.attributes or relational_quasi_identifiers(dataset))
        validate_k(self.k, len(dataset), "ClusterAnonymizer")
        self._prepare(dataset, attributes)
        if self.vectorized:
            clusters, leftovers = self._grow_clusters_vectorized(dataset, attributes)
        else:
            clusters, leftovers = self._grow_clusters_scalar(dataset, attributes)
        # Attach the leftovers (fewer than k records) to their cheapest cluster.
        for leftover in leftovers:
            best_position = None
            best_cost = None
            for position, cluster in enumerate(clusters):
                cost = self._cluster_cost(dataset, attributes, cluster + [leftover])
                if best_cost is None or cost < best_cost:
                    best_cost = cost
                    best_position = position
            if best_position is None:
                raise AlgorithmError(
                    "ClusterAnonymizer: cannot place leftover records; "
                    "the dataset is smaller than k"
                )
            clusters[best_position].append(leftover)
        return clusters

    def _grow_clusters_vectorized(
        self, dataset: Dataset, attributes: Sequence[str]
    ) -> tuple[list[list[int]], list[int]]:
        """Greedy growth with one whole-frontier kernel pass per added member."""
        kernel = _ClusterKernel(self, dataset, attributes)
        unassigned = np.arange(len(dataset), dtype=np.int64)
        clusters: list[list[int]] = []
        while unassigned.size >= self.k:
            seed = int(unassigned[0])
            unassigned = unassigned[1:]
            cluster = [seed]
            kernel.reset(seed)
            while len(cluster) < self.k:
                candidates = (
                    unassigned
                    if self.candidate_limit is None
                    else unassigned[: self.candidate_limit]
                )
                best_position = int(np.argmin(kernel.costs(candidates)))
                best_index = int(candidates[best_position])
                cluster.append(best_index)
                kernel.add(best_index)
                unassigned = np.delete(unassigned, best_position)
            clusters.append(cluster)
        return clusters, [int(index) for index in unassigned]

    def _grow_clusters_scalar(
        self, dataset: Dataset, attributes: Sequence[str]
    ) -> tuple[list[list[int]], list[int]]:
        """The per-candidate Python scoring loop (the kernel's reference)."""
        unassigned = list(range(len(dataset)))
        clusters: list[list[int]] = []
        while len(unassigned) >= self.k:
            seed = unassigned.pop(0)
            cluster = [seed]
            bounds = _ClusterBounds(self, dataset, attributes, seed)
            while len(cluster) < self.k:
                candidates = (
                    unassigned
                    if self.candidate_limit is None
                    else unassigned[: self.candidate_limit]
                )
                best_index = None
                best_cost = None
                for candidate in candidates:
                    cost = bounds.cost_with(candidate)
                    if best_cost is None or cost < best_cost:
                        best_cost = cost
                        best_index = candidate
                cluster.append(best_index)
                bounds.add(best_index)
                unassigned.remove(best_index)
            clusters.append(cluster)
        return clusters, unassigned

    def generalize_clusters(
        self,
        dataset: Dataset,
        clusters: Sequence[Sequence[int]],
        attributes: Sequence[str] | None = None,
        name_suffix: str = "cluster",
    ) -> Dataset:
        """Publish every cluster's minimum bounding generalization."""
        attributes = list(attributes or self.attributes or relational_quasi_identifiers(dataset))
        if not hasattr(self, "_domain_size") or not self._domain_size:
            self._prepare(dataset, attributes)
        anonymized = dataset.copy(name=f"{dataset.name}[{name_suffix}]")
        for cluster in clusters:
            published = self._generalized_values(dataset, attributes, cluster)
            for index in cluster:
                for attribute, value in published.items():
                    anonymized.set_value(index, attribute, value)
        return anonymized

    def anonymize(self, dataset: Dataset) -> AnonymizationResult:
        attributes = self.attributes or relational_quasi_identifiers(dataset)
        if not attributes:
            raise AlgorithmError(
                "ClusterAnonymizer: the dataset has no relational quasi-identifiers"
            )
        timer = PhaseTimer()
        with timer.phase("clustering"):
            clusters = self.build_clusters(dataset, attributes)
        with timer.phase("generalization"):
            anonymized = self.generalize_clusters(dataset, clusters, attributes)
        gcp = global_certainty_penalty(
            dataset, anonymized, attributes=attributes, hierarchies=self.hierarchies
        )
        sizes = [len(cluster) for cluster in clusters]
        return AnonymizationResult(
            dataset=anonymized,
            algorithm=self.name,
            parameters=self.parameters(),
            runtime_seconds=timer.total,
            phase_seconds=timer.phases,
            statistics={
                "clusters": len(clusters),
                "min_cluster_size": min(sizes) if sizes else 0,
                "max_cluster_size": max(sizes) if sizes else 0,
                "gcp": gcp,
                "cluster_assignment": [list(cluster) for cluster in clusters],
            },
        )
