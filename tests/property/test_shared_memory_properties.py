"""Property tests: the shared-memory export is a faithful, leak-free codec.

``attach(export(ds))`` must reproduce the dataset exactly — schema, records
(including ``None`` cells, mixed int/float numerics and empty itemsets) and
the pre-seeded columnar views — while the array payloads stay zero-copy,
read-only views into the segment.  Hypothesis drives random RT-datasets;
explicit cases pin the edges random data rarely hits: empty datasets, empty
attributes (all-``None`` numeric columns, all-empty itemsets) and record
counts that straddle the 64-bit word and 4096-bit block boundaries of the
posting bitsets.  Every path — normal, error and pool shutdown — must
unlink its segments.
"""

from __future__ import annotations

from multiprocessing import shared_memory

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.columnar.shared import SharedDatasetExport, attach
from repro.datasets import Attribute, Dataset, Schema
from repro.engine.pool import WorkerPool

ITEMS = [f"i{n}" for n in range(9)]

numeric_cells = st.one_of(
    st.none(),
    st.integers(-30, 30),
    st.floats(min_value=-10, max_value=10, allow_nan=False),
)
categorical_cells = st.sampled_from(["alpha", "beta", "γ-umlaut", None])
itemsets = st.sets(st.sampled_from(ITEMS), max_size=4)

dataset_rows = st.lists(
    st.fixed_dictionaries(
        {"Age": numeric_cells, "City": categorical_cells, "Items": itemsets}
    ),
    min_size=0,
    max_size=40,
)


def make_dataset(rows) -> Dataset:
    schema = Schema(
        [
            Attribute.numeric("Age"),
            Attribute.categorical("City"),
            Attribute.transaction("Items"),
        ]
    )
    return Dataset(schema, rows, name="property-rt")


def segment_is_gone(name: str) -> bool:
    try:
        shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return True
    return False


def assert_roundtrip(dataset: Dataset) -> None:
    """Export → attach → equality + zero-copy view checks, then clean close."""
    export = SharedDatasetExport(dataset)
    name = export.segment_name
    try:
        view = attach(export.manifest)
        assert view == dataset
        assert view.schema == dataset.schema
        assert view.name == dataset.name

        items = dataset.columnar("Items")
        attached_items = view.columnar("Items")
        assert np.array_equal(attached_items.indptr, items.indptr)
        assert np.array_equal(attached_items.tokens, items.tokens)
        assert attached_items.vocabulary.items == items.vocabulary.items
        assert np.array_equal(
            attached_items.bitset_postings(), items.bitset_postings()
        )

        ages = dataset.columnar("Age")
        attached_ages = view.columnar("Age")
        assert attached_ages.values == ages.values
        assert np.array_equal(attached_ages.codes, ages.codes)
        assert np.array_equal(attached_ages.numbers, ages.numbers, equal_nan=True)

        cities = dataset.columnar("City")
        attached_cities = view.columnar("City")
        assert attached_cities.values == cities.values
        assert np.array_equal(attached_cities.codes, cities.codes)

        # Cells survive with their exact types (25 vs 25.0 must not collapse
        # through the dict-key codes), so derived views like string_codes()
        # are identical on both sides.
        for name in ("Age", "City"):
            assert [
                (type(value).__name__, value) for value in view.column(name)
            ] == [(type(value).__name__, value) for value in dataset.column(name)]
            original_codes, original_labels = dataset.columnar(name).string_codes()
            attached_codes, attached_labels = view.columnar(name).string_codes()
            assert attached_labels == original_labels
            assert np.array_equal(attached_codes, original_codes)

        # The views are zero-copy and read-only: the segment is never written.
        for array in (
            attached_items.indptr,
            attached_items.tokens,
            attached_items.bitset_postings(),
            attached_ages.codes,
            attached_ages.numbers,
            attached_cities.codes,
        ):
            assert not array.flags.writeable
    finally:
        export.close()
    assert segment_is_gone(name)


@settings(max_examples=60, deadline=None)
@given(rows=dataset_rows)
def test_roundtrip_random_datasets(rows):
    assert_roundtrip(make_dataset(rows))


@pytest.mark.parametrize(
    "n_records",
    [0, 1, 63, 64, 65, 127, 128, 4095, 4096, 4097],
    ids=lambda n: f"{n}-records",
)
def test_roundtrip_word_and_block_boundaries(n_records):
    """Posting bitsets pack 64 records per word; cross every boundary."""
    rows = [
        {
            "Age": position if position % 7 else None,
            "City": ["alpha", "beta", None][position % 3],
            "Items": {ITEMS[position % len(ITEMS)], ITEMS[(position * 5) % len(ITEMS)]},
        }
        for position in range(n_records)
    ]
    assert_roundtrip(make_dataset(rows))


def test_roundtrip_empty_attributes():
    """All-``None`` numerics and all-empty itemsets survive the codec."""
    rows = [{"Age": None, "City": None, "Items": set()} for _ in range(10)]
    assert_roundtrip(make_dataset(rows))


def test_roundtrip_empty_dataset():
    assert_roundtrip(make_dataset([]))


def test_roundtrip_keeps_dict_equal_cells_apart():
    """``25`` and ``25.0`` share a categorical code but must round-trip as
    distinct cells: their ``str()`` forms (hence ``string_codes()``, which
    the clustering/merge cost models consume) differ."""
    rows = [
        {"Age": 25, "City": "alpha", "Items": {"i1"}},
        {"Age": 25.0, "City": "alpha", "Items": {"i2"}},
        {"Age": None, "City": "beta", "Items": set()},
    ]
    dataset = make_dataset(rows)
    assert len(dataset.columnar("Age").values) == 2  # dict-key collapse
    assert_roundtrip(dataset)


def test_roundtrip_keeps_signed_zero_apart():
    """``-0.0`` and ``0.0`` compare and hash equal (one dict-key code) but
    stringify differently, so they must survive as distinct cells."""
    rows = [
        {"Age": 0.0, "City": "alpha", "Items": {"i1"}},
        {"Age": -0.0, "City": "alpha", "Items": set()},
    ]
    dataset = make_dataset(rows)
    assert len(dataset.columnar("Age").values) == 1  # dict-key collapse
    assert_roundtrip(dataset)


def test_attach_cache_is_bounded():
    from repro.columnar import shared as shared_module

    dataset = make_dataset([{"Age": 1, "City": "alpha", "Items": {"i1"}}])
    exports = [SharedDatasetExport(dataset) for _ in range(shared_module._ATTACH_CACHE_LIMIT + 3)]
    try:
        for export in exports:
            shared_module.attach_cached(export.manifest)
        assert len(shared_module._ATTACHED) <= shared_module._ATTACH_CACHE_LIMIT
        # The newest attachment is retained and memoized.
        newest = exports[-1].manifest
        assert shared_module.attach_cached(newest) is shared_module.attach_cached(newest)
    finally:
        for export in exports:
            export.close()


def test_close_is_idempotent_and_unlinks_on_error_paths():
    dataset = make_dataset([{"Age": 1, "City": "alpha", "Items": {"i1"}}])
    export = SharedDatasetExport(dataset)
    name = export.segment_name
    export.close()
    export.close()
    assert segment_is_gone(name)

    with pytest.raises(RuntimeError, match="boom"):
        with SharedDatasetExport(dataset) as failing:
            name = failing.segment_name
            raise RuntimeError("boom")
    assert segment_is_gone(name)


def test_pool_unlinks_shared_segments_on_exception():
    dataset = make_dataset(
        [{"Age": n, "City": "alpha", "Items": {"i1", "i2"}} for n in range(70)]
    )
    with pytest.raises(RuntimeError, match="boom"):
        with WorkerPool(max_workers=1) as pool:
            pool.share(dataset)
            names = pool.segment_names()
            assert names
            raise RuntimeError("boom")
    assert all(segment_is_gone(name) for name in names)
    assert pool.closed


def test_pool_reexports_after_mutation():
    """A mutated dataset gets a fresh export; the stale segment is unlinked."""
    dataset = make_dataset(
        [{"Age": n, "City": "beta", "Items": {"i3"}} for n in range(5)]
    )
    with WorkerPool(max_workers=1) as pool:
        first = pool.share(dataset)
        assert pool.share(dataset).segment == first.segment  # cached, unmutated
        dataset.set_value(0, "Age", 99)
        second = pool.share(dataset)
        assert second.segment != first.segment
        assert segment_is_gone(first.segment)
        assert attach(second)[0]["Age"] == 99
    assert segment_is_gone(second.segment)
