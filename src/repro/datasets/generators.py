"""Synthetic dataset generators.

The SECRETA demo uses "ready-to-use RT-datasets" whose exact provenance the
paper does not fix (the anonymization literature it builds on evaluates on
ADULT-style census tables and BMS/retail-style transaction logs).  Those data
files are not redistributable, so the reproduction ships deterministic
generators that produce datasets with the same structural characteristics:

* :func:`generate_adult_like` — a census-like relational table with skewed
  categorical attributes and numeric attributes (age, hours per week),
* :func:`generate_market_basket` — a transaction table with a long-tailed
  (Zipf-like) item popularity distribution and variable basket sizes,
* :func:`generate_rt_dataset` — the two glued together into an RT-dataset,
  which is what the demonstration scenarios operate on.

Adversarial variants stress the regimes where privacy guarantees are hardest
to keep (used by the guarantee-conformance suite, ``docs/validation.md``):

* :func:`generate_skewed_rt` — a much heavier-tailed item distribution,
* :func:`generate_correlated_rt` — items correlated with quasi-identifiers,
* :func:`generate_outlier_rt` — a fraction of records made near-unique.

All generators take a ``seed`` and are fully reproducible; alternatively an
explicit ``numpy.random.Generator`` can be passed as ``rng`` to share one
stream across several generation steps (``seed`` is then ignored).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.datasets.attributes import Attribute, Schema
from repro.datasets.dataset import Dataset
from repro.exceptions import DatasetError

# Census-like categorical domains (loosely modelled after the ADULT dataset).
WORKCLASS_VALUES = [
    "Private",
    "Self-emp",
    "Government",
    "Unemployed",
]
EDUCATION_VALUES = [
    "Primary",
    "Secondary",
    "HS-grad",
    "Some-college",
    "Bachelors",
    "Masters",
    "Doctorate",
]
MARITAL_VALUES = [
    "Never-married",
    "Married",
    "Divorced",
    "Widowed",
]
OCCUPATION_VALUES = [
    "Tech",
    "Sales",
    "Clerical",
    "Craft",
    "Service",
    "Transport",
    "Farming",
    "Management",
]
GENDER_VALUES = ["Male", "Female"]
DISEASE_VALUES = [
    "Flu",
    "Asthma",
    "Diabetes",
    "Hypertension",
    "Migraine",
    "Allergy",
]


def _resolve_rng(rng: np.random.Generator | None, seed: int) -> np.random.Generator:
    """An explicit generator wins; otherwise the legacy per-seed stream."""
    return rng if rng is not None else np.random.default_rng(seed)


def _skewed_choice(
    rng: np.random.Generator, values: Sequence[str], size: int, skew: float = 1.2
) -> list[str]:
    """Draw ``size`` values with Zipf-like popularity over ``values``."""
    ranks = np.arange(1, len(values) + 1, dtype=float)
    weights = 1.0 / np.power(ranks, skew)
    weights /= weights.sum()
    picks = rng.choice(len(values), size=size, p=weights)
    return [values[i] for i in picks]


def generate_adult_like(
    n_records: int = 1000,
    seed: int = 7,
    include_sensitive: bool = True,
    name: str = "adult-like",
    rng: np.random.Generator | None = None,
) -> Dataset:
    """Generate a census-like relational dataset.

    Attributes: ``Age`` and ``Hours`` (numeric quasi-identifiers),
    ``Workclass``, ``Education``, ``Marital``, ``Occupation``, ``Gender``
    (categorical quasi-identifiers) and, optionally, a non-quasi-identifier
    sensitive attribute ``Disease``.
    """
    if n_records <= 0:
        raise DatasetError("n_records must be positive")
    rng = _resolve_rng(rng, seed)

    ages = np.clip(rng.normal(38, 13, size=n_records).round(), 17, 90).astype(int)
    hours = np.clip(rng.normal(40, 10, size=n_records).round(), 1, 99).astype(int)
    workclass = _skewed_choice(rng, WORKCLASS_VALUES, n_records, skew=1.0)
    education = _skewed_choice(rng, EDUCATION_VALUES, n_records, skew=0.8)
    marital = _skewed_choice(rng, MARITAL_VALUES, n_records, skew=0.7)
    occupation = _skewed_choice(rng, OCCUPATION_VALUES, n_records, skew=0.9)
    gender = _skewed_choice(rng, GENDER_VALUES, n_records, skew=0.3)

    attributes = [
        Attribute.numeric("Age"),
        Attribute.numeric("Hours"),
        Attribute.categorical("Workclass"),
        Attribute.categorical("Education"),
        Attribute.categorical("Marital"),
        Attribute.categorical("Occupation"),
        Attribute.categorical("Gender"),
    ]
    if include_sensitive:
        attributes.append(Attribute.categorical("Disease", quasi_identifier=False))
        disease = _skewed_choice(rng, DISEASE_VALUES, n_records, skew=0.6)

    dataset = Dataset(Schema(attributes), name=name)
    for i in range(n_records):
        row = {
            "Age": int(ages[i]),
            "Hours": int(hours[i]),
            "Workclass": workclass[i],
            "Education": education[i],
            "Marital": marital[i],
            "Occupation": occupation[i],
            "Gender": gender[i],
        }
        if include_sensitive:
            row["Disease"] = disease[i]
        dataset.append(row)
    return dataset


def generate_market_basket(
    n_records: int = 1000,
    n_items: int = 60,
    avg_items_per_record: float = 4.0,
    seed: int = 11,
    item_prefix: str = "i",
    attribute_name: str = "Items",
    name: str = "market-basket",
    rng: np.random.Generator | None = None,
    skew: float = 1.1,
) -> Dataset:
    """Generate a transaction dataset with a long-tailed item distribution.

    Item popularity follows a Zipf-like law with exponent ``skew`` (a few
    very frequent items, a long tail of rare ones), which is the regime where
    k^m-anonymity algorithms differ most — exactly what SECRETA's comparison
    mode is meant to surface.
    """
    if n_records <= 0 or n_items <= 0:
        raise DatasetError("n_records and n_items must be positive")
    if avg_items_per_record <= 0:
        raise DatasetError("avg_items_per_record must be positive")
    if skew < 0:
        raise DatasetError("skew must be non-negative")
    rng = _resolve_rng(rng, seed)

    items = [f"{item_prefix}{index:03d}" for index in range(n_items)]
    ranks = np.arange(1, n_items + 1, dtype=float)
    weights = 1.0 / np.power(ranks, skew)
    weights /= weights.sum()

    dataset = Dataset(
        Schema([Attribute.transaction(attribute_name)]), name=name
    )
    for _ in range(n_records):
        basket_size = max(1, int(rng.poisson(avg_items_per_record)))
        basket_size = min(basket_size, n_items)
        picks = rng.choice(n_items, size=basket_size, replace=False, p=weights)
        dataset.append({attribute_name: [items[i] for i in picks]})
    return dataset


def generate_rt_dataset(
    n_records: int = 1000,
    n_items: int = 60,
    avg_items_per_record: float = 4.0,
    seed: int = 13,
    include_sensitive: bool = True,
    transaction_attribute: str = "Items",
    name: str = "rt-dataset",
    rng: np.random.Generator | None = None,
    skew: float = 1.1,
) -> Dataset:
    """Generate an RT-dataset: census-like relational part + market basket.

    This mirrors the "ready-to-use RT-dataset" loaded at the start of the
    demonstration (Section 3): each record describes an individual through
    demographic quasi-identifiers plus a set-valued attribute of items
    (purchases or diagnosis codes).

    With the default ``rng=None``, the relational part draws from the
    ``seed`` stream and the baskets from the ``seed + 1`` stream (the
    historical layout every regression seed depends on); an explicit ``rng``
    feeds both parts from that one stream, in order.
    """
    relational = generate_adult_like(
        n_records=n_records,
        seed=seed,
        include_sensitive=include_sensitive,
        name=name,
        rng=rng,
    )
    baskets = generate_market_basket(
        n_records=n_records,
        n_items=n_items,
        avg_items_per_record=avg_items_per_record,
        seed=seed + 1,
        attribute_name=transaction_attribute,
        rng=rng,
        skew=skew,
    )
    relational.add_attribute(
        Attribute.transaction(transaction_attribute),
        values=[record[transaction_attribute] for record in baskets],
    )
    return relational


# -- adversarial variants ------------------------------------------------------
def generate_skewed_rt(
    n_records: int = 1000,
    n_items: int = 60,
    avg_items_per_record: float = 4.0,
    seed: int = 13,
    skew: float = 2.5,
    name: str = "skewed-rt",
    rng: np.random.Generator | None = None,
) -> Dataset:
    """An RT-dataset with a much heavier-tailed (Zipf) item distribution.

    A steep ``skew`` concentrates most baskets on a handful of head items
    and leaves the tail items in only one or two records each — the regime
    where isolating item combinations are most likely and k^m protection is
    hardest to keep.
    """
    return generate_rt_dataset(
        n_records=n_records,
        n_items=n_items,
        avg_items_per_record=avg_items_per_record,
        seed=seed,
        name=name,
        rng=rng,
        skew=skew,
    )


def generate_correlated_rt(
    n_records: int = 1000,
    n_items: int = 60,
    avg_items_per_record: float = 4.0,
    seed: int = 13,
    correlation: float = 0.8,
    name: str = "correlated-rt",
    rng: np.random.Generator | None = None,
) -> Dataset:
    """An RT-dataset whose items correlate with the quasi-identifiers.

    The item universe is partitioned into one block per ``Occupation``
    value, and each record draws a fraction ``correlation`` of its basket
    from its own occupation's block (the rest from the global long tail).
    Knowing a target's demographics then *implies* likely items, so the
    combined QI + item adversary is far stronger than on independent data —
    the stress case for (k, k^m)-anonymity.
    """
    if not 0 <= correlation <= 1:
        raise DatasetError("correlation must be in [0, 1]")
    if n_items < len(OCCUPATION_VALUES):
        raise DatasetError(
            f"correlated generation needs at least {len(OCCUPATION_VALUES)} items"
        )
    rng = _resolve_rng(rng, seed)
    dataset = generate_rt_dataset(
        n_records=n_records,
        n_items=n_items,
        avg_items_per_record=avg_items_per_record,
        seed=seed,
        name=name,
        rng=rng,
    )
    items = sorted(dataset.item_universe("Items"))
    blocks: dict[str, list[str]] = {
        occupation: items[index :: len(OCCUPATION_VALUES)]
        for index, occupation in enumerate(OCCUPATION_VALUES)
    }
    for position, record in enumerate(dataset):
        basket = list(record["Items"])
        block = blocks[record["Occupation"]]
        rebound = [
            block[int(rng.integers(len(block)))]
            if rng.random() < correlation
            else item
            for item in basket
        ]
        dataset.set_value(position, "Items", sorted(set(rebound)))
    return dataset


def generate_outlier_rt(
    n_records: int = 1000,
    n_items: int = 60,
    avg_items_per_record: float = 4.0,
    seed: int = 13,
    outlier_fraction: float = 0.05,
    name: str = "outlier-rt",
    rng: np.random.Generator | None = None,
) -> Dataset:
    """An RT-dataset where a fraction of records are near-unique outliers.

    Each outlier gets an extreme ``Age``/``Hours`` pair plus one rare item
    of its own (``rNNN``), making it trivially re-identifiable *before*
    anonymization — exactly the records a correct anonymizer must fold into
    classes of at least ``k``, and a broken one leaves exposed.
    """
    if not 0 <= outlier_fraction <= 1:
        raise DatasetError("outlier_fraction must be in [0, 1]")
    rng = _resolve_rng(rng, seed)
    dataset = generate_rt_dataset(
        n_records=n_records,
        n_items=n_items,
        avg_items_per_record=avg_items_per_record,
        seed=seed,
        name=name,
        rng=rng,
    )
    n_outliers = int(round(n_records * outlier_fraction))
    if not n_outliers:
        return dataset
    chosen = rng.choice(n_records, size=min(n_outliers, n_records), replace=False)
    for rank, position in enumerate(sorted(int(index) for index in chosen)):
        dataset.set_value(position, "Age", 95 + rank % 5)
        dataset.set_value(position, "Hours", 99)
        basket = list(dataset[position]["Items"])
        dataset.set_value(position, "Items", sorted(set(basket) | {f"r{rank:03d}"}))
    return dataset


#: The adversarial generator catalog the conformance suite iterates over.
ADVERSARIAL_GENERATORS = {
    "skewed": generate_skewed_rt,
    "correlated": generate_correlated_rt,
    "outlier": generate_outlier_rt,
}


def toy_rt_dataset() -> Dataset:
    """A tiny, hand-written RT-dataset used in documentation and tests."""
    schema = Schema(
        [
            Attribute.numeric("Age"),
            Attribute.categorical("Education"),
            Attribute.transaction("Items"),
        ]
    )
    rows = [
        {"Age": 25, "Education": "Bachelors", "Items": ["bread", "milk"]},
        {"Age": 27, "Education": "Bachelors", "Items": ["bread", "beer"]},
        {"Age": 34, "Education": "Masters", "Items": ["milk", "beer", "wine"]},
        {"Age": 39, "Education": "Masters", "Items": ["wine"]},
        {"Age": 45, "Education": "HS-grad", "Items": ["bread", "milk", "wine"]},
        {"Age": 48, "Education": "HS-grad", "Items": ["beer"]},
        {"Age": 52, "Education": "Doctorate", "Items": ["milk", "wine"]},
        {"Age": 58, "Education": "Doctorate", "Items": ["bread"]},
    ]
    return Dataset(schema, rows, name="toy-rt")
