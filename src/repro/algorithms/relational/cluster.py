"""Cluster-based relational anonymization (Poulis et al., ECML/PKDD 2013).

The relational half of the RT-anonymization framework: records are grouped
into clusters of at least ``k`` members by a greedy nearest-neighbour
procedure, and every cluster is generalized to its minimum bounding
generalization — the value range of its members for numeric attributes, the
lowest common ancestor (or the explicit value set, when no hierarchy is
supplied) for categorical ones.  Unlike the full-domain algorithms the
recoding is *local*: different clusters may generalize the same value
differently, which preserves substantially more utility.

The produced clusters are also the starting point of the RT bounding methods
(Rmerger / Tmerger / RTmerger), which is why the cluster assignment is
reported in the result statistics.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.algorithms.base import (
    AnonymizationResult,
    Anonymizer,
    PhaseTimer,
    relational_quasi_identifiers,
    validate_k,
)
from repro.datasets.dataset import Dataset
from repro.exceptions import AlgorithmError
from repro.hierarchy.builders import format_interval
from repro.hierarchy.hierarchy import Hierarchy
from repro.metrics.relational import global_certainty_penalty
from repro.policies.utility import generalized_label


class _ClusterBounds:
    """Incrementally maintained bounding generalization of one growing cluster.

    Scoring a candidate record against the running bounds is O(#attributes),
    which keeps the greedy clustering loop close to linear.  The categorical
    cost uses the number of distinct values in the cluster (a lower bound of
    the LCA's leaf count); the exact hierarchy-based cost is only needed when
    the cluster is finally generalized.
    """

    def __init__(self, owner: "ClusterAnonymizer", dataset: Dataset, attributes, seed: int):
        self._owner = owner
        self._dataset = dataset
        self._attributes = list(attributes)
        self._numeric_bounds: dict[str, tuple[float, float]] = {}
        self._categorical_values: dict[str, set[str]] = {}
        for name in self._attributes:
            value = dataset[seed][name]
            if name in owner._numeric:
                number = float(value) if value is not None else 0.0
                self._numeric_bounds[name] = (number, number)
            else:
                self._categorical_values[name] = (
                    {str(value)} if value is not None else set()
                )

    def cost_with(self, candidate: int) -> float:
        record = self._dataset[candidate]
        cost = 0.0
        for name in self._attributes:
            value = record[name]
            if name in self._owner._numeric:
                span = self._owner._domain_span[name]
                if span <= 0:
                    continue
                low, high = self._numeric_bounds[name]
                if value is not None:
                    number = float(value)
                    low, high = min(low, number), max(high, number)
                cost += (high - low) / span
            else:
                size = self._owner._domain_size[name]
                if size <= 1:
                    continue
                values = self._categorical_values[name]
                extra = 0 if value is None or str(value) in values else 1
                cost += (len(values) + extra - 1) / max(size - 1, 1)
        return cost / max(len(self._attributes), 1)

    def add(self, candidate: int) -> None:
        record = self._dataset[candidate]
        for name in self._attributes:
            value = record[name]
            if value is None:
                continue
            if name in self._owner._numeric:
                low, high = self._numeric_bounds[name]
                number = float(value)
                self._numeric_bounds[name] = (min(low, number), max(high, number))
            else:
                self._categorical_values[name].add(str(value))


class ClusterAnonymizer(Anonymizer):
    """Greedy k-member clustering with minimum-bounding generalization."""

    name = "cluster"
    data_kind = "relational"

    def __init__(
        self,
        k: int,
        hierarchies: Mapping[str, Hierarchy] | None = None,
        attributes: Sequence[str] | None = None,
        candidate_limit: int | None = 250,
    ):
        self.k = int(k)
        self.hierarchies = dict(hierarchies or {})
        self.attributes = list(attributes) if attributes is not None else None
        #: Upper bound on how many unassigned records are scored when growing a
        #: cluster; keeps the greedy step near-linear on large datasets.
        self.candidate_limit = candidate_limit

    def parameters(self) -> dict:
        return {
            "k": self.k,
            "attributes": self.attributes,
            "candidate_limit": self.candidate_limit,
        }

    # -- cluster cost model ------------------------------------------------------
    def _prepare(self, dataset: Dataset, attributes: Sequence[str]) -> None:
        self._numeric: set[str] = set()
        self._domain_span: dict[str, float] = {}
        self._domain_size: dict[str, int] = {}
        for name in attributes:
            attribute = dataset.schema[name]
            domain = [v for v in dataset.column(name) if v is not None]
            if attribute.is_numeric and all(
                isinstance(value, (int, float)) for value in domain
            ):
                self._numeric.add(name)
                low, high = float(min(domain)), float(max(domain))
                self._domain_span[name] = max(high - low, 0.0)
            self._domain_size[name] = len(set(domain)) or 1

    def _cluster_cost(
        self, dataset: Dataset, attributes: Sequence[str], indices: Sequence[int]
    ) -> float:
        """NCP of the minimum bounding generalization of the given records."""
        cost = 0.0
        for name in attributes:
            values = [dataset[index][name] for index in indices]
            if name in self._numeric:
                span = self._domain_span[name]
                if span <= 0:
                    continue
                numeric_values = [float(v) for v in values if v is not None]
                if not numeric_values:
                    continue
                cost += (max(numeric_values) - min(numeric_values)) / span
            else:
                distinct = {str(v) for v in values if v is not None}
                size = self._domain_size[name]
                if size <= 1:
                    continue
                hierarchy = self.hierarchies.get(name)
                if hierarchy is not None and len(distinct) > 1:
                    ancestor = hierarchy.lowest_common_ancestor(distinct)
                    width = hierarchy.leaf_count(ancestor)
                else:
                    width = len(distinct)
                cost += (width - 1) / max(size - 1, 1)
        return cost / max(len(attributes), 1)

    def _generalized_values(
        self, dataset: Dataset, attributes: Sequence[str], indices: Sequence[int]
    ) -> dict[str, str]:
        """The published value per attribute for one cluster."""
        published: dict[str, str] = {}
        for name in attributes:
            values = [dataset[index][name] for index in indices]
            if name in self._numeric:
                numeric_values = [float(v) for v in values if v is not None]
                low, high = min(numeric_values), max(numeric_values)
                if low == high:
                    published[name] = (
                        str(int(low)) if float(low).is_integer() else str(low)
                    )
                else:
                    published[name] = format_interval(low, high)
            else:
                distinct = {str(v) for v in values if v is not None}
                if len(distinct) == 1:
                    published[name] = next(iter(distinct))
                else:
                    hierarchy = self.hierarchies.get(name)
                    if hierarchy is not None:
                        published[name] = hierarchy.lowest_common_ancestor(distinct)
                    else:
                        published[name] = generalized_label(distinct)
        return published

    # -- clustering -----------------------------------------------------------------
    def build_clusters(
        self, dataset: Dataset, attributes: Sequence[str] | None = None
    ) -> list[list[int]]:
        """Greedy k-member clustering; exposed for the RT bounding methods."""
        attributes = list(attributes or self.attributes or relational_quasi_identifiers(dataset))
        validate_k(self.k, len(dataset), "ClusterAnonymizer")
        self._prepare(dataset, attributes)

        unassigned = list(range(len(dataset)))
        clusters: list[list[int]] = []
        while len(unassigned) >= self.k:
            seed = unassigned.pop(0)
            cluster = [seed]
            bounds = _ClusterBounds(self, dataset, attributes, seed)
            while len(cluster) < self.k:
                candidates = (
                    unassigned
                    if self.candidate_limit is None
                    else unassigned[: self.candidate_limit]
                )
                best_index = None
                best_cost = None
                for candidate in candidates:
                    cost = bounds.cost_with(candidate)
                    if best_cost is None or cost < best_cost:
                        best_cost = cost
                        best_index = candidate
                cluster.append(best_index)
                bounds.add(best_index)
                unassigned.remove(best_index)
            clusters.append(cluster)
        # Attach the leftovers (fewer than k records) to their cheapest cluster.
        for leftover in unassigned:
            best_position = None
            best_cost = None
            for position, cluster in enumerate(clusters):
                cost = self._cluster_cost(dataset, attributes, cluster + [leftover])
                if best_cost is None or cost < best_cost:
                    best_cost = cost
                    best_position = position
            if best_position is None:
                raise AlgorithmError(
                    "ClusterAnonymizer: cannot place leftover records; "
                    "the dataset is smaller than k"
                )
            clusters[best_position].append(leftover)
        return clusters

    def generalize_clusters(
        self,
        dataset: Dataset,
        clusters: Sequence[Sequence[int]],
        attributes: Sequence[str] | None = None,
        name_suffix: str = "cluster",
    ) -> Dataset:
        """Publish every cluster's minimum bounding generalization."""
        attributes = list(attributes or self.attributes or relational_quasi_identifiers(dataset))
        if not hasattr(self, "_domain_size") or not self._domain_size:
            self._prepare(dataset, attributes)
        anonymized = dataset.copy(name=f"{dataset.name}[{name_suffix}]")
        for cluster in clusters:
            published = self._generalized_values(dataset, attributes, cluster)
            for index in cluster:
                for attribute, value in published.items():
                    anonymized.set_value(index, attribute, value)
        return anonymized

    def anonymize(self, dataset: Dataset) -> AnonymizationResult:
        attributes = self.attributes or relational_quasi_identifiers(dataset)
        if not attributes:
            raise AlgorithmError(
                "ClusterAnonymizer: the dataset has no relational quasi-identifiers"
            )
        timer = PhaseTimer()
        with timer.phase("clustering"):
            clusters = self.build_clusters(dataset, attributes)
        with timer.phase("generalization"):
            anonymized = self.generalize_clusters(dataset, clusters, attributes)
        gcp = global_certainty_penalty(
            dataset, anonymized, attributes=attributes, hierarchies=self.hierarchies
        )
        sizes = [len(cluster) for cluster in clusters]
        return AnonymizationResult(
            dataset=anonymized,
            algorithm=self.name,
            parameters=self.parameters(),
            runtime_seconds=timer.total,
            phase_seconds=timer.phases,
            statistics={
                "clusters": len(clusters),
                "min_cluster_size": min(sizes) if sizes else 0,
                "max_cluster_size": max(sizes) if sizes else 0,
                "gcp": gcp,
                "cluster_assignment": [list(cluster) for cluster in clusters],
            },
        )
