"""Tests for anonymization configurations."""

import pytest

from repro.engine import (
    AnonymizationConfig,
    relational_config,
    rt_config,
    transaction_config,
)
from repro.exceptions import ConfigurationError


class TestValidation:
    def test_needs_at_least_one_algorithm(self):
        with pytest.raises(ConfigurationError):
            AnonymizationConfig()

    def test_algorithm_kind_checked(self):
        with pytest.raises(ConfigurationError):
            AnonymizationConfig(relational_algorithm="coat")
        with pytest.raises(ConfigurationError):
            AnonymizationConfig(transaction_algorithm="incognito")
        with pytest.raises(ConfigurationError):
            rt_config("cluster", "coat", bounding="incognito")

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ConfigurationError):
            relational_config("nope")

    def test_parameter_bounds(self):
        with pytest.raises(ConfigurationError):
            relational_config("cluster", k=1)
        with pytest.raises(ConfigurationError):
            transaction_config("apriori", m=0)
        with pytest.raises(ConfigurationError):
            rt_config("cluster", "apriori", delta=2.0)


class TestDerivedViews:
    def test_mode(self):
        assert relational_config("cluster").mode == "relational"
        assert transaction_config("coat").mode == "transaction"
        assert rt_config("cluster", "coat").mode == "rt"

    def test_display_label(self):
        assert relational_config("incognito").display_label == "incognito"
        assert (
            rt_config("cluster", "coat", bounding="tmerger").display_label
            == "cluster+coat/tmerger"
        )
        assert relational_config("cluster", label="mine").display_label == "mine"

    def test_describe_contains_parameters(self):
        description = rt_config("cluster", "apriori", k=7, m=3, delta=0.2).describe()
        assert description["k"] == 7
        assert description["m"] == 3
        assert description["delta"] == 0.2
        assert description["mode"] == "rt"


class TestSweeping:
    def test_with_parameter_casts_types(self):
        config = rt_config("cluster", "apriori", k=5)
        assert config.with_parameter("k", 10.0).k == 10
        assert isinstance(config.with_parameter("k", 10.0).k, int)
        assert config.with_parameter("delta", 0.25).delta == 0.25

    def test_with_parameter_rejects_unknown(self):
        with pytest.raises(ConfigurationError):
            relational_config("cluster").with_parameter("fanout", 3)

    def test_replace(self):
        config = relational_config("cluster", k=5)
        other = config.replace(label="renamed")
        assert other.label == "renamed"
        assert config.label is None

    def test_configs_are_immutable(self):
        config = relational_config("cluster")
        with pytest.raises(Exception):
            config.k = 10
