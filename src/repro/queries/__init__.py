"""Query workloads and the Average Relative Error utility indicator."""

from __future__ import annotations

from repro.queries.are import (
    AreResult,
    QueryEvaluation,
    average_relative_error,
    evaluate_query,
    relative_error,
    workload_interpreters,
)
from repro.queries.query import (
    UNIVERSE_MODES,
    Condition,
    Query,
    RangeCondition,
    ValueCondition,
    condition_from_dict,
)
from repro.queries.workload import QueryWorkload, generate_query_workload

__all__ = [
    "AreResult",
    "QueryEvaluation",
    "average_relative_error",
    "evaluate_query",
    "relative_error",
    "workload_interpreters",
    "UNIVERSE_MODES",
    "Condition",
    "Query",
    "RangeCondition",
    "ValueCondition",
    "condition_from_dict",
    "QueryWorkload",
    "generate_query_workload",
]
