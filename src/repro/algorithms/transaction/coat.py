"""COAT: COnstraint-based Anonymization of Transactions (Loukides, Gkoulalas-Divanis, Malin, KAIS 2011).

COAT dispenses with generalization hierarchies.  The data publisher provides

* a **privacy policy** — itemsets an adversary may know, each of which must
  match at least ``k`` transactions or none, and
* a **utility policy** — disjoint groups of items that are semantically
  interchangeable; an item may only be generalized to the generalized item
  representing its own group.

The algorithm processes privacy constraints in order of increasing support.
For a violated constraint it repeatedly applies the cheapest allowed
operation — generalizing one of the constraint's items to its utility group,
or, when no generalization is allowed or helpful any more, suppressing the
item — until the constraint's support reaches ``k`` or drops to zero.
Generalization and suppression are global (the item is rewritten in every
transaction), so the final output is described by a single item mapping.
"""

from __future__ import annotations

from repro.algorithms.base import (
    AnonymizationResult,
    Anonymizer,
    PhaseTimer,
    apply_item_mapping,
)
from repro.datasets.dataset import Dataset
from repro.exceptions import AlgorithmError, ConfigurationError
from repro.index import InvertedIndex
from repro.metrics.transaction import utility_loss
from repro.policies.privacy import PrivacyConstraint, PrivacyPolicy
from repro.policies.utility import UtilityPolicy


class Coat(Anonymizer):
    """Constraint-based anonymization guided by privacy and utility policies."""

    name = "coat"
    data_kind = "transaction"

    def __init__(
        self,
        privacy_policy: PrivacyPolicy,
        utility_policy: UtilityPolicy,
        attribute: str | None = None,
    ):
        if privacy_policy is None or utility_policy is None:
            raise ConfigurationError("COAT needs both a privacy and a utility policy")
        self.privacy_policy = privacy_policy
        self.utility_policy = utility_policy
        self.attribute = attribute

    def parameters(self) -> dict:
        return {
            "k": self.privacy_policy.k,
            "privacy_constraints": len(self.privacy_policy),
            "utility_constraints": len(self.utility_policy),
            "attribute": self.attribute,
        }

    # -- support bookkeeping ---------------------------------------------------
    def _group_of(self, groups: dict[str, frozenset[str]], item: str) -> frozenset[str]:
        return groups.get(item, frozenset({item}))

    def _constraint_support(
        self,
        constraint: PrivacyConstraint,
        groups: dict[str, frozenset[str]],
        suppressed: set[str],
        index: InvertedIndex,
    ) -> int:
        """Records that could contain every item of ``constraint``.

        Each constraint item is represented by its current utility group; the
        per-group posting unions are memoized by the index, so re-checking the
        same constraint across iterations costs set intersections only.
        """
        member_groups = []
        for item in constraint.items:
            if item in suppressed:
                return 0
            member_groups.append(self._group_of(groups, item) - suppressed)
        return index.joint_support(member_groups)

    # -- main --------------------------------------------------------------------
    def anonymize(self, dataset: Dataset) -> AnonymizationResult:
        attribute = self.attribute or dataset.single_transaction_attribute()
        timer = PhaseTimer()
        k = self.privacy_policy.k

        with timer.phase("initialisation"):
            index = self._build_index(dataset, attribute)
            universe = set(index.universe)
            #: item -> the item group it currently publishes (singleton = intact)
            groups: dict[str, frozenset[str]] = {}
            suppressed: set[str] = set()

        generalized_items = 0
        suppressed_items = 0
        with timer.phase("constraint satisfaction"):
            ordered = sorted(
                self.privacy_policy.constraints,
                key=lambda c: self._constraint_support(c, groups, suppressed, index),
            )
            for constraint in ordered:
                while True:
                    support = self._constraint_support(
                        constraint, groups, suppressed, index
                    )
                    if support == 0 or support >= k:
                        break
                    # Prefer the cheapest generalization: the not-yet-generalized
                    # item whose utility group adds the most new records.
                    best_item = None
                    best_gain = 0
                    for item in constraint.items:
                        if item in suppressed or item in groups:
                            continue
                        utility_constraint = self.utility_policy.constraint_for(item)
                        if utility_constraint is None or len(utility_constraint) <= 1:
                            continue
                        # Size-only query: stays in the bitset domain, no
                        # record-set materialization.
                        widened = index.union_size(utility_constraint.items - suppressed)
                        gain = widened - index.frequency(item)
                        if best_item is None or gain > best_gain:
                            best_item = item
                            best_gain = gain
                    if best_item is not None and best_gain > 0:
                        members = self.utility_policy.constraint_for(best_item).items
                        for member in members:
                            if member in universe and member not in suppressed:
                                groups[member] = members
                        generalized_items += 1
                        continue
                    # No useful generalization left: suppress the rarest item of
                    # the constraint, which drops the constraint's support to 0.
                    rarest = min(
                        (item for item in constraint.items if item not in suppressed),
                        key=index.frequency,
                        default=None,
                    )
                    if rarest is None:
                        break
                    suppressed.add(rarest)
                    groups.pop(rarest, None)
                    suppressed_items += 1

        with timer.phase("apply"):
            mapping: dict[str, str | None] = {}
            for item in universe:
                if item in suppressed:
                    mapping[item] = None
                elif item in groups:
                    visible = groups[item] - suppressed
                    mapping[item] = self.utility_policy.label_for(visible)
                # Unmapped items are kept intact by apply_item_mapping.
            anonymized = dataset.copy(name=f"{dataset.name}[coat]")
            apply_item_mapping(anonymized, attribute, mapping)

        with timer.phase("verification"):
            residual = [
                constraint
                for constraint in self.privacy_policy
                if 0
                < self._constraint_support(constraint, groups, suppressed, index)
                < k
            ]
            if residual:
                raise AlgorithmError(
                    f"COAT failed to satisfy {len(residual)} privacy constraints"
                )

        statistics = {
            "generalized_groups": generalized_items,
            "suppressed_items": suppressed_items,
            "intact_items": len(universe - suppressed - set(groups)),
            "utility_loss": utility_loss(dataset, anonymized, attribute=attribute),
        }
        return AnonymizationResult(
            dataset=anonymized,
            algorithm=self.name,
            parameters=self.parameters(),
            runtime_seconds=timer.total,
            phase_seconds=timer.phases,
            statistics=statistics,
        )
