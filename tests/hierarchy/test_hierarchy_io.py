"""Tests for hierarchy file input/output."""

import pytest

from repro.exceptions import HierarchyError
from repro.hierarchy import (
    build_numeric_hierarchy,
    load_hierarchies,
    load_hierarchy,
    read_hierarchy_text,
    save_hierarchies,
    save_hierarchy,
    write_hierarchy_text,
)

HIERARCHY_TEXT = """Primary;Lower;*
Secondary;Lower;*
BSc;Higher;*
MSc;Higher;*
"""


class TestRead:
    def test_read_paths(self):
        hierarchy = read_hierarchy_text(HIERARCHY_TEXT, attribute="Education")
        assert hierarchy.parent("Primary") == "Lower"
        assert hierarchy.parent("Lower") == "*"
        assert sorted(hierarchy.leaves()) == ["BSc", "MSc", "Primary", "Secondary"]

    def test_read_appends_missing_root(self):
        hierarchy = read_hierarchy_text("A;Group\nB;Group\n")
        assert hierarchy.parent("Group") == "*"

    def test_numeric_labels_get_interval_bounds(self):
        hierarchy = read_hierarchy_text("17;[17-30];*\n25;[17-30];*\n")
        assert hierarchy.node("17").interval == (17.0, 17.0)
        assert hierarchy.node("[17-30]").interval == (17.0, 30.0)

    def test_empty_text_rejected(self):
        with pytest.raises(HierarchyError):
            read_hierarchy_text("")

    def test_conflicting_parents_rejected(self):
        with pytest.raises(HierarchyError):
            read_hierarchy_text("A;G1;*\nA;G2;*\n")


class TestWriteAndRoundTrip:
    def test_write_read_round_trip(self):
        original = read_hierarchy_text(HIERARCHY_TEXT, attribute="Education")
        text = write_hierarchy_text(original)
        reloaded = read_hierarchy_text(text, attribute="Education")
        assert sorted(reloaded.leaves()) == sorted(original.leaves())
        for leaf in original.leaves():
            assert reloaded.ancestors(leaf) == original.ancestors(leaf)

    def test_save_and_load_file(self, tmp_path):
        hierarchy = build_numeric_hierarchy(range(20), fanout=4, attribute="Age")
        path = save_hierarchy(hierarchy, tmp_path / "age.csv")
        loaded = load_hierarchy(path, attribute="Age")
        assert sorted(loaded.leaves()) == sorted(hierarchy.leaves())

    def test_save_and_load_directory(self, tmp_path):
        hierarchies = {
            "Age": build_numeric_hierarchy(range(10), fanout=3, attribute="Age"),
            "Education": read_hierarchy_text(HIERARCHY_TEXT, attribute="Education"),
        }
        written = save_hierarchies(hierarchies, tmp_path)
        assert set(written) == {"Age", "Education"}
        loaded = load_hierarchies(tmp_path)
        assert set(loaded) == {"Age", "Education"}
        assert sorted(loaded["Education"].leaves()) == ["BSc", "MSc", "Primary", "Secondary"]

    def test_load_missing_file_raises(self, tmp_path):
        with pytest.raises(HierarchyError):
            load_hierarchy(tmp_path / "missing.csv")
