"""Reading and writing generalization hierarchies.

SECRETA's Configuration Editor loads hierarchies from files and lets the user
browse and export them.  The file format used here is the de-facto standard of
anonymization toolkits (one CSV line per leaf listing the full generalization
path, most specific value first)::

    17;[17-30];[17-60];*
    Tech;White-collar;*

Lines may have different lengths; missing levels are padded towards the root.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Mapping

from repro.exceptions import HierarchyError
from repro.hierarchy.builders import ROOT_LABEL, parse_interval
from repro.hierarchy.hierarchy import Hierarchy, HierarchyBuilder

DEFAULT_DELIMITER = ";"


def hierarchy_from_paths(
    paths: list[list[str]], attribute: str = "", root_label: str = ROOT_LABEL
) -> Hierarchy:
    """Build a hierarchy from leaf-to-root paths.

    Each path lists labels from the leaf (most specific) towards the root.  A
    final ``root_label`` element is appended when absent so that all paths
    share a single root.
    """
    if not paths:
        raise HierarchyError("cannot build a hierarchy from an empty path list")
    builder = HierarchyBuilder(root_label, attribute=attribute)
    for path in paths:
        cleaned = [str(label).strip() for label in path if str(label).strip()]
        if not cleaned:
            continue
        if cleaned[-1] != root_label:
            cleaned.append(root_label)
        # Root-to-leaf order, skipping the shared root itself.
        builder.add_path(list(reversed(cleaned))[1:])
    hierarchy = builder.build()
    _annotate_intervals(hierarchy)
    return hierarchy


def _annotate_intervals(hierarchy: Hierarchy) -> None:
    """Attach numeric bounds to nodes whose labels are numbers or intervals."""
    for node in hierarchy.iter_nodes():
        bounds = parse_interval(node.label)
        if bounds is None:
            try:
                value = float(node.label)
                bounds = (value, value)
            except ValueError:
                continue
        node.interval = bounds


def read_hierarchy_text(
    text: str,
    attribute: str = "",
    delimiter: str = DEFAULT_DELIMITER,
    root_label: str = ROOT_LABEL,
) -> Hierarchy:
    """Parse hierarchy CSV text (one leaf-to-root path per line)."""
    reader = csv.reader(io.StringIO(text), delimiter=delimiter)
    paths = [row for row in reader if any(cell.strip() for cell in row)]
    if not paths:
        raise HierarchyError("hierarchy file is empty")
    return hierarchy_from_paths(paths, attribute=attribute, root_label=root_label)


def load_hierarchy(
    path: str | Path,
    attribute: str = "",
    delimiter: str = DEFAULT_DELIMITER,
    root_label: str = ROOT_LABEL,
) -> Hierarchy:
    """Load a hierarchy from a CSV file (see module docstring for the format)."""
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as error:
        raise HierarchyError(f"cannot read hierarchy file {path}: {error}") from error
    return read_hierarchy_text(
        text,
        attribute=attribute or path.stem,
        delimiter=delimiter,
        root_label=root_label,
    )


def write_hierarchy_text(
    hierarchy: Hierarchy, delimiter: str = DEFAULT_DELIMITER
) -> str:
    """Serialise a hierarchy as one leaf-to-root path per line."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, delimiter=delimiter, lineterminator="\n")
    for row in hierarchy.to_mapping_rows():
        writer.writerow(row)
    return buffer.getvalue()


def save_hierarchy(
    hierarchy: Hierarchy, path: str | Path, delimiter: str = DEFAULT_DELIMITER
) -> Path:
    """Write a hierarchy to a CSV file and return the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(write_hierarchy_text(hierarchy, delimiter=delimiter), encoding="utf-8")
    return path


def save_hierarchies(
    hierarchies: Mapping[str, Hierarchy],
    directory: str | Path,
    delimiter: str = DEFAULT_DELIMITER,
) -> dict[str, Path]:
    """Write one hierarchy file per attribute into ``directory``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written = {}
    for attribute, hierarchy in hierarchies.items():
        written[attribute] = save_hierarchy(
            hierarchy, directory / f"hierarchy_{attribute}.csv", delimiter=delimiter
        )
    return written


def load_hierarchies(
    directory: str | Path, delimiter: str = DEFAULT_DELIMITER
) -> dict[str, Hierarchy]:
    """Load every ``hierarchy_<attribute>.csv`` file found in ``directory``."""
    directory = Path(directory)
    hierarchies = {}
    for path in sorted(directory.glob("hierarchy_*.csv")):
        attribute = path.stem[len("hierarchy_") :]
        hierarchies[attribute] = load_hierarchy(
            path, attribute=attribute, delimiter=delimiter
        )
    return hierarchies
