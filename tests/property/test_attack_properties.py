"""Property-based tests: attack kernels bit-identical to the scalar oracle.

The bitset kernels of :mod:`repro.attacks.simulator` and the Python-set
oracle of :mod:`repro.attacks.oracle` must produce *equal*
:class:`~repro.attacks.AttackResult` dataclasses — per-record matching-set
sizes, empirical k, risks, witnesses, truncation flag — on arbitrary small
instances, including non-truthful "anonymized" outputs a buggy algorithm
could emit.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attacks import item_attack, qi_attack, rt_attack
from repro.datasets import Attribute, Dataset, Schema
from repro.metrics import SUPPRESSED, equivalence_classes

AGES = [20, 25, 30, 35]
EDUS = ["BSc", "MSc", "PhD"]
ITEMS = ["a", "b", "c", "d", "e", "f"]

AGE_LABELS = ["[20-30]", "[25-35]", "[0-100]", "20", "35", "*", SUPPRESSED]
EDU_LABELS = ["(BSc,MSc)", "(MSc,PhD)", "(BSc,MSc,PhD)", "BSc", "*", SUPPRESSED]
ITEM_LABELS = [None, "(a,b,c)", "(d,e,f)", "(a,b,c,d,e,f)"]


def make_rt(rows) -> Dataset:
    schema = Schema(
        [
            Attribute.numeric("Age"),
            Attribute.categorical("Edu"),
            Attribute.transaction("Items"),
        ]
    )
    return Dataset(schema, rows)


@st.composite
def attack_instances(draw):
    """An (original, arbitrary published output) pair of aligned datasets."""
    originals = draw(
        st.lists(
            st.fixed_dictionaries(
                {
                    "Age": st.sampled_from(AGES),
                    "Edu": st.sampled_from(EDUS),
                    "Items": st.sets(st.sampled_from(ITEMS), max_size=4),
                }
            ),
            min_size=1,
            max_size=10,
        )
    )
    item_mapping = draw(
        st.dictionaries(
            st.sampled_from(ITEMS),
            st.sampled_from(ITEM_LABELS),
            max_size=len(ITEMS),
        )
    )
    published = []
    for record in originals:
        labels = {
            label
            for label in (
                item_mapping.get(item, item) for item in record["Items"]
            )
            if label is not None
        }
        published.append(
            {
                "Age": draw(
                    st.one_of(
                        st.just(str(record["Age"])), st.sampled_from(AGE_LABELS)
                    )
                ),
                "Edu": draw(
                    st.one_of(
                        st.just(record["Edu"]), st.sampled_from(EDU_LABELS)
                    )
                ),
                "Items": sorted(labels),
            }
        )
    original = make_rt(
        [{**record, "Items": sorted(record["Items"])} for record in originals]
    )
    return original, make_rt(published)


class TestKernelOracleEquivalence:
    @given(instance=attack_instances())
    @settings(max_examples=60, deadline=None)
    def test_qi_attack(self, instance):
        original, published = instance
        assert qi_attack(original, published, vectorized=True) == qi_attack(
            original, published, vectorized=False
        )

    @given(
        instance=attack_instances(),
        m=st.integers(1, 3),
        cap=st.one_of(st.none(), st.integers(1, 4)),
    )
    @settings(max_examples=60, deadline=None)
    def test_item_attack(self, instance, m, cap):
        original, published = instance
        assert item_attack(
            original, published, m, knowledge_cap=cap, vectorized=True
        ) == item_attack(
            original, published, m, knowledge_cap=cap, vectorized=False
        )

    @given(
        instance=attack_instances(),
        m=st.integers(1, 3),
        cap=st.one_of(st.none(), st.integers(1, 4)),
    )
    @settings(max_examples=60, deadline=None)
    def test_rt_attack(self, instance, m, cap):
        original, published = instance
        assert rt_attack(
            original, published, m, knowledge_cap=cap, vectorized=True
        ) == rt_attack(
            original, published, m, knowledge_cap=cap, vectorized=False
        )


class TestAttackSemantics:
    @given(instance=attack_instances())
    @settings(max_examples=40, deadline=None)
    def test_identity_publication_matches_equivalence_classes(self, instance):
        """Publishing the original verbatim: matching set == QI class."""
        original, _ = instance
        result = qi_attack(original, original)
        classes = equivalence_classes(original, ["Age", "Edu"])
        for indices in classes.values():
            for index in indices:
                assert result.match_sizes[index] == len(indices)

    @given(instance=attack_instances(), m=st.integers(1, 2))
    @settings(max_examples=40, deadline=None)
    def test_rt_attack_never_exceeds_qi_attack(self, instance, m):
        """Extra item knowledge can only shrink nonempty matching sets."""
        original, published = instance
        qi = qi_attack(original, published)
        rt = rt_attack(original, published, m)
        for qi_size, rt_size in zip(qi.match_sizes, rt.match_sizes):
            assert rt_size <= qi_size
