"""CSR-style tokenized view of one transaction attribute.

A :class:`TransactionColumn` is the columnar twin of the row-oriented
``Record`` storage: the attribute's itemsets are tokenized against an
:class:`~repro.columnar.vocabulary.ItemVocabulary` and laid out as two flat
arrays — ``indptr`` (``int64``, ``n_records + 1`` row offsets) and ``tokens``
(``int32``, one entry per item occurrence) — exactly a CSR sparse-matrix
pattern.  Derived structures the hot paths need are computed lazily and
cached on the column:

* :meth:`bitset_postings` — per-token record bitsets (the inverted index),
* :meth:`occurrence_join` — the record-aligned (occurrence, label) pair
  expansion the transaction metrics reduce over with ``minimum.reduceat``.

A column is a snapshot: :meth:`repro.datasets.dataset.Dataset.columnar`
caches one per attribute and drops it on any dataset mutation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.columnar.bitset import posting_matrix
from repro.columnar.vocabulary import ItemVocabulary

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (dataset ↔ columnar)
    from repro.datasets.dataset import Dataset


class TransactionColumn:
    """Tokenized CSR layout of a transaction attribute plus cached kernels."""

    __slots__ = (
        "vocabulary",
        "indptr",
        "tokens",
        "attribute",
        "_postings",
        "_join",
    )

    def __init__(
        self,
        vocabulary: ItemVocabulary,
        indptr: np.ndarray,
        tokens: np.ndarray,
        attribute: str = "",
    ) -> None:
        self.vocabulary = vocabulary
        self.indptr = indptr
        self.tokens = tokens
        self.attribute = attribute
        self._postings: np.ndarray | None = None
        self._join: tuple["TransactionColumn", tuple] | None = None

    @classmethod
    def from_dataset(
        cls, dataset: "Dataset", attribute: str | None = None
    ) -> "TransactionColumn":
        """Tokenize ``attribute`` of ``dataset`` (default: its only transaction one)."""
        attribute = attribute or dataset.single_transaction_attribute()
        itemsets = [record[attribute] for record in dataset]
        vocabulary = ItemVocabulary(
            item for itemset in itemsets for item in itemset
        )
        lookup = vocabulary.token
        indptr = np.zeros(len(itemsets) + 1, dtype=np.int64)
        chunks: list[list[int]] = []
        offset = 0
        for position, itemset in enumerate(itemsets):
            # Sorted within the row: frozenset iteration order follows the
            # per-process hash seed, and any float reduction in occurrence
            # order (e.g. the UL charge sum) would differ by ulps between
            # interpreters — breaking byte-identical checkpoint resume.
            row = sorted(lookup(item) for item in itemset)
            offset += len(row)
            indptr[position + 1] = offset
            chunks.append(row)
        tokens = np.fromiter(
            (token for row in chunks for token in row),
            dtype=np.int32,
            count=offset,
        )
        return cls(vocabulary, indptr, tokens, attribute=attribute)

    def __repr__(self) -> str:
        return (
            f"TransactionColumn(attribute={self.attribute!r}, "
            f"records={self.n_records}, items={len(self.vocabulary)}, "
            f"occurrences={self.total_items})"
        )

    @property
    def n_records(self) -> int:
        return len(self.indptr) - 1

    @property
    def total_items(self) -> int:
        """Total item occurrences (sum of itemset sizes)."""
        return len(self.tokens)

    def row_lengths(self) -> np.ndarray:
        """Itemset size per record."""
        return np.diff(self.indptr)

    def row_tokens(self, index: int) -> np.ndarray:
        """Token ids of record ``index`` (a view into the CSR array)."""
        return self.tokens[self.indptr[index] : self.indptr[index + 1]]

    def record_ids(self) -> np.ndarray:
        """The record index of every occurrence (parallel to ``tokens``)."""
        return np.repeat(np.arange(self.n_records, dtype=np.int64), self.row_lengths())

    def bitset_postings(self) -> np.ndarray:
        """Per-token posting bitsets: ``(n_items, ceil(n_records/64))`` ``uint64``."""
        if self._postings is None:
            self._postings = posting_matrix(
                self.tokens, self.record_ids(), len(self.vocabulary), self.n_records
            )
        return self._postings

    def occurrence_join(
        self, source: "TransactionColumn"
    ) -> tuple[np.ndarray, np.ndarray, int]:
        """Record-aligned cross join of ``source`` occurrences with this column.

        For every item occurrence of ``source`` record ``r``, pair it with
        every token of *this* column's record ``r``.  Returns
        ``(flat, segment_starts, unpaired)``:

        * ``flat`` — per pair, ``this_token * len(source.vocabulary) +
          source_token``, ready to gather from the raveled charge matrix of a
          ``(len(self.vocabulary), len(source.vocabulary))`` table,
        * ``segment_starts`` — start offset of each paired occurrence's pair
          segment (for ``ufunc.reduceat`` reductions),
        * ``unpaired`` — occurrences of records whose row here is empty.

        The join depends only on the two CSR layouts, so it is cached per
        ``source`` column (the repeated-metric-evaluation regime).  Both
        columns must cover the same records in the same order.
        """
        cached = self._join
        if cached is not None and cached[0] is source:
            return cached[1]
        source_lengths = source.row_lengths()
        own_lengths = self.row_lengths()
        pairs_per_occurrence = np.repeat(own_lengths, source_lengths)
        paired = pairs_per_occurrence > 0
        unpaired = int(np.count_nonzero(~paired))
        counts = pairs_per_occurrence[paired]
        segment_starts = np.cumsum(counts) - counts
        total = int(counts.sum())
        own_row_starts = np.repeat(self.indptr[:-1], source_lengths)[paired]
        positions = (
            np.arange(total, dtype=np.int64)
            - np.repeat(segment_starts, counts)
            + np.repeat(own_row_starts, counts)
        )
        flat = self.tokens[positions].astype(np.int64) * len(
            source.vocabulary
        ) + np.repeat(source.tokens.astype(np.int64)[paired], counts)
        result = (flat, segment_starts, unpaired)
        self._join = (source, result)
        return result
