"""REP008 — durability discipline in the checkpoint store.

The checkpoint store's whole value is that a record on disk is either a
complete, checksummed frame or detectably absent — a guarantee that lives or
dies with *how the bytes get written*.  A casual ``open(path, "w")`` or
``Path.write_bytes`` in the store's code path can tear on a crash: the file
exists, holds half a frame, and every future load pays a corruption warning
(or, without the CRC, would silently serve garbage).  The discipline is
therefore structural: inside the ``[rep008] scope`` prefixes, every write
must flow through the manifest's ``atomic_helpers`` — the one sanctioned
implementation of write-to-temp → flush → ``fsync`` → atomic rename →
directory ``fsync``.

Inside the scope this rule flags:

* **writable ``open``/``os.fdopen`` calls** — any call whose mode string
  contains ``w``, ``a``, ``x`` or ``+`` (a mode that is not a string
  constant is flagged too: if the mode cannot be proven read-only, the
  write cannot be proven atomic);
* **``Path.write_bytes`` / ``Path.write_text`` calls** — the convenience
  writers that truncate in place.

The body of an ``atomic_helpers`` entry itself is exempt — it is the place
where the raw ``open`` is supposed to live.  A deliberate raw write
elsewhere (none is expected) would carry a reasoned
``# repro: allow[REP008]``.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.core import Finding, ModuleContext, Rule, register
from repro.analysis.manifest import InvariantManifest

#: ``open``-style callables whose mode argument decides writability, mapped
#: to the positional index of that mode argument.
_OPEN_CALLS = {"open": 1, "fdopen": 1}

#: ``Path`` convenience writers that truncate the target in place.
_PATH_WRITERS = frozenset({"write_bytes", "write_text"})

_WRITE_MODE_CHARS = frozenset("wax+")


def _call_name(node: ast.Call) -> str | None:
    """The terminal name of a call: ``os.fdopen(...)`` -> ``fdopen``."""
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def _mode_argument(node: ast.Call, position: int) -> ast.expr | None:
    """The mode argument of an ``open``-style call, positional or keyword."""
    for keyword in node.keywords:
        if keyword.arg == "mode":
            return keyword.value
    if len(node.args) > position:
        return node.args[position]
    return None


def _writes(mode: ast.expr | None) -> bool:
    """Whether the mode argument opens for writing.

    A missing mode is read-only (``"r"`` is the default).  A non-constant
    mode cannot be proven read-only, so it counts as a write — the store's
    durability must not hinge on runtime string values.
    """
    if mode is None:
        return False
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        return bool(_WRITE_MODE_CHARS & set(mode.value))
    return True


@register
class DurabilityDiscipline(Rule):
    code = "REP008"
    name = "durability-discipline"
    summary = (
        "checkpoint-store writes must use the atomic write helper; "
        "no bare open(..., 'w') or Path.write_bytes in the store"
    )
    explanation = (
        "Inside the [rep008] scope, every file write must flow through the "
        "manifest's atomic_helpers (the write-temp → fsync → os.replace "
        "implementation): a bare open(path, 'w')/os.fdopen(fd, 'w') or "
        "Path.write_bytes/write_text truncates in place, so a crash "
        "mid-write leaves a torn record that every future load reports as "
        "corruption — or, without the CRC frame, would silently misread. "
        "The helper's own body is exempt (it is where the raw open "
        "belongs); a mode that is not a string constant is flagged because "
        "it cannot be proven read-only.  A deliberate raw write elsewhere "
        "carries a reasoned `# repro: allow[REP008]`."
    )

    def check_module(
        self, module: ModuleContext, manifest: InvariantManifest
    ) -> Iterable[Finding]:
        scope = manifest.durability_scope
        if scope and not module.relpath.startswith(tuple(scope)):
            return
        helpers = frozenset(manifest.atomic_helpers)
        for node in module.walk():
            if not isinstance(node, ast.Call):
                continue
            name = _call_name(node)
            if name is None:
                continue
            site = f"{module.relpath}::{module.qualname(node)}"
            if site in helpers:
                continue
            if name in _OPEN_CALLS and _writes(
                _mode_argument(node, _OPEN_CALLS[name])
            ):
                yield module.finding(
                    self,
                    node,
                    f"writable {name}() in checkpoint-store code; route the "
                    f"write through the atomic helper "
                    f"(checkpoint.atomic_write_bytes) so a crash cannot "
                    f"tear the record",
                )
            elif name in _PATH_WRITERS and isinstance(node.func, ast.Attribute):
                yield module.finding(
                    self,
                    node,
                    f".{name}() truncates in place; route the write through "
                    f"the atomic helper (checkpoint.atomic_write_bytes) so "
                    f"a crash cannot tear the record",
                )
