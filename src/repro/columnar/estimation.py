"""Shape-level kernels for vectorized query estimation.

The query layer (:mod:`repro.queries`) scores a COUNT query over an
anonymized dataset by resolving each *distinct* label once into a match
probability and reducing per record.  These kernels are the reduction half:
they know nothing about queries, hierarchies or universes — they operate on
the flat columnar arrays (:class:`~repro.columnar.relational.CategoricalColumn`
codes, :class:`~repro.columnar.column.TransactionColumn` CSR rows and posting
bitsets) plus caller-built per-distinct-value tables.

Two contracts matter here:

* **Bit-for-bit equality with the per-record path.**  The scalar estimator
  multiplies per-record probabilities left to right and accumulates the total
  sequentially; :func:`sequential_sum` reproduces that exact addition order
  (``np.cumsum`` is a running, in-order reduction, unlike ``np.sum``'s
  pairwise tree), so the kernel result equals the per-record reference to the
  last ulp rather than merely approximately.
* **Empty rows reduce to 0.**  ``ufunc.reduceat`` has no identity element for
  empty segments, so :func:`row_max` reduces only the non-empty CSR rows —
  valid because empty rows occupy no token span — and leaves zeros elsewhere.
"""

from __future__ import annotations

import numpy as np

from repro.columnar.bitset import bitset_from_indices


def sequential_sum(values: np.ndarray) -> float:
    """Left-to-right sum of ``values``, bit-identical to a Python ``+=`` loop.

    ``np.sum`` uses pairwise summation, which is *more* accurate than a
    sequential accumulation but differs in the last bits; the per-record
    estimation path is the semantic reference, so the kernel reproduces its
    exact rounding.
    """
    values = np.ascontiguousarray(values, dtype=np.float64)
    if values.size == 0:
        return 0.0
    return float(np.cumsum(values)[-1])


def row_max(indptr: np.ndarray, per_occurrence: np.ndarray) -> np.ndarray:
    """Per-CSR-row maximum of ``per_occurrence`` values (empty rows → 0.0).

    ``indptr`` is the ``n_records + 1`` CSR offset array; ``per_occurrence``
    holds one value per token occurrence.  Since empty rows span no
    occurrences, reducing at the starts of the non-empty rows alone covers
    each such row's exact segment.
    """
    n_records = len(indptr) - 1
    result = np.zeros(n_records, dtype=np.float64)
    lengths = np.diff(indptr)
    nonempty = lengths > 0
    if np.any(nonempty):
        starts = indptr[:-1][nonempty]
        result[nonempty] = np.maximum.reduceat(per_occurrence, starts)
    return result


def mask_to_bitset(mask: np.ndarray) -> np.ndarray:
    """Pack a per-record boolean mask into a record bitset."""
    return bitset_from_indices(np.flatnonzero(mask), len(mask))
