"""Generalization hierarchies, automatic builders, lattices and hierarchy I/O."""

from __future__ import annotations

from repro.hierarchy.builders import (
    ROOT_LABEL,
    build_categorical_hierarchy,
    build_hierarchies_for_dataset,
    build_item_hierarchy,
    build_numeric_hierarchy,
    format_interval,
    interval_bounds,
    parse_interval,
)
from repro.hierarchy.hierarchy import Hierarchy, HierarchyBuilder, HierarchyNode
from repro.hierarchy.io import (
    hierarchy_from_paths,
    load_hierarchies,
    load_hierarchy,
    read_hierarchy_text,
    save_hierarchies,
    save_hierarchy,
    write_hierarchy_text,
)
from repro.hierarchy.lattice import GeneralizationLattice, LevelVector

__all__ = [
    "ROOT_LABEL",
    "Hierarchy",
    "HierarchyBuilder",
    "HierarchyNode",
    "GeneralizationLattice",
    "LevelVector",
    "build_categorical_hierarchy",
    "build_hierarchies_for_dataset",
    "build_item_hierarchy",
    "build_numeric_hierarchy",
    "format_interval",
    "interval_bounds",
    "parse_interval",
    "hierarchy_from_paths",
    "load_hierarchies",
    "load_hierarchy",
    "read_hierarchy_text",
    "save_hierarchies",
    "save_hierarchy",
    "write_hierarchy_text",
]
