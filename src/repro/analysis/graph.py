"""Project-wide module import graph and call graph.

The file-local rules of :mod:`repro.analysis.rules` see one module at a
time; the interprocedural rules (REP009–REP011, and REP006's worker
resolution) need to know *who calls whom* across the whole analyzed path
set.  This module builds that picture from nothing but the parsed ASTs:

* a **module graph** — every analyzed module keyed by root-relative path,
  with its import edges resolved back to analyzed modules where possible;
* a **symbol table** per module — top-level functions, classes, methods and
  nested functions, plus the import aliases visible at module scope;
* a **call graph** — one :class:`FunctionInfo` node per function/method
  (identified as ``path.py::Qualified.name``, the same reference syntax the
  invariant manifest uses) and one :class:`CallSite` per ``ast.Call``,
  with the callee resolved through local scopes, module-level definitions,
  ``self``/``cls`` method dispatch and import aliases.

Resolution is deliberately conservative: a call that cannot be traced to a
project symbol stays *unresolved* (``callee=None``) and rules treat it as
an opaque external call.  Dynamic dispatch through arbitrary objects is out
of scope — the rules that consume the graph are designed so that an
unresolved call never produces a finding by itself.

The graph is built lazily, once per analysis run, via
:meth:`repro.analysis.core.Project.graph`.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator, Mapping

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (core ↔ graph)
    from repro.analysis.core import ModuleContext, Project


def module_names(relpath: str) -> tuple[str, ...]:
    """Dotted import names a root-relative path may be imported as.

    ``src/repro/columnar/shared.py`` is importable as
    ``repro.columnar.shared`` (the ``src`` layout) and, defensively, as the
    full path-derived name; package ``__init__.py`` files take the package's
    own name.
    """
    parts = list(relpath.split("/"))
    if not parts[-1].endswith(".py"):
        return ()
    parts[-1] = parts[-1][: -len(".py")]
    if parts[-1] == "__init__":
        parts.pop()
    if not parts:
        return ()
    names = [".".join(parts)]
    if len(parts) > 1:
        names.append(".".join(parts[1:]))  # strip the src/-style root dir
    return tuple(names)


@dataclass(frozen=True)
class FunctionInfo:
    """One function or method node of the call graph."""

    id: str  # "path/to/file.py::Qualified.name"
    module: str  # root-relative path of the defining module
    qualname: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    #: Positional-or-keyword parameter names, in order (``self``/``cls``
    #: included for methods so argument indices line up with call sites).
    params: tuple[str, ...]
    #: Keyword-only parameter names.
    kwonly: tuple[str, ...]
    #: Qualified name of the enclosing class ("" for plain functions).
    owner_class: str = ""
    #: True when the def is nested inside another function (not picklable
    #: under spawn, invisible at module import time).
    nested: bool = False

    def param_index(self, name: str) -> int | None:
        """Positional index of a parameter name (``None`` if keyword-only)."""
        try:
            return self.params.index(name)
        except ValueError:
            return None


@dataclass(frozen=True)
class CallSite:
    """One ``ast.Call`` inside a function (or at module level)."""

    caller: str  # FunctionInfo id, or "path.py::" for module-level code
    module: str
    call: ast.Call
    #: Syntactic callee name: the last dotted component ("close" for
    #: ``seg.close()``, "SharedMemory" for ``shared_memory.SharedMemory()``).
    name: str
    #: Resolved project callee (FunctionInfo id), or None.
    callee: str | None
    #: Resolved class id when the call constructs a project class.
    constructs: str | None = None


@dataclass
class _ModuleTable:
    """Import aliases and top-level symbols of one module."""

    relpath: str
    #: import alias -> dotted module name (``import a.b as c`` => c -> a.b;
    #: ``import a.b`` => a -> a).
    module_aliases: dict[str, str] = field(default_factory=dict)
    #: local name -> (dotted module, symbol) for ``from mod import sym``.
    symbol_imports: dict[str, tuple[str, str]] = field(default_factory=dict)
    #: top-level (and nested) function/class qualnames defined here.
    functions: set[str] = field(default_factory=set)
    classes: set[str] = field(default_factory=set)


class ProjectGraph:
    """Module import graph + call graph over one analyzed :class:`Project`."""

    def __init__(self) -> None:
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ast.ClassDef] = {}
        #: caller id -> call sites lexically inside that function.
        self._sites: dict[str, list[CallSite]] = {}
        #: caller id -> resolved callee ids.
        self.callees: dict[str, set[str]] = {}
        #: callee id -> caller ids.
        self.callers: dict[str, set[str]] = {}
        #: module relpath -> imported module relpaths (project-internal only).
        self.module_imports: dict[str, set[str]] = {}
        self._tables: dict[str, _ModuleTable] = {}
        self._by_dotted: dict[str, str] = {}
        self._modules: dict[str, "ModuleContext"] = {}
        #: cache slot for the dataflow summary table (see dataflow.summaries).
        self.summary_cache: object | None = None

    # -- construction ---------------------------------------------------------
    @classmethod
    def build(cls, project: "Project") -> "ProjectGraph":
        graph = cls()
        for module in project.modules:
            graph._modules[module.relpath] = module
            for dotted in module_names(module.relpath):
                graph._by_dotted.setdefault(dotted, module.relpath)
        for module in project.modules:
            graph._collect(module)
        for module in project.modules:
            graph._link_calls(module)
        return graph

    def _collect(self, module: "ModuleContext") -> None:
        table = _ModuleTable(relpath=module.relpath)
        self._tables[module.relpath] = table
        imported: set[str] = set()
        package = self._package_of(module.relpath)
        for node in module.walk():
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    table.module_aliases[bound] = (
                        alias.name if alias.asname else alias.name.split(".")[0]
                    )
                    self._note_import(imported, alias.name)
            elif isinstance(node, ast.ImportFrom):
                dotted = self._absolute_from(node, package)
                if dotted is None:
                    continue
                self._note_import(imported, dotted)
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    bound = alias.asname or alias.name
                    # ``from a import b`` may bind a submodule or a symbol;
                    # record both interpretations and let resolution pick.
                    table.symbol_imports[bound] = (dotted, alias.name)
                    if f"{dotted}.{alias.name}" in self._by_dotted:
                        table.module_aliases[bound] = f"{dotted}.{alias.name}"
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = module.qualname(node)
                table.functions.add(qualname)
                owner = self._owner_class(module, node)
                enclosing = module.enclosing_function(node)
                params = tuple(
                    arg.arg
                    for arg in (*node.args.posonlyargs, *node.args.args)
                )
                info = FunctionInfo(
                    id=f"{module.relpath}::{qualname}",
                    module=module.relpath,
                    qualname=qualname,
                    node=node,
                    params=params,
                    kwonly=tuple(arg.arg for arg in node.args.kwonlyargs),
                    owner_class=owner,
                    nested=enclosing is not None,
                )
                self.functions[info.id] = info
            elif isinstance(node, ast.ClassDef):
                qualname = module.qualname(node)
                table.classes.add(qualname)
                self.classes[f"{module.relpath}::{qualname}"] = node
        self.module_imports[module.relpath] = imported

    def _note_import(self, imported: set[str], dotted: str) -> None:
        target = self._by_dotted.get(dotted)
        if target is not None:
            imported.add(target)

    def _package_of(self, relpath: str) -> str:
        names = module_names(relpath)
        if not names:
            return ""
        dotted = names[0]
        if relpath.endswith("__init__.py"):
            return dotted
        return dotted.rpartition(".")[0]

    def _absolute_from(self, node: ast.ImportFrom, package: str) -> str | None:
        if node.level == 0:
            return node.module
        base_parts = package.split(".") if package else []
        # level=1 is the current package; each further level pops one.
        drop = node.level - 1
        if drop > len(base_parts):
            return None
        kept = base_parts[: len(base_parts) - drop] if drop else base_parts
        if node.module:
            kept = [*kept, *node.module.split(".")]
        return ".".join(kept) if kept else None

    def _owner_class(self, module: "ModuleContext", node: ast.AST) -> str:
        for ancestor in module.ancestors(node):
            if isinstance(ancestor, ast.ClassDef):
                return module.qualname(ancestor)
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return ""
        return ""

    # -- call linking ---------------------------------------------------------
    def _link_calls(self, module: "ModuleContext") -> None:
        for node in module.walk():
            if not isinstance(node, ast.Call):
                continue
            enclosing = module.enclosing_function(node)
            caller = (
                f"{module.relpath}::{module.qualname(enclosing)}"
                if enclosing is not None
                else f"{module.relpath}::"
            )
            name = call_name(node)
            callee, constructs = self.resolve_call(module.relpath, caller, node)
            site = CallSite(
                caller=caller,
                module=module.relpath,
                call=node,
                name=name,
                callee=callee,
                constructs=constructs,
            )
            self._sites.setdefault(caller, []).append(site)
            if callee is not None:
                self.callees.setdefault(caller, set()).add(callee)
                self.callers.setdefault(callee, set()).add(caller)

    def resolve_call(
        self, relpath: str, caller: str, call: ast.Call
    ) -> tuple[str | None, str | None]:
        """Resolve one call to a (function id, constructed class id) pair."""
        func = call.func
        if isinstance(func, ast.Name):
            return self._resolve_symbol(relpath, caller, func.id)
        if isinstance(func, ast.Attribute):
            receiver = func.value
            if isinstance(receiver, ast.Name) and receiver.id in ("self", "cls"):
                owner = self._caller_class(caller)
                if owner:
                    return self._resolve_method(relpath, owner, func.attr)
                return None, None
            dotted = _dotted_chain(receiver)
            if dotted is not None:
                target = self._module_for_chain(relpath, dotted)
                if target is not None:
                    return self._resolve_in_module(target, func.attr)
        return None, None

    def resolve_name(
        self, relpath: str, caller: str, name: str
    ) -> tuple[str | None, str | None]:
        """Resolve a bare name reference (not necessarily a call)."""
        return self._resolve_symbol(relpath, caller, name)

    def _caller_class(self, caller: str) -> str:
        relpath, _, qualname = caller.partition("::")
        info = self.functions.get(caller)
        if info is not None:
            return info.owner_class
        # Module-level "caller" or unknown scope: derive from the qualname.
        return qualname.rpartition(".")[0]

    def _resolve_symbol(
        self, relpath: str, caller: str, name: str
    ) -> tuple[str | None, str | None]:
        table = self._tables.get(relpath)
        if table is None:
            return None, None
        # Nested definitions visible from the caller's scope, innermost out.
        _, _, scope = caller.partition("::")
        while scope:
            candidate = f"{scope}.{name}"
            if candidate in table.functions:
                return f"{relpath}::{candidate}", None
            if candidate in table.classes:
                return self._class_result(relpath, candidate)
            scope = scope.rpartition(".")[0]
        if name in table.functions:
            return f"{relpath}::{name}", None
        if name in table.classes:
            return self._class_result(relpath, name)
        imported = table.symbol_imports.get(name)
        if imported is not None:
            target = self._by_dotted.get(imported[0])
            if target is not None:
                return self._resolve_in_module(target, imported[1])
        return None, None

    def _class_result(
        self, relpath: str, qualname: str
    ) -> tuple[str | None, str | None]:
        class_id = f"{relpath}::{qualname}"
        init_id = f"{relpath}::{qualname}.__init__"
        return (init_id if init_id in self.functions else None), class_id

    def _resolve_method(
        self, relpath: str, owner: str, attr: str
    ) -> tuple[str | None, str | None]:
        candidate = f"{relpath}::{owner}.{attr}"
        if candidate in self.functions:
            return candidate, None
        return None, None

    def _resolve_in_module(
        self, relpath: str, symbol: str
    ) -> tuple[str | None, str | None]:
        table = self._tables.get(relpath)
        if table is None:
            return None, None
        if symbol in table.functions:
            return f"{relpath}::{symbol}", None
        if symbol in table.classes:
            return self._class_result(relpath, symbol)
        # Re-exported symbol (``from x import y`` in the target module).
        forwarded = table.symbol_imports.get(symbol)
        if forwarded is not None:
            target = self._by_dotted.get(forwarded[0])
            if target is not None and target != relpath:
                return self._resolve_in_module(target, forwarded[1])
        return None, None

    def _module_for_chain(self, relpath: str, dotted: str) -> str | None:
        table = self._tables.get(relpath)
        if table is None:
            return None
        head, _, rest = dotted.partition(".")
        alias = table.module_aliases.get(head)
        if alias is None:
            return None
        full = f"{alias}.{rest}" if rest else alias
        # Longest-prefix match: "shared_memory.SharedMemory" resolves the
        # module "multiprocessing.shared_memory" (external -> None).
        while full:
            target = self._by_dotted.get(full)
            if target is not None:
                return target
            if "." not in full:
                return None
            full = full.rpartition(".")[0]
        return None

    # -- queries --------------------------------------------------------------
    def call_sites(self, caller: str) -> list[CallSite]:
        return self._sites.get(caller, [])

    def all_call_sites(self) -> Iterator[CallSite]:
        for sites in self._sites.values():
            yield from sites

    def function(self, fid: str) -> FunctionInfo | None:
        return self.functions.get(fid)

    def module(self, relpath: str) -> "ModuleContext | None":
        return self._modules.get(relpath)

    def modules(self) -> Mapping[str, "ModuleContext"]:
        return self._modules

    def callers_of(self, fid: str) -> frozenset[str]:
        return frozenset(self.callers.get(fid, ()))

    def class_node(self, class_id: str) -> ast.ClassDef | None:
        return self.classes.get(class_id)

    def methods_of(self, class_id: str) -> Iterator[FunctionInfo]:
        relpath, _, qualname = class_id.partition("::")
        prefix = f"{relpath}::{qualname}."
        for fid, info in self.functions.items():
            if fid.startswith(prefix) and "." not in fid[len(prefix) :]:
                yield info

    @property
    def edge_count(self) -> int:
        return sum(len(targets) for targets in self.callees.values())

    def stats(self) -> dict[str, int]:
        """Size of the graph (benchmark + reporting payload)."""
        resolved = sum(
            1 for site in self.all_call_sites() if site.callee is not None
        )
        total = sum(len(sites) for sites in self._sites.values())
        return {
            "modules": len(self._modules),
            "import_edges": sum(
                len(edges) for edges in self.module_imports.values()
            ),
            "functions": len(self.functions),
            "call_sites": total,
            "resolved_call_sites": resolved,
            "call_edges": self.edge_count,
        }


def call_name(call: ast.Call) -> str:
    """The last dotted component of a call's callee expression."""
    func = call.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


def _dotted_chain(node: ast.expr) -> str | None:
    """Flatten ``a.b.c`` into ``"a.b.c"`` (None for non-name chains)."""
    parts: list[str] = []
    current: ast.expr = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    return ".".join(reversed(parts))
