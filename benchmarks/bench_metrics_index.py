"""Micro-benchmark: interpretation-index speedup of the transaction metrics.

Measures ``utility_loss`` + ``average_item_frequency_error`` on a generated
10k-record market-basket dataset, comparing the index-backed implementations
(:mod:`repro.metrics.transaction` on :mod:`repro.index`) against faithful
re-implementations of the pre-index hot paths, which re-derived every label's
leaf set per record per label.  The PR's acceptance bar is a >= 5x speedup.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_metrics_index.py

or through pytest (the file is outside the default ``test_*`` collection, so
it only runs when addressed explicitly)::

    python -m pytest benchmarks/bench_metrics_index.py -m slow -s
"""

from __future__ import annotations

import time

import pytest

from repro.datasets import Dataset, generate_market_basket
from repro.datasets.statistics import value_frequencies
from repro.metrics import average_item_frequency_error, utility_loss
from repro.metrics.interpretation import label_leaves

N_RECORDS = 10_000
N_ITEMS = 80
GROUP_SIZE = 4
REQUIRED_SPEEDUP = 5.0


def anonymize_by_groups(dataset: Dataset, group_size: int) -> Dataset:
    """Publish every item as its fixed group of ``group_size`` items.

    This mimics a COAT/PCTA-style output: explicit item-group labels, no
    hierarchy, with a sprinkle of suppression (the last group) to exercise the
    not-covered path.
    """
    items = sorted(dataset.item_universe("Items"))
    groups = [items[n : n + group_size] for n in range(0, len(items), group_size)]
    mapping: dict[str, str | None] = {}
    for position, group in enumerate(groups):
        label = "(" + ",".join(group) + ")" if len(group) > 1 else group[0]
        for item in group:
            mapping[item] = None if position == len(groups) - 1 else label
    anonymized = dataset.copy(name=f"{dataset.name}[grouped]")
    for index, record in enumerate(dataset):
        labels = [
            mapping[item] for item in record["Items"] if mapping[item] is not None
        ]
        anonymized.set_value(index, "Items", labels)
    return anonymized


# -- pre-index implementations (the seed hot paths, root-label fix applied) -----
def baseline_item_cost(label: str, universe: set[str]) -> float:
    if len(universe) <= 1:
        return 0.0
    size = len(label_leaves(str(label), None, universe=universe))
    return max(0, size - 1) / (len(universe) - 1)


def baseline_utility_loss(original: Dataset, anonymized: Dataset) -> float:
    universe = original.item_universe("Items")
    total_items = sum(len(record["Items"]) for record in original)
    if total_items == 0:
        return 0.0
    loss = 0.0
    for original_record, anonymized_record in zip(original, anonymized):
        target_labels = anonymized_record["Items"]
        covered: set[str] = set()
        for label in target_labels:
            covered |= label_leaves(str(label), None, universe=universe)
        covered &= universe
        for item in original_record["Items"]:
            if item not in covered:
                loss += 1.0
                continue
            best = 1.0
            for label in target_labels:
                leaves = label_leaves(str(label), None, universe=universe)
                if item in leaves:
                    best = min(best, baseline_item_cost(label, universe))
            loss += best
    return loss / total_items


def baseline_average_item_frequency_error(
    original: Dataset, anonymized: Dataset, floor: float = 1.0
) -> float:
    universe = original.item_universe("Items")
    actual = value_frequencies(original, "Items")
    estimates = {item: 0.0 for item in universe}
    for record in anonymized:
        for label in record["Items"]:
            leaves = label_leaves(str(label), None, universe=universe) & set(universe)
            if not leaves:
                continue
            weight = 1.0 / len(leaves)
            for item in leaves:
                estimates[item] += weight
    errors = [
        abs(estimates.get(item, 0.0) - actual.get(item, 0))
        / max(actual.get(item, 0), floor)
        for item in universe
    ]
    return sum(errors) / len(errors) if errors else 0.0


def timed(function, *args) -> tuple[float, float]:
    start = time.perf_counter()
    result = function(*args)
    return result, time.perf_counter() - start


def run_benchmark() -> dict:
    original = generate_market_basket(n_records=N_RECORDS, n_items=N_ITEMS, seed=2014)
    anonymized = anonymize_by_groups(original, GROUP_SIZE)

    baseline_ul, baseline_ul_seconds = timed(baseline_utility_loss, original, anonymized)
    baseline_fe, baseline_fe_seconds = timed(
        baseline_average_item_frequency_error, original, anonymized
    )
    indexed_ul, indexed_ul_seconds = timed(utility_loss, original, anonymized)
    indexed_fe, indexed_fe_seconds = timed(
        average_item_frequency_error, original, anonymized
    )

    baseline_seconds = baseline_ul_seconds + baseline_fe_seconds
    indexed_seconds = indexed_ul_seconds + indexed_fe_seconds
    return {
        "n_records": N_RECORDS,
        "n_items": N_ITEMS,
        "utility_loss": {"baseline": baseline_ul, "indexed": indexed_ul},
        "frequency_error": {"baseline": baseline_fe, "indexed": indexed_fe},
        "baseline_seconds": baseline_seconds,
        "indexed_seconds": indexed_seconds,
        "speedup": baseline_seconds / indexed_seconds if indexed_seconds else float("inf"),
    }


@pytest.mark.slow
def test_metrics_index_speedup(record):
    payload = run_benchmark()
    record("metrics_index_speedup", payload)
    assert payload["utility_loss"]["indexed"] == pytest.approx(
        payload["utility_loss"]["baseline"]
    )
    assert payload["frequency_error"]["indexed"] == pytest.approx(
        payload["frequency_error"]["baseline"]
    )
    assert payload["speedup"] >= REQUIRED_SPEEDUP


if __name__ == "__main__":
    payload = run_benchmark()
    print(f"dataset: {payload['n_records']} records, {payload['n_items']} items")
    print(
        "utility_loss:          baseline={baseline:.6f} indexed={indexed:.6f}".format(
            **payload["utility_loss"]
        )
    )
    print(
        "avg frequency error:   baseline={baseline:.6f} indexed={indexed:.6f}".format(
            **payload["frequency_error"]
        )
    )
    print(
        f"baseline {payload['baseline_seconds']:.3f}s, "
        f"indexed {payload['indexed_seconds']:.3f}s, "
        f"speedup {payload['speedup']:.1f}x (required: {REQUIRED_SPEEDUP:.0f}x)"
    )
