"""Tests for the generalization hierarchy data structure."""

import pytest

from repro.exceptions import HierarchyError
from repro.hierarchy import Hierarchy, HierarchyBuilder


@pytest.fixture
def education() -> Hierarchy:
    r"""A small hand-built hierarchy:

    ::

            *
           / \
      Lower   Higher
       /  \     /  \
    Prim  Sec  BSc  MSc
    """
    builder = HierarchyBuilder("*", attribute="Education")
    builder.add("Lower", "*")
    builder.add("Higher", "*")
    builder.add("Primary", "Lower")
    builder.add("Secondary", "Lower")
    builder.add("BSc", "Higher")
    builder.add("MSc", "Higher")
    return builder.build()


class TestStructure:
    def test_height_and_levels(self, education):
        assert education.height == 2
        assert education.level("Primary") == 0
        assert education.level("Lower") == 1
        assert education.level("*") == 2

    def test_leaves(self, education):
        assert sorted(education.leaves()) == ["BSc", "MSc", "Primary", "Secondary"]
        assert sorted(education.leaves("Lower")) == ["Primary", "Secondary"]
        assert education.leaf_count() == 4
        assert education.leaf_count("Higher") == 2
        assert education.leaf_count("MSc") == 1

    def test_parent_children(self, education):
        assert education.parent("Primary") == "Lower"
        assert education.parent("*") is None
        assert sorted(education.children("Higher")) == ["BSc", "MSc"]

    def test_ancestors(self, education):
        assert education.ancestors("Primary") == ["Lower", "*"]
        assert education.ancestors("Primary", include_self=True) == [
            "Primary",
            "Lower",
            "*",
        ]

    def test_unknown_label_raises(self, education):
        with pytest.raises(HierarchyError):
            education.node("Unknown")

    def test_contains_and_len(self, education):
        assert "Primary" in education
        assert "Unknown" not in education
        assert len(education) == 7


class TestGeneralization:
    def test_generalize_steps(self, education):
        assert education.generalize("Primary", 0) == "Primary"
        assert education.generalize("Primary", 1) == "Lower"
        assert education.generalize("Primary", 2) == "*"
        assert education.generalize("Primary", 99) == "*"

    def test_generalize_to_level(self, education):
        assert education.generalize_to_level("BSc", 0) == "BSc"
        assert education.generalize_to_level("BSc", 1) == "Higher"
        assert education.generalize_to_level("BSc", 2) == "*"
        with pytest.raises(HierarchyError):
            education.generalize_to_level("BSc", -1)

    def test_lowest_common_ancestor(self, education):
        assert education.lowest_common_ancestor(["Primary", "Secondary"]) == "Lower"
        assert education.lowest_common_ancestor(["Primary", "BSc"]) == "*"
        assert education.lowest_common_ancestor(["MSc"]) == "MSc"
        with pytest.raises(HierarchyError):
            education.lowest_common_ancestor([])

    def test_is_ancestor_and_covers(self, education):
        assert education.is_ancestor("Lower", "Primary")
        assert education.is_ancestor("*", "MSc")
        assert education.is_ancestor("MSc", "MSc")
        assert not education.is_ancestor("Lower", "BSc")
        assert education.covers("Higher", "BSc")


class TestBuilder:
    def test_duplicate_label_rejected(self):
        builder = HierarchyBuilder("*")
        builder.add("A", "*")
        with pytest.raises(HierarchyError):
            builder.add("A", "*")

    def test_missing_parent_rejected(self):
        builder = HierarchyBuilder("*")
        with pytest.raises(HierarchyError):
            builder.add("A", "Missing")

    def test_add_path_reuses_prefixes(self):
        builder = HierarchyBuilder("*")
        builder.add_path(["Europe", "Greece", "Athens"])
        builder.add_path(["Europe", "Greece", "Patras"])
        hierarchy = builder.build()
        assert hierarchy.parent("Patras") == "Greece"
        assert hierarchy.leaf_count("Europe") == 2

    def test_add_path_conflicting_parent_rejected(self):
        builder = HierarchyBuilder("*")
        builder.add_path(["Europe", "Greece"])
        with pytest.raises(HierarchyError):
            builder.add_path(["Asia", "Greece"])

    def test_set_interval(self):
        builder = HierarchyBuilder("*")
        builder.add("[0-10]", "*")
        builder.set_interval("[0-10]", 0, 10)
        hierarchy = builder.build()
        assert hierarchy.node("[0-10]").interval == (0.0, 10.0)
        with pytest.raises(HierarchyError):
            builder.set_interval("missing", 0, 1)

    def test_to_mapping_rows_round_trips_structure(self, education):
        rows = education.to_mapping_rows()
        assert ["Primary", "Lower", "*"] in rows
        assert len(rows) == 4
