"""SECRETA reproduction: evaluate and compare anonymization algorithms.

The package is organised in layers (see ``DESIGN.md``):

* :mod:`repro.datasets` — the RT-dataset model, CSV I/O, editing, statistics
  and synthetic data generators,
* :mod:`repro.hierarchy` — generalization hierarchies and lattices,
* :mod:`repro.policies` — privacy and utility policies (COAT/PCTA),
* :mod:`repro.queries` — query workloads and Average Relative Error,
* :mod:`repro.columnar` — the bitset/columnar kernel layer: tokenized item
  vocabularies, CSR item columns and dense ``uint64`` posting bitsets with
  popcount kernels (see ``docs/columnar.md``),
* :mod:`repro.index` — the interpretation index: shared, memoized
  label→leaves/cost resolution (:class:`~repro.index.LabelInterpreter`) and
  bitset-backed item posting lists with memoized group unions
  (:class:`~repro.index.InvertedIndex`); the metric, query and
  constraint-algorithm hot paths all run on it,
* :mod:`repro.metrics` — information-loss metrics and privacy verification,
* :mod:`repro.algorithms` — the nine anonymization algorithms and the three
  RT bounding methods,
* :mod:`repro.engine` — the backend: configurations, the anonymization
  module, the method evaluator/comparator and the experimentation module,
* :mod:`repro.frontend` — the headless counterpart of the GUI: session
  facade, text plotting and export.

The most convenient entry point is :class:`Session` together with the
configuration helpers ``relational_config`` / ``transaction_config`` /
``rt_config``::

    from repro import Session, rt_config

    session = Session.generate_rt(n_records=500, seed=1)
    report = session.evaluate(rt_config("cluster", "coat", k=5, m=2))
    print(report.summary())
"""

from __future__ import annotations

from repro.datasets import (
    Attribute,
    AttributeKind,
    Dataset,
    DatasetDomains,
    DatasetEditor,
    Schema,
    ADVERSARIAL_GENERATORS,
    generate_adult_like,
    generate_correlated_rt,
    generate_market_basket,
    generate_outlier_rt,
    generate_rt_dataset,
    generate_skewed_rt,
    load_csv,
    save_csv,
    toy_rt_dataset,
)
from repro.engine import (
    AnonymizationConfig,
    ComparisonReport,
    EvaluationReport,
    ExperimentResources,
    MethodComparator,
    MethodEvaluator,
    ParameterSweep,
    Series,
    SweepResult,
    relational_config,
    rt_config,
    transaction_config,
)
from repro.exceptions import SecretaError
from repro.frontend import Session

# Imported after the engine: the attack simulator sits on top of the index
# and metrics layers, which the imports above finish initializing.
from repro.attacks import (
    AttackResult,
    item_attack,
    qi_attack,
    rt_attack,
    simulate_attacks,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "SecretaError",
    "AttackResult",
    "item_attack",
    "qi_attack",
    "rt_attack",
    "simulate_attacks",
    "Attribute",
    "AttributeKind",
    "Dataset",
    "DatasetDomains",
    "DatasetEditor",
    "Schema",
    "ADVERSARIAL_GENERATORS",
    "generate_adult_like",
    "generate_correlated_rt",
    "generate_market_basket",
    "generate_outlier_rt",
    "generate_rt_dataset",
    "generate_skewed_rt",
    "load_csv",
    "save_csv",
    "toy_rt_dataset",
    "AnonymizationConfig",
    "ComparisonReport",
    "EvaluationReport",
    "ExperimentResources",
    "MethodComparator",
    "MethodEvaluator",
    "ParameterSweep",
    "Series",
    "SweepResult",
    "relational_config",
    "rt_config",
    "transaction_config",
    "Session",
]
