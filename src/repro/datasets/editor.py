"""Headless counterpart of SECRETA's Dataset Editor.

The GUI Dataset Editor lets a data publisher load a dataset, "edit attribute
names and values, add/delete rows and attributes", store the changes and plot
attribute histograms.  :class:`DatasetEditor` exposes the same operations as a
programmatic API with undo support, so example scripts and tests can replay
exactly the interactions described in the paper's demonstration plan.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Callable, Sequence

from repro.datasets.attributes import Attribute
from repro.datasets.csv_io import load_csv, save_csv
from repro.datasets.dataset import Dataset
from repro.datasets.statistics import attribute_histogram
from repro.exceptions import DatasetError


class DatasetEditor:
    """Interactive-style editing of a :class:`Dataset` with undo history."""

    def __init__(self, dataset: Dataset):
        self._dataset = dataset
        self._history: list[Dataset] = []
        self._redo: list[Dataset] = []

    # -- loading / saving ----------------------------------------------------
    @classmethod
    def open(cls, path: str | Path, **load_kwargs: Any) -> "DatasetEditor":
        """Open a CSV dataset in the editor."""
        return cls(load_csv(path, **load_kwargs))

    def save(self, path: str | Path) -> Path:
        """Store the (possibly modified) dataset to a CSV file."""
        return save_csv(self._dataset, path)

    # -- state ----------------------------------------------------------------
    @property
    def dataset(self) -> Dataset:
        """The dataset being edited (live object)."""
        return self._dataset

    @property
    def can_undo(self) -> bool:
        return bool(self._history)

    @property
    def can_redo(self) -> bool:
        return bool(self._redo)

    def _checkpoint(self) -> None:
        self._history.append(self._dataset.copy())
        self._redo.clear()

    def undo(self) -> None:
        """Revert the most recent editing operation."""
        if not self._history:
            raise DatasetError("nothing to undo")
        self._redo.append(self._dataset)
        self._dataset = self._history.pop()

    def redo(self) -> None:
        """Re-apply the most recently undone operation."""
        if not self._redo:
            raise DatasetError("nothing to redo")
        self._history.append(self._dataset)
        self._dataset = self._redo.pop()

    # -- editing operations (each is one undoable step) -----------------------
    def rename_attribute(self, old_name: str, new_name: str) -> None:
        self._checkpoint()
        self._dataset.rename_attribute(old_name, new_name)

    def set_value(self, record_index: int, attribute: str, value: Any) -> None:
        self._checkpoint()
        self._dataset.set_value(record_index, attribute, value)

    def add_record(self, values: dict[str, Any]) -> None:
        self._checkpoint()
        self._dataset.append(values)

    def delete_record(self, record_index: int) -> None:
        self._checkpoint()
        self._dataset.remove_record(record_index)

    def add_attribute(
        self,
        attribute: Attribute,
        values: Sequence[Any] | None = None,
        default: Any = None,
    ) -> None:
        self._checkpoint()
        self._dataset.add_attribute(attribute, values=values, default=default)

    def delete_attribute(self, name: str) -> None:
        self._checkpoint()
        self._dataset.remove_attribute(name)

    def transform_column(self, name: str, transform: Callable[[Any], Any]) -> None:
        """Apply ``transform`` to every value of a column (one undo step)."""
        self._checkpoint()
        self._dataset.map_column(name, transform)

    # -- analysis --------------------------------------------------------------
    def histogram(self, attribute: str, bins: int = 10) -> dict:
        """Histogram of ``attribute`` (see :func:`attribute_histogram`)."""
        return attribute_histogram(self._dataset, attribute, bins=bins)
