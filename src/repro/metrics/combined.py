"""Combined utility indicators for RT-datasets.

When both relational and transaction attributes are anonymized, SECRETA's
comparison plots report a utility figure per side (GCP for the relational
part, UL for the transaction part) and, for ranking configurations, a single
combined score.  The combined score is a convex combination of the two,
weighted by how much the data publisher cares about each side — the same
trade-off the bounding methods (Rmerger / Tmerger / RTmerger) navigate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.datasets.dataset import Dataset
from repro.exceptions import DatasetError
from repro.hierarchy.hierarchy import Hierarchy
from repro.index import interpreter_for
from repro.metrics.relational import RelationalLossContext, global_certainty_penalty
from repro.metrics.transaction import utility_loss


@dataclass(frozen=True)
class RtUtility:
    """Utility figures of an anonymized RT-dataset."""

    relational_gcp: float
    transaction_ul: float
    weight: float

    @property
    def combined(self) -> float:
        """Weighted combination: ``weight * GCP + (1 - weight) * UL``."""
        return self.weight * self.relational_gcp + (1 - self.weight) * self.transaction_ul

    def as_dict(self) -> dict:
        return {
            "relational_gcp": self.relational_gcp,
            "transaction_ul": self.transaction_ul,
            "combined": self.combined,
            "weight": self.weight,
        }


def rt_utility(
    original: Dataset,
    anonymized: Dataset,
    relational_attributes: Sequence[str] | None = None,
    transaction_attribute: str | None = None,
    hierarchies: Mapping[str, Hierarchy] | None = None,
    weight: float = 0.5,
    context: RelationalLossContext | None = None,
) -> RtUtility:
    """Measure both sides of an anonymized RT-dataset's utility.

    ``weight`` expresses the relative importance of the relational side
    (0 = only the transaction side matters, 1 = only the relational side).
    Both sides run on the shared interpretation index: a caller scoring many
    anonymized versions of the same original (a sweep, a comparison) may pass
    a pre-built relational ``context``, and the transaction side reuses the
    shared per-(hierarchy, universe) label interpreter automatically.
    """
    if not 0 <= weight <= 1:
        raise DatasetError("weight must lie in [0, 1]")
    hierarchies = hierarchies or {}
    relational_gcp = 0.0
    if relational_attributes is None:
        relational_attributes = [
            attribute.name
            for attribute in original.schema.relational
            if attribute.quasi_identifier
        ]
    if relational_attributes:
        relational_gcp = global_certainty_penalty(
            original, anonymized, relational_attributes, hierarchies, context=context
        )
    transaction_ul = 0.0
    transaction_names = original.schema.transaction_names
    if transaction_names:
        attribute = transaction_attribute or transaction_names[0]
        interpreter = interpreter_for(
            hierarchies.get(attribute), original.item_universe(attribute)
        )
        transaction_ul = utility_loss(
            original,
            anonymized,
            attribute=attribute,
            hierarchy=hierarchies.get(attribute),
            interpreter=interpreter,
        )
    return RtUtility(
        relational_gcp=relational_gcp,
        transaction_ul=transaction_ul,
        weight=weight,
    )
