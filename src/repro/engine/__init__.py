"""The SECRETA backend: configurations, execution, evaluation and comparison."""

from __future__ import annotations

from repro.engine.anonymizer import AnonymizationModule
from repro.engine.checkpoint import (
    CheckpointOutcome,
    CheckpointStore,
    atomic_write_bytes,
    stable_digest,
)
from repro.engine.comparator import MethodComparator
from repro.engine.config import (
    SWEEPABLE_PARAMETERS,
    AnonymizationConfig,
    relational_config,
    rt_config,
    transaction_config,
)
from repro.engine.evaluator import MethodEvaluator
from repro.engine.experiment import (
    SWEEP_INDICATORS,
    ParameterSweep,
    VaryingParameterExperiment,
    indicator_series,
)
from repro.engine.faults import CheckpointFaults, Fault, FaultPlan
from repro.engine.pool import WorkerPool, fan_out_shared
from repro.engine.resilience import (
    DEFAULT_POLICY,
    ExecutionPolicy,
    RunReport,
    TaskAttempt,
    TaskReport,
    execute_tasks,
)
from repro.engine.resources import ExperimentResources
from repro.engine.results import (
    ComparisonReport,
    EvaluationReport,
    Series,
    SweepResult,
    merge_series,
)
from repro.engine.runner import EXECUTION_MODES, resolve_mode, run_many

__all__ = [
    "EXECUTION_MODES",
    "resolve_mode",
    "AnonymizationModule",
    "MethodComparator",
    "MethodEvaluator",
    "SWEEPABLE_PARAMETERS",
    "SWEEP_INDICATORS",
    "AnonymizationConfig",
    "relational_config",
    "rt_config",
    "transaction_config",
    "ParameterSweep",
    "VaryingParameterExperiment",
    "indicator_series",
    "ExperimentResources",
    "ComparisonReport",
    "EvaluationReport",
    "Series",
    "SweepResult",
    "merge_series",
    "run_many",
    "WorkerPool",
    "fan_out_shared",
    "DEFAULT_POLICY",
    "ExecutionPolicy",
    "RunReport",
    "TaskAttempt",
    "TaskReport",
    "execute_tasks",
    "Fault",
    "FaultPlan",
    "CheckpointFaults",
    "CheckpointOutcome",
    "CheckpointStore",
    "atomic_write_bytes",
    "stable_digest",
]
