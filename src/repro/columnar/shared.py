"""Shared-memory export of a dataset's columnar views.

``run_many(mode="process")`` originally pickled the full dataset into every
worker, so fan-out cost grew with dataset size × workers.  The flat NumPy
buffers of the columnar layer — CSR item columns, posting bitsets, relational
code/float vectors — are the natural zero-copy payload for
``multiprocessing.shared_memory``: :class:`SharedDatasetExport` packs them
into **one** named segment and describes the layout in a small picklable
:class:`SharedDatasetManifest`; :func:`attach` opens the segment in a worker
and rebuilds a read-only :class:`~repro.datasets.dataset.Dataset` view whose
array payloads are zero-copy views into the segment (only the per-record
Python cells — ``Record`` dicts, itemset ``frozenset`` values — are
materialized locally, since Python objects cannot live in shared memory).

The design splits a cheap shared read-mostly representation from per-worker
private bookkeeping: workers may derive further caches (interpreters,
occurrence joins) privately, and an algorithm that mutates its input simply
drops the shared views from the dataset's columnar cache — the segment itself
is never written to (all attached arrays are marked read-only).

Segment lifecycle: the *exporter* owns the segment and must :meth:`close
<SharedDatasetExport.close>` it (unlink + close); a ``weakref.finalize``
guard unlinks on error paths and interpreter exit.  Attaching processes only
ever ``close`` their mapping.  See ``docs/parallelism.md`` for the manifest
format and the pool lifecycle rules.
"""

from __future__ import annotations

import pickle
import weakref
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import TYPE_CHECKING, Any, Iterable

import numpy as np

from repro.columnar.column import TransactionColumn
from repro.columnar.registry import clear_segment, new_segment_name, register_segment
from repro.columnar.relational import CategoricalColumn, NumericColumn
from repro.columnar.vocabulary import ItemVocabulary
from repro.datasets.attributes import Attribute, AttributeKind, Schema
from repro.exceptions import ExportError, SchemaError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (dataset ↔ columnar)
    from repro.datasets.dataset import Dataset

#: Array start offsets are aligned so every view is cache-line aligned.
_ALIGNMENT = 64


@dataclass(frozen=True)
class SharedArraySpec:
    """Location of one array inside the shared segment."""

    offset: int
    dtype: str  # numpy dtype string with explicit byte order, e.g. "<i8"
    shape: tuple[int, ...]


@dataclass(frozen=True)
class SharedDatasetManifest:
    """The small picklable description of an exported dataset.

    This is everything a worker needs to rebuild the dataset view: the
    segment name, the schema metadata, where each array lives inside the
    segment (:class:`SharedArraySpec` per key), and the per-attribute
    distinct cell values of relational columns (small: one entry per
    *distinct* value, never per record).
    """

    segment: str
    dataset_name: str
    n_records: int
    #: ``(name, kind value, quasi_identifier)`` per attribute, schema order.
    attributes: tuple[tuple[str, str, bool], ...]
    #: ``(key, spec)`` pairs; keys are ``"<attribute>/<component>"``.
    arrays: tuple[tuple[str, SharedArraySpec], ...]
    #: ``(attribute, distinct values in code order)`` for relational columns.
    relational_values: tuple[tuple[str, tuple], ...]
    #: ``(attribute, distinct cells in exact-identity order)`` for numeric
    #: columns.  Dictionary-key equality (the identity of ``codes``) can
    #: collapse cells whose types differ (``25`` and ``25.0``), which would
    #: change derived views like ``string_codes()``; the per-record
    #: ``<attribute>/cells`` array indexes into this type-exact vocabulary so
    #: reconstruction is faithful.
    numeric_cells: tuple[tuple[str, tuple], ...]
    total_bytes: int

    def schema(self) -> Schema:
        return Schema(
            Attribute(name, AttributeKind(kind), quasi_identifier)
            for name, kind, quasi_identifier in self.attributes
        )

    def array_specs(self) -> dict[str, SharedArraySpec]:
        return dict(self.arrays)


def _encode_strings(strings: Iterable[str]) -> tuple[np.ndarray, np.ndarray]:
    """Pack a sequence of strings into (utf-8 blob, int64 end offsets)."""
    encoded = [string.encode("utf-8") for string in strings]
    offsets = np.zeros(len(encoded) + 1, dtype=np.int64)
    np.cumsum([len(piece) for piece in encoded], out=offsets[1:])
    blob = np.frombuffer(b"".join(encoded), dtype=np.uint8).copy()
    return blob, offsets


def _decode_strings(blob: np.ndarray, offsets: np.ndarray) -> tuple[str, ...]:
    """Inverse of :func:`_encode_strings`."""
    raw = blob.tobytes()
    bounds = offsets.tolist()
    return tuple(
        raw[bounds[position] : bounds[position + 1]].decode("utf-8")
        for position in range(len(bounds) - 1)
    )


def _aligned(offset: int) -> int:
    return -(-offset // _ALIGNMENT) * _ALIGNMENT


def _exact_cell_codes(dataset: "Dataset", attribute: str) -> tuple[np.ndarray, tuple]:
    """Per-record codes over the distinct cells of a numeric column, keyed by
    *type-exact* identity.

    The categorical ``codes`` use dictionary-key equality, under which ``25``
    and ``25.0`` share a code — so ``values[code]`` cannot reconstruct the
    original cells exactly (their ``str()`` forms, hence ``string_codes()``,
    differ).  Keying on ``(type name, repr)`` keeps equal-but-distinct cells
    apart — including ``-0.0`` versus ``0.0``, which compare and hash equal
    as floats yet stringify differently — while preserving the dict
    behaviour for everything else.
    """
    index: dict = {}
    values: list = []
    codes = np.empty(len(dataset), dtype=np.int32)
    for position, record in enumerate(dataset.records):
        value = record[attribute]
        key = (type(value).__name__, repr(value))
        code = index.get(key)
        if code is None:
            code = len(values)
            index[key] = code
            values.append(value)
        codes[position] = code
    return codes, tuple(values)


def _unlink_segment(segment: shared_memory.SharedMemory) -> None:
    """Best-effort close + unlink + registry clear (finalizer: never raises)."""
    try:
        segment.close()
    except Exception:  # pragma: no cover - defensive
        pass
    try:
        segment.unlink()
    except FileNotFoundError:
        pass
    except Exception:  # pragma: no cover - defensive
        pass
    try:
        # Cleared *after* unlink: a crash in between leaves a registry entry
        # pointing at a dead (or soon-reaped) segment, never a live orphan.
        clear_segment(segment.name)
    except Exception:  # pragma: no cover - defensive
        pass


def _create_registered_segment(size: int) -> shared_memory.SharedMemory:
    """Create a named segment whose name is sidecar-registered *first*.

    The name is generated here (rather than letting ``SharedMemory`` pick
    one) precisely so it can be written to the crash registry before the
    segment exists; collisions are cryptographically unlikely, but the
    create is still retried a bounded number of times for defense in depth.
    """
    last_error: BaseException | None = None
    for _ in range(3):
        name = new_segment_name()
        register_segment(name)
        try:
            # repro: allow[REP001] -- the name is sidecar-registered above (reaped after a crash) and the caller attaches its weakref.finalize unlink guard immediately on return
            return shared_memory.SharedMemory(name=name, create=True, size=size)
        except FileExistsError as error:
            clear_segment(name)
            last_error = error
    raise ExportError(
        "could not allocate a shared-memory segment: three fresh names "
        "already existed"
    ) from last_error


class SharedDatasetExport:
    """One dataset packed into a single shared-memory segment.

    Builds (or reuses) the dataset's columnar views — including the posting
    bitsets of every transaction attribute, so workers never recompute them —
    copies the flat arrays into one segment, and exposes the picklable
    :attr:`manifest` that :func:`attach` consumes.  The export owns the
    segment: call :meth:`close` (or use the instance as a context manager) to
    unlink it; a finalizer guarantees unlinking on error paths.
    """

    def __init__(self, dataset: "Dataset") -> None:
        schema = dataset.schema
        self._columns: dict[str, Any] = {
            attribute.name: dataset.columnar(attribute.name) for attribute in schema
        }
        payloads: list[tuple[str, np.ndarray]] = []
        relational_values: list[tuple[str, tuple]] = []
        numeric_cells: list[tuple[str, tuple]] = []
        for attribute in schema:
            column = self._columns[attribute.name]
            if attribute.is_transaction:
                blob, offsets = _encode_strings(column.vocabulary.items)
                payloads += [
                    (f"{attribute.name}/indptr", column.indptr),
                    (f"{attribute.name}/tokens", column.tokens),
                    (f"{attribute.name}/postings", column.bitset_postings()),
                    (f"{attribute.name}/vocab_blob", blob),
                    (f"{attribute.name}/vocab_offsets", offsets),
                ]
            else:
                payloads.append((f"{attribute.name}/codes", column.codes))
                relational_values.append((attribute.name, tuple(column.values)))
                if attribute.is_numeric:
                    payloads.append((f"{attribute.name}/numbers", column.numbers))
                    cells, values = _exact_cell_codes(dataset, attribute.name)
                    payloads.append((f"{attribute.name}/cells", cells))
                    numeric_cells.append((attribute.name, values))

        specs: list[tuple[str, SharedArraySpec, np.ndarray]] = []
        offset = 0
        for key, array in payloads:
            array = np.ascontiguousarray(array)
            offset = _aligned(offset)
            specs.append(
                (key, SharedArraySpec(offset, array.dtype.str, array.shape), array)
            )
            offset += array.nbytes

        self._segment = _create_registered_segment(size=max(offset, 1))
        # The finalizer exists from the instant the segment does, so a
        # failure while copying payloads below still unlinks it.
        self._closed = False
        self._finalizer = weakref.finalize(self, _unlink_segment, self._segment)
        for _, spec, array in specs:
            view = np.ndarray(
                spec.shape,
                dtype=np.dtype(spec.dtype),
                buffer=self._segment.buf,
                offset=spec.offset,
            )
            np.copyto(view, array, casting="no")
            del view  # no exported buffers may outlive close()

        self.manifest = SharedDatasetManifest(
            segment=self._segment.name,
            dataset_name=dataset.name,
            n_records=len(dataset),
            attributes=tuple(
                (a.name, a.kind.value, a.quasi_identifier) for a in schema
            ),
            arrays=tuple((key, spec) for key, spec, _ in specs),
            relational_values=tuple(relational_values),
            numeric_cells=tuple(numeric_cells),
            total_bytes=offset,
        )

    # -- bookkeeping ---------------------------------------------------------
    @property
    def segment_name(self) -> str:
        return self.manifest.segment

    @property
    def payload_bytes(self) -> int:
        """Bytes of array payload placed in shared memory."""
        return self.manifest.total_bytes

    @property
    def manifest_bytes(self) -> int:
        """Pickled size of the manifest — what actually ships per task."""
        return len(pickle.dumps(self.manifest))

    def matches(self, dataset: "Dataset") -> bool:
        """Whether the export still describes ``dataset``.

        Any dataset mutation invalidates its columnar cache, so the cached
        column views differ by identity from the ones this export packed.
        """
        try:
            return all(
                dataset.columnar(name) is column
                for name, column in self._columns.items()
            )
        except SchemaError:
            return False

    def segment_alive(self) -> bool:
        """Whether the segment still exists in the OS namespace.

        An export can go stale without ``close()`` ever being called: the
        resource tracker of a crashed worker generation may unlink segments
        it considered leaked.  Recovery paths probe before re-exporting.
        """
        if self._closed:
            return False
        try:
            probe = shared_memory.SharedMemory(name=self.segment_name)
        except FileNotFoundError:
            return False
        probe.close()
        return True

    # -- lifecycle -----------------------------------------------------------
    def close(self) -> None:
        """Unlink the segment.  Idempotent; safe to call on error paths."""
        if self._closed:
            return
        self._closed = True
        self._finalizer.detach()
        _unlink_segment(self._segment)

    def __enter__(self) -> "SharedDatasetExport":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"SharedDatasetExport(segment={self.segment_name!r}, "
            f"records={self.manifest.n_records}, bytes={self.payload_bytes})"
        )


def attach(manifest: SharedDatasetManifest) -> "Dataset":
    """Rebuild a read-only dataset view from an exported segment.

    Array payloads are zero-copy views into the shared segment (marked
    read-only); the columnar cache of the returned dataset is pre-seeded with
    them, so metric/algorithm kernels in the worker run directly on shared
    memory.  Only the per-record Python cells are materialized locally.

    The returned dataset keeps the segment mapping alive for its own
    lifetime.  Treat it as read-only input: algorithms that transform data
    already copy first (``dataset.copy()``), and mutating the view would only
    drop the shared columns from its cache, never write to the segment.
    """
    from repro.datasets.dataset import Dataset, Record

    # Note on the resource tracker: Python ≤ 3.12 registers a segment on
    # *attach* as well as on create, but pool workers share the exporter's
    # tracker (the fd is inherited by fork and spawn children alike) and its
    # cache is a per-name set — the attach-side registration is an idempotent
    # no-op there, and the exporter's unlink() removes the single entry.
    segment = shared_memory.SharedMemory(name=manifest.segment)
    specs = manifest.array_specs()

    def view(key: str) -> np.ndarray:
        spec = specs[key]
        array = np.ndarray(
            spec.shape,
            dtype=np.dtype(spec.dtype),
            buffer=segment.buf,
            offset=spec.offset,
        )
        array.flags.writeable = False
        return array

    schema = manifest.schema()
    relational_values = dict(manifest.relational_values)
    numeric_cells = dict(manifest.numeric_cells)
    columns: dict[str, Any] = {}
    cells_by_attribute: dict[str, list] = {}
    for attribute in schema:
        name = attribute.name
        if attribute.is_transaction:
            indptr = view(f"{name}/indptr")
            tokens = view(f"{name}/tokens")
            items = _decode_strings(
                view(f"{name}/vocab_blob"), view(f"{name}/vocab_offsets")
            )
            column = TransactionColumn(
                ItemVocabulary(items), indptr, tokens, attribute=name
            )
            column._postings = view(f"{name}/postings")
            columns[name] = column
            bounds = indptr.tolist()
            row_tokens = tokens.tolist()
            cells_by_attribute[name] = [
                frozenset(
                    items[token]
                    for token in row_tokens[bounds[row] : bounds[row + 1]]
                )
                for row in range(manifest.n_records)
            ]
        else:
            codes = view(f"{name}/codes")
            values = relational_values[name]
            if attribute.is_numeric:
                # Reconstruct cells from the type-exact vocabulary (see
                # _exact_cell_codes), not from values[code].
                exact_values = numeric_cells[name]
                cells = [
                    exact_values[code]
                    for code in view(f"{name}/cells").tolist()
                ]
                columns[name] = NumericColumn(
                    values,
                    codes,
                    attribute=name,
                    cells=cells,
                    numbers=view(f"{name}/numbers"),
                )
            else:
                cells = [values[code] for code in codes.tolist()]
                columns[name] = CategoricalColumn(
                    values, codes, attribute=name, cells=cells
                )
            cells_by_attribute[name] = cells

    names = schema.names
    if names:
        per_attribute = [cells_by_attribute[name] for name in names]
        records = [Record(dict(zip(names, row))) for row in zip(*per_attribute)]
    else:
        records = [Record({}) for _ in range(manifest.n_records)]

    dataset = Dataset(schema, name=manifest.dataset_name)
    # repro: allow[REP002] -- attach() pre-seeds a freshly constructed Dataset
    dataset._records = records
    dataset._columnar = columns
    dataset._shared_segment = segment  # keeps the mapping alive with the view
    return dataset


#: Per-process cache of attached datasets, keyed by segment name, so a pool
#: worker attaches each export once and reuses the view across tasks.
#: Segment names are random and never reused within a pool's lifetime.
_ATTACHED: dict[str, "Dataset"] = {}

#: FIFO bound on the attach cache: a long-lived worker serving many exports
#: (e.g. re-exports after dataset mutations) must not accumulate one
#: materialized dataset copy per segment.  Evicted entries only lose their
#: cache slot — in-flight tasks keep their dataset (and its mapping) alive
#: through ordinary references.
_ATTACH_CACHE_LIMIT = 8


def attach_cached(manifest: SharedDatasetManifest) -> "Dataset":
    """:func:`attach`, memoized per process (the worker-side entry point)."""
    dataset = _ATTACHED.get(manifest.segment)
    if dataset is None:
        dataset = attach(manifest)
        while len(_ATTACHED) >= _ATTACH_CACHE_LIMIT:
            _ATTACHED.pop(next(iter(_ATTACHED)))
        _ATTACHED[manifest.segment] = dataset
    return dataset


def resolve_shared_dataset(payload: object) -> object:
    """Turn a task payload into a dataset: attach manifests, pass datasets."""
    if isinstance(payload, SharedDatasetManifest):
        return attach_cached(payload)
    return payload
