"""Micro-benchmark: bitset attack kernels' speedup over the scalar oracle.

Measures the re-identification attack simulator (:mod:`repro.attacks`) on a
50k-record RT-dataset, anonymized in the style of a cluster + item-grouping
run (interval labels on numerics, value groups on categoricals, item-triple
groups with a root ``*`` tail):

* **qi** — :func:`qi_attack`: per-record QI matching sets.  Baseline: the
  per-record Python-set oracle (``vectorized=False``, the REP003 semantic
  reference).  Kernel: per-value cover bitsets gathered through the columnar
  code arrays, chunked AND + popcount.
* **item** — :func:`item_attack` at ``m = 2``: worst item-combination
  matching sets over the km checker's candidate bitsets versus the oracle's
  frozenset algebra (both memoize per distinct basket and combination).
* **rt** — :func:`rt_attack` at ``m = 2``: the combined adversary.  The
  oracle intersects each target's QI matching set with every candidate
  combination one record at a time, so this leg runs on a smaller dataset.

Every comparison asserts the kernel's :class:`AttackResult` equals the
oracle's *as a dataclass* — match sizes, empirical k̂, risks, witnesses —
at benchmark scale, not just on the Hypothesis instances.  Besides asserting
the >= 5x acceptance bar on the QI and RT attacks, the run writes a
machine-readable ``BENCH_attack.json`` at the repository root (seconds and
speedups per attack) so the repo carries a perf trajectory file.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_attacks.py

or through pytest (only collected when addressed explicitly)::

    python -m pytest benchmarks/bench_attacks.py -m slow -s
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.attacks import item_attack, qi_attack, rt_attack
from repro.datasets import generate_rt_dataset
from repro.hierarchy.builders import format_interval

REPO_ROOT = Path(__file__).resolve().parent.parent
TRAJECTORY_FILE = REPO_ROOT / "BENCH_attack.json"

N_RECORDS = 50_000
RT_RECORDS = 20_000
M = 2
REQUIRED_SPEEDUP = 5.0


# -- workload construction --------------------------------------------------------
def generalized_copy(dataset):
    """A cluster + item-grouping output: intervals, groups, root ``*`` tails."""
    anonymized = dataset.copy(name=f"{dataset.name}[generalized]")
    for attribute in dataset.schema.relational:
        if not attribute.quasi_identifier:
            continue
        name = attribute.name
        if attribute.is_numeric:
            anonymized.map_column(
                name,
                lambda value: (
                    None
                    if value is None
                    else format_interval(
                        10 * (int(value) // 10), 10 * (int(value) // 10) + 9
                    )
                ),
            )
        else:
            domain = sorted({str(v) for v in dataset.column(name) if v is not None})
            groups = [domain[n : n + 3] for n in range(0, len(domain), 3)]
            mapping = {}
            for position, group in enumerate(groups):
                label = "(" + ",".join(group) + ")" if len(group) > 1 else group[0]
                for value in group:
                    mapping[value] = label
            anonymized.map_column(name, lambda value: mapping.get(value, value))
    # Item side: group every third item triple, root-generalize the tail.
    transaction_attribute = dataset.schema.transaction_names[0]
    universe = sorted(dataset.item_universe(transaction_attribute))
    item_mapping: dict[str, str] = {}
    for position in range(0, len(universe) - 6, 3):
        triple = universe[position : position + 3]
        label = "(" + ",".join(triple) + ")"
        for item in triple:
            item_mapping[item] = label
    for item in universe[-6:]:
        item_mapping[item] = "*"
    anonymized.map_column(
        transaction_attribute,
        lambda itemset: {item_mapping.get(item, item) for item in itemset},
    )
    return anonymized


def timed_best(function, *args, repeats: int = 3, **kwargs):
    """(result, best-of-``repeats`` wall time) for a steady-state measurement."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = function(*args, **kwargs)
        best = min(best, time.perf_counter() - start)
    return result, best


# -- main -------------------------------------------------------------------------
def run_benchmark(
    n_records: int = N_RECORDS,
    rt_records: int = RT_RECORDS,
    scan_repeats: int = 1,
    kernel_repeats: int = 3,
) -> dict:
    original = generate_rt_dataset(n_records=n_records, n_items=40, seed=2014)
    anonymized = generalized_copy(original)

    entries: dict[str, dict] = {}

    def measure(name: str, attack, *args, **kwargs) -> None:
        oracle_result, oracle_seconds = timed_best(
            attack, *args, vectorized=False, repeats=scan_repeats, **kwargs
        )
        kernel_result, kernel_seconds = timed_best(
            attack, *args, vectorized=True, repeats=kernel_repeats, **kwargs
        )
        # Bit-identical as dataclasses, not approximately: the REP003
        # contract holds at benchmark scale too.
        assert kernel_result == oracle_result
        entries[name] = {
            "baseline_seconds": oracle_seconds,
            "kernel_seconds": kernel_seconds,
            "speedup": oracle_seconds / kernel_seconds,
            "empirical_k": kernel_result.empirical_k,
            "matched": kernel_result.matched,
            "records": kernel_result.n_records,
        }

    measure("qi", qi_attack, original, anonymized)
    measure("item", item_attack, original, anonymized, M)

    rt_original = generate_rt_dataset(n_records=rt_records, n_items=40, seed=2014)
    measure("rt", rt_attack, rt_original, generalized_copy(rt_original), M)

    return {
        "dataset": {
            "n_records": n_records,
            "rt_records": rt_records,
            "m": M,
            "items": len(original.item_universe("Items")),
        },
        **entries,
    }


def write_trajectory(payload: dict) -> Path:
    TRAJECTORY_FILE.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return TRAJECTORY_FILE


@pytest.mark.slow
def test_attack_kernel_speedup(record):
    payload = run_benchmark()
    record("attacks", payload)
    write_trajectory(payload)
    assert payload["qi"]["speedup"] >= REQUIRED_SPEEDUP
    assert payload["item"]["speedup"] >= REQUIRED_SPEEDUP
    assert payload["rt"]["speedup"] >= REQUIRED_SPEEDUP


def test_attack_equivalence_smoke():
    """Fast CI smoke: oracle and kernel agree on a small dataset.

    In CI (``CI`` set) the small-size payload is also written to
    ``BENCH_attack.json`` so the workflow can upload it as an artifact; local
    test runs leave the committed 50k-record trajectory untouched.
    """
    payload = run_benchmark(
        n_records=2_000, rt_records=1_000, scan_repeats=1, kernel_repeats=1
    )
    if os.environ.get("CI"):
        write_trajectory(payload)
    # run_benchmark asserts oracle/kernel equality internally; sanity-check
    # the payload shape here.
    for name in ("qi", "item", "rt"):
        assert payload[name]["baseline_seconds"] > 0.0
        assert payload[name]["empirical_k"] is not None


if __name__ == "__main__":
    result = run_benchmark()
    path = write_trajectory(result)
    print(
        f"dataset: {result['dataset']['n_records']} records "
        f"({result['dataset']['rt_records']} for rt), "
        f"{result['dataset']['items']} items, m={result['dataset']['m']}"
    )
    for name in ("qi", "item", "rt"):
        attack = result[name]
        print(
            f"{name}: baseline {attack['baseline_seconds']:.3f}s, "
            f"kernel {attack['kernel_seconds']:.3f}s, "
            f"speedup {attack['speedup']:.1f}x (k-hat={attack['empirical_k']})"
        )
    print(f"trajectory written to {path}")
