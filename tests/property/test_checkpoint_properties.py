"""Property tests: the checkpoint store never trades durability for truth.

Two invariants drive the random exploration:

* **Prefix interruption is free** — delete any subset of a completed store's
  cells (modelling a run killed at an arbitrary point, since atomic renames
  make "interrupted" exactly "some cells missing") and a resume returns the
  same results as the uninterrupted run, serving precisely the surviving
  cells as hits.
* **Corruption is never served** — flip, truncate or overwrite arbitrary
  bytes of any cell file and the results still never change; damage only
  converts hits into warned recomputes.  There is no byte pattern that makes
  the store silently return wrong data.

A cheap deterministic worker stands in for the anonymization algorithms:
the properties under test are the store's, not the algorithms'.

The digest that keys the cells gets its own canonicalisation properties:
equality across construction orders of hash-randomised containers, and
inequality across type lookalikes.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import run_many
from repro.engine.checkpoint import CheckpointStore, stable_digest, task_key
from repro.engine.resilience import RunReport

#: Deterministic, structured task results: exercising pickle round-trips of
#: the kinds of values real sweep reports carry.
def _evaluate(task: int) -> dict:
    return {
        "index": task,
        "utility": {"ul": task / 7.0, "are": float(task * task)},
        "labels": frozenset({f"i{task}", f"i{task + 1}"}),
        "rows": [[task, f"c{task % 3}"], [task + 1, "x"]],
    }


TASK_COUNT = 6


def run_all(store: CheckpointStore, report: RunReport | None = None) -> list:
    keys = [task_key("prop", n) for n in range(TASK_COUNT)]
    return run_many(
        list(range(TASK_COUNT)),
        _evaluate,
        checkpoint=store,
        checkpoint_keys=keys,
        report=report,
    )


class TestInterruptionResume:
    @given(
        surviving=st.sets(
            st.integers(0, TASK_COUNT - 1), max_size=TASK_COUNT
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_any_surviving_subset_resumes_identically(self, surviving):
        """An interrupted run IS a store with a subset of cells; resume must
        serve exactly those and recompute the rest, changing nothing."""
        with tempfile.TemporaryDirectory() as tmp:
            store = CheckpointStore(tmp)
            reference = run_all(store)

            keys = [task_key("prop", n) for n in range(TASK_COUNT)]
            for position, key in enumerate(keys):
                if position not in surviving:
                    os.unlink(store.cell_path(key))

            resumed_store = CheckpointStore(tmp)
            report = RunReport()
            assert run_all(resumed_store, report) == reference
            counts = report.checkpoint_counts()
            assert counts == {
                "hit": len(surviving),
                "miss": TASK_COUNT - len(surviving),
                "corrupt": 0,
            }
            assert report.warnings == []
            # The resume repaired the store: everything is a hit now.
            final = RunReport()
            assert run_all(CheckpointStore(tmp), final) == reference
            assert final.checkpoint_counts()["hit"] == TASK_COUNT


class TestCorruptionNeverServed:
    @given(
        victim=st.integers(0, TASK_COUNT - 1),
        damage=st.one_of(
            # Overwrite one byte at a relative position with a chosen value.
            st.tuples(
                st.just("overwrite"),
                st.floats(min_value=0.0, max_value=1.0),
                st.integers(0, 255),
            ),
            # Truncate to a relative fraction of the original size.
            st.tuples(
                st.just("truncate"),
                st.floats(min_value=0.0, max_value=1.0),
                st.just(0),
            ),
            # Append trailing garbage.
            st.tuples(st.just("append"), st.just(0.0), st.integers(0, 255)),
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_arbitrary_byte_damage_only_forces_recompute(self, victim, damage):
        with tempfile.TemporaryDirectory() as tmp:
            store = CheckpointStore(tmp)
            reference = run_all(store)

            path = store.cell_path(task_key("prop", victim))
            blob = bytearray(path.read_bytes())
            kind, fraction, value = damage
            if kind == "overwrite":
                position = min(int(fraction * len(blob)), len(blob) - 1)
                changed = blob[position] != value
                blob[position] = value
                path.write_bytes(bytes(blob))
            elif kind == "truncate":
                keep = int(fraction * len(blob))
                changed = keep < len(blob)
                os.truncate(path, keep)
            else:
                changed = True
                path.write_bytes(bytes(blob) + bytes([value]))

            report = RunReport()
            assert run_all(CheckpointStore(tmp), report) == reference
            counts = report.checkpoint_counts()
            if changed:
                assert counts == {
                    "hit": TASK_COUNT - 1,
                    "miss": 0,
                    "corrupt": 1,
                }
                assert len(report.warnings) == 1
            else:  # the damage drew a no-op (same byte value)
                assert counts["hit"] == TASK_COUNT
                assert counts["corrupt"] == 0


# ---------------------------------------------------------------------------
# Digest canonicalisation

scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(-(10**6), 10**6),
    st.floats(allow_nan=False),
    st.text(max_size=8),
    st.binary(max_size=8),
)

values = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=4), children, max_size=4),
        st.frozensets(st.text(max_size=4), max_size=4),
    ),
    max_leaves=12,
)


class TestStableDigest:
    @given(value=values)
    @settings(max_examples=80, deadline=None)
    def test_digest_is_deterministic(self, value):
        assert stable_digest(value) == stable_digest(value)

    @given(mapping=st.dictionaries(st.text(max_size=4), scalars, max_size=6))
    @settings(max_examples=60, deadline=None)
    def test_dict_insertion_order_is_canonical(self, mapping):
        items = list(mapping.items())
        assert stable_digest(dict(items)) == stable_digest(dict(reversed(items)))

    @given(elements=st.frozensets(st.text(max_size=6), max_size=6))
    @settings(max_examples=60, deadline=None)
    def test_set_construction_order_is_canonical(self, elements):
        forward = frozenset(sorted(elements))
        backward = frozenset(sorted(elements, reverse=True))
        assert stable_digest(forward) == stable_digest(backward)
        assert stable_digest(set(elements)) != stable_digest(tuple(sorted(elements)))

    @given(number=st.integers(-(10**6), 10**6))
    @settings(max_examples=40, deadline=None)
    def test_type_tags_separate_lookalikes(self, number):
        assert stable_digest(number) != stable_digest(float(number))
        assert stable_digest(number) != stable_digest(str(number))
