"""REP006: process-safety fixtures."""

from __future__ import annotations

from lint_harness import new_codes

from repro.analysis.manifest import InvariantManifest, WorkerCall

MANIFEST = InvariantManifest(
    spec_classes=("src/pkg/specs.py::TaskSpec",),
    forbidden_field_types=("Lock", "SharedMemory", "TextIO"),
    worker_calls={
        "run_many": WorkerCall(arg=1, process_only=False),
        "fan_out_shared": WorkerCall(arg=2),
        "pool.map": WorkerCall(arg=0),
    },
)

LOCK_FIELD = """
    import threading
    from dataclasses import dataclass

    @dataclass
    class TaskSpec:
        name: str
        guard: threading.Lock
"""

LAMBDA_DEFAULT = """
    from dataclasses import dataclass, field

    @dataclass
    class TaskSpec:
        name: str
        factory: object = field(default=lambda: 0)
"""

CLEAN_SPEC = """
    from dataclasses import dataclass

    @dataclass
    class TaskSpec:
        name: str
        segment_name: str
        k: int
"""

LAMBDA_TO_FAN_OUT = """
    def launch(dataset, tasks):
        return fan_out_shared(dataset, make_tasks, lambda task: task)
"""

LOCAL_WORKER_TO_POOL_MAP = """
    def launch(pool, tasks):
        def helper(task):
            return task

        return pool.map(helper, tasks)
"""

LAMBDA_TO_RUN_MANY_DEFAULT = """
    def launch(tasks):
        return run_many(tasks, lambda task: task)
"""

LAMBDA_TO_RUN_MANY_PROCESS = """
    def launch(tasks):
        return run_many(tasks, lambda task: task, mode="process")
"""

LAMBDA_TO_RUN_MANY_DYNAMIC = """
    def launch(tasks, mode):
        return run_many(tasks, lambda task: task, mode=mode)
"""

MODULE_LEVEL_WORKER = """
    def worker(task):
        return task

    def launch(dataset):
        return fan_out_shared(dataset, make_tasks, worker)
"""

NESTED_WORKER_VIA_FACTORY = """
    def make_worker(scale):
        def worker(task):
            return task * scale

        return worker

    def launch(dataset):
        return fan_out_shared(dataset, make_tasks, make_worker(2))
"""

MODULE_LEVEL_WORKER_VIA_FACTORY = """
    def worker(task):
        return task

    def make_worker(scale):
        return worker

    def launch(dataset):
        return fan_out_shared(dataset, make_tasks, make_worker(2))
"""

NESTED_WORKER_PASSED_BY_NAME = """
    def launch(dataset):
        def worker(task):
            return task

        return fan_out_shared(dataset, make_tasks, worker)
"""


class TestRep006SpecClasses:
    def test_lock_field_is_flagged(self, harness):
        findings = harness.findings(
            "src/pkg/specs.py", LOCK_FIELD, manifest=MANIFEST, select=["REP006"]
        )
        assert new_codes(findings) == ["REP006"]
        assert "guard" in findings[0].message

    def test_lambda_default_is_flagged(self, harness):
        findings = harness.findings(
            "src/pkg/specs.py", LAMBDA_DEFAULT, manifest=MANIFEST, select=["REP006"]
        )
        assert new_codes(findings) == ["REP006"]
        assert "lambda" in findings[0].message

    def test_clean_spec_passes(self, harness):
        assert (
            harness.findings(
                "src/pkg/specs.py", CLEAN_SPEC, manifest=MANIFEST, select=["REP006"]
            )
            == []
        )

    def test_undeclared_class_is_ignored(self, harness):
        findings = harness.findings(
            "src/pkg/other.py", LOCK_FIELD, manifest=MANIFEST, select=["REP006"]
        )
        assert findings == []


class TestRep006Workers:
    def test_lambda_to_fan_out_shared_is_flagged(self, harness):
        findings = harness.findings(
            "src/pkg/mod.py", LAMBDA_TO_FAN_OUT, manifest=MANIFEST, select=["REP006"]
        )
        assert new_codes(findings) == ["REP006"]

    def test_local_function_to_pool_map_is_flagged(self, harness):
        findings = harness.findings(
            "src/pkg/mod.py",
            LOCAL_WORKER_TO_POOL_MAP,
            manifest=MANIFEST,
            select=["REP006"],
        )
        assert new_codes(findings) == ["REP006"]
        assert "helper" in findings[0].message

    def test_run_many_defaults_are_not_process_backed(self, harness):
        assert (
            harness.findings(
                "src/pkg/mod.py",
                LAMBDA_TO_RUN_MANY_DEFAULT,
                manifest=MANIFEST,
                select=["REP006"],
            )
            == []
        )

    def test_run_many_explicit_process_mode_is_flagged(self, harness):
        findings = harness.findings(
            "src/pkg/mod.py",
            LAMBDA_TO_RUN_MANY_PROCESS,
            manifest=MANIFEST,
            select=["REP006"],
        )
        assert new_codes(findings) == ["REP006"]

    def test_run_many_dynamic_mode_is_flagged(self, harness):
        findings = harness.findings(
            "src/pkg/mod.py",
            LAMBDA_TO_RUN_MANY_DYNAMIC,
            manifest=MANIFEST,
            select=["REP006"],
        )
        assert new_codes(findings) == ["REP006"]

    def test_module_level_worker_is_clean(self, harness):
        assert (
            harness.findings(
                "src/pkg/mod.py",
                MODULE_LEVEL_WORKER,
                manifest=MANIFEST,
                select=["REP006"],
            )
            == []
        )

    def test_nested_worker_passed_by_name_is_flagged(self, harness):
        findings = harness.findings(
            "src/pkg/mod.py",
            NESTED_WORKER_PASSED_BY_NAME,
            manifest=MANIFEST,
            select=["REP006"],
        )
        assert new_codes(findings) == ["REP006"]
        assert "worker" in findings[0].message

    def test_factory_returning_nested_worker_is_flagged(self, harness):
        """Interprocedural: the call graph sees through ``make_worker(2)``."""
        findings = harness.findings(
            "src/pkg/mod.py",
            NESTED_WORKER_VIA_FACTORY,
            manifest=MANIFEST,
            select=["REP006"],
        )
        assert new_codes(findings) == ["REP006"]

    def test_factory_returning_module_level_worker_is_clean(self, harness):
        findings = harness.findings(
            "src/pkg/mod.py",
            MODULE_LEVEL_WORKER_VIA_FACTORY,
            manifest=MANIFEST,
            select=["REP006"],
        )
        assert new_codes(findings) == []

    def test_suppression_with_reason_is_honored(self, harness):
        source = LAMBDA_TO_RUN_MANY_PROCESS.replace(
            'mode="process")',
            'mode="process")  # repro: allow[REP006] -- fixture: tests the error',
        )
        findings = harness.findings(
            "src/pkg/mod.py", source, manifest=MANIFEST, select=["REP006"]
        )
        assert len(findings) == 1
        assert findings[0].suppressed
        assert new_codes(findings) == []
