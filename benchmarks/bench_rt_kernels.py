"""Micro-benchmark: relational columnar kernel speedup over the scalar paths.

Measures the two hot paths PR 3 vectorized, on a 50k-record RT-dataset:

* **GCP scoring** — ``global_certainty_penalty`` over a generalized output.
  Baseline: the per-record ``cell_ncp`` loop (the pre-kernel
  ``record_ncp``-based implementation, restated verbatim).  The kernel path
  builds one NCP lookup table per attribute over the anonymized column's
  distinct labels and gathers it with ``np.take``.  Both sides are measured
  steady-state (context memo and columnar views warm) — the engine's regime,
  where one experiment scores the same dataset pair many times.
* **RT bounding merge phase** — repeated merge-partner selection over
  thousands of clusters (strategy ``"rt"``: relational bound widening plus
  transaction Jaccard).  Baseline: the scalar ``_merge_score`` loop that
  re-walks every member record of both clusters per candidate partner.  The
  kernel path maintains per-cluster summaries (:class:`_MergeState`) and
  scores all partners in one vectorized pass per step.

Besides asserting the >= 5x acceptance bar, the run writes a machine-readable
``BENCH_rt.json`` at the repository root (seconds and speedups per workload)
so the repo carries a perf trajectory file.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_rt_kernels.py

or through pytest (only collected when addressed explicitly)::

    python -m pytest benchmarks/bench_rt_kernels.py -m slow -s
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.algorithms import ClusterAnonymizer, RTmerger
from repro.algorithms.rt.bounding import _MergeState
from repro.datasets import generate_rt_dataset
from repro.hierarchy.builders import format_interval
from repro.metrics import RelationalLossContext, global_certainty_penalty

REPO_ROOT = Path(__file__).resolve().parent.parent
TRAJECTORY_FILE = REPO_ROOT / "BENCH_rt.json"

N_RECORDS = 50_000
CLUSTER_SIZE = 25
MERGE_STEPS = 20
REQUIRED_SPEEDUP = 5.0


# -- scalar baselines (pre-kernel hot paths, restated verbatim) -------------------
def scalar_gcp(context: RelationalLossContext, anonymized) -> float:
    """The pre-kernel GCP loop: one ``cell_ncp`` call per record per attribute."""
    total = 0.0
    for record in anonymized:
        total += sum(
            context.cell_ncp(attribute, record[attribute])
            for attribute in context.attributes
        ) / len(context.attributes)
    return total / len(anonymized)


def scalar_merge_phase(algorithm, helper, dataset, attributes, attribute, clusters, steps):
    """The pre-kernel merge loop: scalar ``_merge_score`` over every partner."""
    clusters = [list(cluster) for cluster in clusters]
    chosen = []
    for _ in range(steps):
        worst = 0
        candidates = [p for p in range(len(clusters)) if p != worst]
        partner = min(
            candidates,
            key=lambda p: algorithm._merge_score(
                helper, dataset, attributes, attribute, clusters[worst], clusters[p]
            ),
        )
        merged = sorted(clusters[worst] + clusters[partner])
        keep = [p for p in range(len(clusters)) if p not in (worst, partner)]
        clusters = [clusters[p] for p in keep] + [merged]
        chosen.append(partner)
    return chosen


def kernel_merge_phase(algorithm, helper, dataset, attributes, attribute, clusters, steps):
    """The PR 3 merge loop: summary build + vectorized partner selection."""
    clusters = [list(cluster) for cluster in clusters]
    state = _MergeState(
        algorithm.merge_strategy, helper, dataset, attributes, attribute, clusters
    )
    chosen = []
    for _ in range(steps):
        worst = 0
        partner = state.best_partner(worst)
        merged = sorted(clusters[worst] + clusters[partner])
        keep = [p for p in range(len(clusters)) if p not in (worst, partner)]
        clusters = [clusters[p] for p in keep] + [merged]
        state.merge(worst, partner)
        chosen.append(partner)
    return chosen


# -- workload construction --------------------------------------------------------
def generalized_copy(dataset, attributes):
    """A cluster-style generalized output: intervals, group labels, a root tail."""
    anonymized = dataset.copy(name=f"{dataset.name}[generalized]")
    for name in attributes:
        if dataset.schema[name].is_numeric:
            anonymized.map_column(
                name,
                lambda value: (
                    None
                    if value is None
                    else format_interval(10 * (int(value) // 10), 10 * (int(value) // 10) + 9)
                ),
            )
        else:
            domain = sorted(
                {str(v) for v in dataset.column(name) if v is not None}
            )
            groups = [domain[n : n + 3] for n in range(0, len(domain), 3)]
            mapping = {}
            for position, group in enumerate(groups):
                label = "*" if position == len(groups) - 1 else "(" + ",".join(group) + ")"
                for value in group:
                    mapping[value] = label
            anonymized.map_column(name, lambda value: mapping.get(value, value))
    return anonymized


def block_clusters(n_records: int, size: int) -> list[list[int]]:
    """Contiguous clusters of ``size`` records (the merge-phase starting point)."""
    return [
        list(range(start, min(start + size, n_records)))
        for start in range(0, n_records, size)
    ]


def timed_best(function, *args, repeats: int = 3):
    """(result, best-of-``repeats`` wall time) for a steady-state measurement."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = function(*args)
        best = min(best, time.perf_counter() - start)
    return result, best


# -- main -------------------------------------------------------------------------
def run_benchmark(
    n_records: int = N_RECORDS,
    cluster_size: int = CLUSTER_SIZE,
    merge_steps: int = MERGE_STEPS,
    repeats: int = 3,
) -> dict:
    original = generate_rt_dataset(n_records=n_records, n_items=40, seed=2014)
    attributes = [a.name for a in original.schema.relational if a.quasi_identifier]
    anonymized = generalized_copy(original, attributes)

    # GCP scoring, steady-state: one context scores the pair repeatedly.
    context = RelationalLossContext(original, attributes)
    baseline_gcp, baseline_gcp_seconds = timed_best(
        scalar_gcp, context, anonymized, repeats=repeats
    )
    kernel_gcp, kernel_gcp_seconds = timed_best(
        global_certainty_penalty, original, anonymized, attributes, None, context,
        repeats=repeats,
    )
    assert kernel_gcp == pytest.approx(baseline_gcp)

    # Merge phase: partner selection + merge over the block clusters.
    clusters = block_clusters(n_records, cluster_size)
    algorithm = RTmerger(k=2)
    helper = ClusterAnonymizer(2, attributes=attributes)
    helper._prepare(original, attributes)
    baseline_partners, baseline_merge_seconds = timed_best(
        scalar_merge_phase,
        algorithm, helper, original, attributes, "Items", clusters, merge_steps,
        repeats=repeats,
    )
    kernel_partners, kernel_merge_seconds = timed_best(
        kernel_merge_phase,
        algorithm, helper, original, attributes, "Items", clusters, merge_steps,
        repeats=repeats,
    )
    assert baseline_partners == kernel_partners

    return {
        "dataset": {
            "n_records": n_records,
            "relational_attributes": len(attributes),
            "cluster_size": cluster_size,
            "clusters": len(clusters),
            "merge_steps": merge_steps,
        },
        "gcp_scoring": {
            "value": kernel_gcp,
            "baseline_seconds": baseline_gcp_seconds,
            "kernel_seconds": kernel_gcp_seconds,
            "speedup": baseline_gcp_seconds / kernel_gcp_seconds,
            "baseline_records_per_second": n_records / baseline_gcp_seconds,
            "kernel_records_per_second": n_records / kernel_gcp_seconds,
        },
        "merge_phase": {
            "baseline_seconds": baseline_merge_seconds,
            "kernel_seconds": kernel_merge_seconds,
            "speedup": baseline_merge_seconds / kernel_merge_seconds,
            "baseline_steps_per_second": merge_steps / baseline_merge_seconds,
            "kernel_steps_per_second": merge_steps / kernel_merge_seconds,
        },
    }


def write_trajectory(payload: dict) -> Path:
    TRAJECTORY_FILE.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return TRAJECTORY_FILE


@pytest.mark.slow
def test_rt_kernel_speedup(record):
    payload = run_benchmark()
    record("rt_kernels", payload)
    write_trajectory(payload)
    assert payload["gcp_scoring"]["speedup"] >= REQUIRED_SPEEDUP
    assert payload["merge_phase"]["speedup"] >= REQUIRED_SPEEDUP


def test_rt_kernel_equivalence_smoke():
    """Fast CI smoke: scalar and kernel paths agree on a small dataset.

    In CI (``CI`` set) the small-size payload is also written to
    ``BENCH_rt.json`` so the workflow can upload it as an artifact; local
    test runs leave the committed 50k-record trajectory untouched.
    """
    payload = run_benchmark(
        n_records=2_500, cluster_size=10, merge_steps=5, repeats=1
    )
    if os.environ.get("CI"):
        write_trajectory(payload)
    # run_benchmark asserts baseline/kernel equality internally; sanity-check
    # the payload shape here.
    assert payload["gcp_scoring"]["value"] > 0.0
    assert payload["merge_phase"]["baseline_seconds"] > 0.0


if __name__ == "__main__":
    result = run_benchmark()
    path = write_trajectory(result)
    gcp = result["gcp_scoring"]
    merge = result["merge_phase"]
    print(
        f"dataset: {result['dataset']['n_records']} records, "
        f"{result['dataset']['relational_attributes']} relational attributes, "
        f"{result['dataset']['clusters']} clusters"
    )
    print(
        f"gcp scoring: baseline {gcp['baseline_seconds']:.3f}s, "
        f"kernel {gcp['kernel_seconds']:.3f}s, speedup {gcp['speedup']:.1f}x"
    )
    print(
        f"merge phase: baseline {merge['baseline_seconds']:.3f}s, "
        f"kernel {merge['kernel_seconds']:.3f}s, speedup {merge['speedup']:.1f}x"
    )
    print(f"trajectory written to {path}")
