"""Information-loss metrics, utility indicators and privacy verification."""

from __future__ import annotations

from repro.metrics.combined import RtUtility, rt_utility
from repro.metrics.interpretation import (
    SUPPRESSED,
    covers_value,
    generalization_size,
    is_item_group,
    item_group_members,
    label_leaves,
    label_span,
)
from repro.metrics.privacy_checks import (
    KmViolation,
    candidate_support,
    equivalence_classes,
    is_k_anonymous,
    is_k_km_anonymous,
    is_km_anonymous,
    km_violations,
    min_class_size,
    privacy_report,
)
from repro.metrics.relational import (
    RelationalLossContext,
    average_class_size,
    categorical_value_ncp,
    discernibility_metric,
    equivalence_class_sizes,
    global_certainty_penalty,
    ncp_per_attribute,
    numeric_value_ncp,
    quasi_identifier_attributes,
)
from repro.metrics.transaction import (
    average_item_frequency_error,
    estimated_item_frequencies,
    item_frequency_error,
    item_generalization_cost,
    suppression_ratio,
    utility_loss,
)

__all__ = [
    "RtUtility",
    "rt_utility",
    "SUPPRESSED",
    "covers_value",
    "generalization_size",
    "is_item_group",
    "item_group_members",
    "label_leaves",
    "label_span",
    "KmViolation",
    "candidate_support",
    "equivalence_classes",
    "is_k_anonymous",
    "is_k_km_anonymous",
    "is_km_anonymous",
    "km_violations",
    "min_class_size",
    "privacy_report",
    "RelationalLossContext",
    "average_class_size",
    "categorical_value_ncp",
    "discernibility_metric",
    "equivalence_class_sizes",
    "global_certainty_penalty",
    "ncp_per_attribute",
    "numeric_value_ncp",
    "quasi_identifier_attributes",
    "average_item_frequency_error",
    "estimated_item_frequencies",
    "item_frequency_error",
    "item_generalization_cost",
    "suppression_ratio",
    "utility_loss",
]
