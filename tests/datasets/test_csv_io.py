"""Tests for CSV dataset input/output."""

import pytest

from repro.datasets import (
    Attribute,
    Schema,
    load_csv,
    read_csv_text,
    save_csv,
    write_csv_text,
    toy_rt_dataset,
)
from repro.exceptions import DatasetError

CSV_TEXT = """Age,Education,Items
25,Bachelors,bread milk
30,Masters,beer
41,HS-grad,bread beer wine
"""


class TestReadCsv:
    def test_schema_inference(self):
        dataset = read_csv_text(CSV_TEXT)
        assert dataset.schema["Age"].is_numeric
        assert dataset.schema["Education"].is_categorical
        assert dataset.schema["Items"].is_transaction
        assert dataset[0]["Items"] == frozenset({"bread", "milk"})
        assert dataset[0]["Age"] == 25

    def test_forced_columns_override_inference(self):
        text = "Code,Items\n12,a\n34,b\n"
        dataset = read_csv_text(
            text, transaction_columns=["Items"], numeric_columns=[]
        )
        assert dataset.schema["Items"].is_transaction
        # Code is inferred numeric because all values parse as numbers.
        assert dataset.schema["Code"].is_numeric

    def test_single_item_cells_need_forcing(self):
        text = "Items\napple\nbanana\n"
        inferred = read_csv_text(text)
        assert inferred.schema["Items"].is_categorical
        forced = read_csv_text(text, transaction_columns=["Items"])
        assert forced.schema["Items"].is_transaction
        assert forced[0]["Items"] == frozenset({"apple"})

    def test_explicit_schema_must_match_header(self):
        schema = Schema([Attribute.numeric("Other")])
        with pytest.raises(DatasetError):
            read_csv_text("Age\n1\n", schema=schema)

    def test_empty_input_rejected(self):
        with pytest.raises(DatasetError):
            read_csv_text("")

    def test_field_count_mismatch_reports_line(self):
        with pytest.raises(DatasetError, match="line 3"):
            read_csv_text("A,B\n1,2\n3\n")

    def test_empty_cells_become_none(self):
        dataset = read_csv_text("Age,City\n25,\n,Athens\n")
        assert dataset[0]["City"] is None
        assert dataset[1]["Age"] is None


class TestWriteCsv:
    def test_round_trip_preserves_dataset(self, tmp_path):
        original = toy_rt_dataset()
        path = save_csv(original, tmp_path / "toy.csv")
        loaded = load_csv(path, transaction_columns=["Items"])
        assert loaded.schema.names == original.schema.names
        assert len(loaded) == len(original)
        for a, b in zip(loaded, original):
            assert a["Age"] == b["Age"]
            assert a["Education"] == b["Education"]
            assert a["Items"] == b["Items"]

    def test_write_formats_transaction_cells_sorted(self):
        dataset = read_csv_text(CSV_TEXT)
        text = write_csv_text(dataset)
        assert "bread milk" in text
        assert "beer bread wine" in text  # sorted item order

    def test_write_formats_integral_floats_without_decimal(self):
        dataset = read_csv_text("X\n1.0\n2.5\n")
        text = write_csv_text(dataset)
        lines = text.strip().splitlines()
        assert lines[1] == "1"
        assert lines[2] == "2.5"

    def test_load_missing_file_raises(self, tmp_path):
        with pytest.raises(DatasetError):
            load_csv(tmp_path / "missing.csv")
