"""Deterministic fault injection for the execution engine.

The chaos suite (``tests/engine/test_mode_equivalence.py`` and
``tests/engine/test_resilience.py``) does not *assert* that the engine is
fault tolerant — it *makes workers fail* and checks the observable
guarantees: results stay byte-identical to a sequential run, no
shared-memory segment survives, and the :class:`~repro.engine.resilience.RunReport`
records every recovery step.  This module supplies the failure half of that
contract: a picklable :class:`FaultPlan` that tells a worker to crash, hang,
die with exit code 137, raise, or return a corrupt result at chosen
``(task index, attempt)`` coordinates.

A plan is a pure function of its coordinates — no global state, no
randomness — so a faulted run is exactly reproducible.  Hard faults
(``crash``, ``exit137``, ``hang``) only fire inside a genuine worker
process (the plan remembers the orchestrating process's pid): when a task
has been degraded to the thread or sequential rung of the ladder, the same
plan lets it through, modelling a task that kills *worker processes* but is
otherwise computable.  Soft faults (``error``, ``corrupt``) fire on every
backend.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.exceptions import ConfigurationError, ExecutionError

#: The failure modes a plan can inject.
FAULT_KINDS = ("crash", "exit137", "hang", "error", "corrupt")

#: Kinds that terminate or stall the worker process itself; these only fire
#: when the executing pid differs from the plan's ``parent_pid``.
HARD_KINDS = frozenset({"crash", "exit137", "hang"})


class InjectedFault(ExecutionError):
    """The error raised by a ``kind="error"`` fault (and by hard faults
    demoted to an exception when no process boundary is available)."""


@dataclass(frozen=True)
class Corrupted:
    """Marker wrapper a ``kind="corrupt"`` fault returns instead of the real
    result.  The resilience engine treats any :class:`Corrupted` result as a
    failed attempt, so retries must launder it away before results reach the
    caller."""

    payload: Any = None


@dataclass(frozen=True)
class Fault:
    """One injection point: fail task ``task_index`` on attempt ``attempt``.

    ``attempt`` counts every attempt of the task across backends, starting
    at 0; ``attempt=-1`` fires on every attempt (a task that *always* kills
    its worker — the degradation-ladder scenario).
    """

    task_index: int
    attempt: int
    kind: str

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if self.task_index < 0:
            raise ConfigurationError("fault task_index must be >= 0")
        if self.attempt < -1:
            raise ConfigurationError(
                "fault attempt must be >= 0, or -1 for every attempt"
            )

    def matches(self, task_index: int, attempt: int) -> bool:
        return self.task_index == task_index and self.attempt in (-1, attempt)


@dataclass(frozen=True)
class FaultPlan:
    """A picklable schedule of injected faults, keyed by (task, attempt).

    ``parent_pid`` is captured at construction (in the orchestrating
    process) so hard faults can tell worker processes apart from in-parent
    backends.  ``hang_seconds`` is how long a ``hang`` fault sleeps — pick
    it well above the policy's ``task_timeout`` so the timeout path, not the
    sleep, decides the outcome.
    """

    faults: tuple[Fault, ...] = ()
    parent_pid: int = field(default_factory=os.getpid)
    hang_seconds: float = 60.0

    @classmethod
    def build(cls, *faults: tuple[int, int, str], hang_seconds: float = 60.0) -> "FaultPlan":
        """Shorthand: ``FaultPlan.build((task, attempt, kind), ...)``."""
        return cls(
            faults=tuple(Fault(*spec) for spec in faults),
            hang_seconds=hang_seconds,
        )

    def kind_for(self, task_index: int, attempt: int) -> str | None:
        """The fault kind scheduled at these coordinates, if any."""
        for fault in self.faults:
            if fault.matches(task_index, attempt):
                return fault.kind
        return None


@dataclass(frozen=True)
class CheckpointFaults:
    """Deterministic fault points for the durable checkpoint store.

    Where :class:`FaultPlan` breaks *workers*, this breaks the *store*: the
    chaos suite uses it to prove that a sweep killed immediately after its
    N-th persisted cell resumes correctly, and that a torn (truncated)
    record is detected and recomputed rather than served.

    ``kill_after_store=n`` kills the process (SIGKILL semantics, skipping
    all finalizers) right after the n-th successful cell write of this store
    instance.  Unlike :class:`FaultPlan` hard faults it fires in *any*
    process, including the orchestrator — sequential-mode chaos tests run
    the sweep in a sacrificial subprocess for exactly this reason.

    ``truncate_after_store=n`` truncates the n-th written cell file to
    ``truncate_to`` bytes right after its atomic rename — a torn write as an
    on-disk fact, without racing a real crash.  Counts start at 1 and are
    per store instance (per process: a store that crosses a process
    boundary re-counts from zero, which keeps worker-side chaos runs
    deterministic per worker).
    """

    kill_after_store: int | None = None
    truncate_after_store: int | None = None
    truncate_to: int = 7

    def __post_init__(self) -> None:
        for name in ("kill_after_store", "truncate_after_store"):
            count = getattr(self, name)
            if count is not None and count < 1:
                raise ConfigurationError(f"{name} must be >= 1 when set")
        if self.truncate_to < 0:
            raise ConfigurationError("truncate_to must be >= 0")

    def after_store(self, count: int, path: "os.PathLike[str] | str") -> None:
        """The store calls this after its ``count``-th successful write."""
        if self.truncate_after_store == count:
            os.truncate(path, self.truncate_to)
        if self.kill_after_store == count:
            _die(137)


def _die(exit_code: int) -> None:
    """Terminate the current process the way a real fault would: for 137,
    the SIGKILL a cgroup OOM-killer delivers; otherwise a hard ``_exit``
    that skips every finalizer (so segments/locks are genuinely orphaned)."""
    if exit_code == 137 and hasattr(signal, "SIGKILL"):
        os.kill(os.getpid(), signal.SIGKILL)
    os._exit(exit_code)


def faulted_call(
    worker: Callable[[Any], Any],
    task: Any,
    task_index: int,
    attempt: int,
    plan: FaultPlan,
) -> Any:
    """Run ``worker(task)`` under ``plan`` — the submission wrapper.

    Module-level (and shipping only picklable arguments) so process mode
    can pickle the wrapped call under spawn exactly like a plain worker.
    """
    kind = plan.kind_for(task_index, attempt)
    if kind is None:
        return worker(task)
    in_worker_process = os.getpid() != plan.parent_pid
    if kind in HARD_KINDS and not in_worker_process:
        # Degraded to an in-parent backend: a worker-killing fault has no
        # process to kill, which is exactly why the ladder exists.
        return worker(task)
    if kind == "crash":
        _die(1)
    elif kind == "exit137":
        _die(137)
    elif kind == "hang":
        # repro: allow[REP007] -- the injected hang IS the fault under test, not a retry backoff; the policy's task_timeout reclaims the worker
        time.sleep(plan.hang_seconds)
        return worker(task)
    elif kind == "error":
        raise InjectedFault(
            f"injected fault: task {task_index} attempt {attempt} raised"
        )
    return Corrupted(payload=worker(task))
