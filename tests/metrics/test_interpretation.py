"""Tests for generalized-value interpretation."""

from repro.hierarchy import build_categorical_hierarchy, build_numeric_hierarchy
from repro.metrics import (
    SUPPRESSED,
    covers_value,
    generalization_size,
    is_item_group,
    item_group_members,
    label_leaves,
    label_span,
)


class TestItemGroups:
    def test_detection(self):
        assert is_item_group("(a,b)")
        assert not is_item_group("a")
        assert not is_item_group("[1-2]")
        assert not is_item_group("()")

    def test_members(self):
        assert item_group_members("(a,b,c)") == frozenset({"a", "b", "c"})


class TestLabelLeaves:
    def test_plain_value_is_itself(self):
        assert label_leaves("Bachelors") == frozenset({"Bachelors"})

    def test_item_group(self):
        assert label_leaves("(a,b)") == frozenset({"a", "b"})

    def test_hierarchy_node(self):
        hierarchy = build_categorical_hierarchy([f"v{i}" for i in range(9)], fanout=3)
        root_leaves = label_leaves("*", hierarchy)
        assert len(root_leaves) == 9

    def test_star_with_universe(self):
        assert label_leaves("*", universe={"a", "b"}) == frozenset({"a", "b"})

    def test_star_without_context_is_empty(self):
        assert label_leaves("*") == frozenset()

    def test_suppressed_is_empty(self):
        assert label_leaves(SUPPRESSED) == frozenset()


class TestLabelSpanAndCovers:
    def test_span_of_interval_label(self):
        assert label_span("[10-20]") == (10.0, 20.0)

    def test_span_of_number(self):
        assert label_span("42") == (42.0, 42.0)

    def test_span_of_categorical_is_none(self):
        assert label_span("Bachelors") is None
        assert label_span(SUPPRESSED) is None

    def test_span_from_hierarchy_root(self):
        hierarchy = build_numeric_hierarchy(range(10), fanout=3)
        assert label_span("*", hierarchy) == (0.0, 9.0)

    def test_covers_value(self):
        assert covers_value("(a,b)", "a")
        assert not covers_value("(a,b)", "c")
        assert covers_value("x", "x")

    def test_generalization_size_is_at_least_one(self):
        assert generalization_size("(a,b,c)") == 3
        assert generalization_size("plain") == 1
        assert generalization_size(SUPPRESSED) == 1
