"""Shared machinery for hierarchy-based k^m-anonymization of transactions.

The three hierarchy-based transaction algorithms (Apriori, LRA, VPA —
Terrovitis, Mamoulis, Kalnis, VLDB J. 2011) all transform data by maintaining
a *cut* of the item generalization hierarchy: a mapping from every original
item to one of its ancestors such that the mapped nodes partition the item
universe (full-subtree generalization).  Because the cut is a partition, the
support of any combination of original items equals the support of the
combination of their images, which makes the k^m-anonymity check cheap: it is
enough to count the supports of the node combinations that actually occur in
the generalized transactions.

:class:`ItemCut` implements the cut and its generalization step;
:class:`KmAnonymityChecker` enumerates violating combinations.
"""

from __future__ import annotations

import itertools
import weakref
from typing import Iterable, Sequence

from repro.exceptions import AlgorithmError
from repro.hierarchy.hierarchy import Hierarchy


class ItemCut:
    """A full-subtree generalization cut over an item hierarchy.

    The cut carries a ``version`` counter that increments on every mutation;
    consumers (the k^m-anonymity checker) key their per-cut caches on it.
    Subtree leaf sets are memoized per node label (resolved from the
    hierarchy itself — cut nodes are always hierarchy nodes, never item-group
    labels), so repeated promotions never re-walk a subtree.
    """

    def __init__(self, hierarchy: Hierarchy, items: Iterable[str]):
        self.hierarchy = hierarchy
        self.items = sorted({str(item) for item in items})
        missing = [item for item in self.items if item not in hierarchy]
        if missing:
            raise AlgorithmError(
                f"items {missing[:5]} are not covered by the item hierarchy"
            )
        #: original item -> current cut node label
        self.mapping: dict[str, str] = {item: item for item in self.items}
        #: incremented on every mutation; cache key for derived structures
        self.version = 0
        #: node label -> its subtree's leaf set (shared across copies)
        self._node_leaves: dict[str, frozenset[str]] = {}

    # -- queries -------------------------------------------------------------
    @property
    def nodes(self) -> set[str]:
        """The distinct cut nodes currently in use."""
        return set(self.mapping.values())

    def image(self, item: str) -> str:
        return self.mapping[str(item)]

    def generalize_itemset(self, itemset: Iterable[str]) -> frozenset[str]:
        """Map an original itemset to its generalized representation."""
        return frozenset(self.mapping[str(item)] for item in itemset)

    def is_fully_generalized(self) -> bool:
        return self.nodes == {self.hierarchy.root.label}

    def generalization_level(self, node: str) -> int:
        return self.hierarchy.level(node)

    # -- transformation -------------------------------------------------------
    def generalize_node(self, node: str) -> str:
        """Replace ``node`` (and every cut node under the same parent) by the parent.

        Promoting the whole sibling group keeps the cut a partition of the
        item universe, which the k^m-anonymity check relies on.
        """
        parent = self.hierarchy.parent(node)
        if parent is None:
            return node
        parent_leaves = self._node_leaves.get(parent)
        if parent_leaves is None:
            parent_leaves = frozenset(self.hierarchy.leaves(parent))
            self._node_leaves[parent] = parent_leaves
        for item in self.items:
            if item in parent_leaves:
                self.mapping[item] = parent
        self.version += 1
        return parent

    def copy(self) -> "ItemCut":
        clone = ItemCut.__new__(ItemCut)
        clone.hierarchy = self.hierarchy
        clone.items = list(self.items)
        clone.mapping = dict(self.mapping)
        clone.version = self.version
        # The leaf memo is pure (the hierarchy is immutable), so copies share it.
        clone._node_leaves = self._node_leaves
        return clone


class KmAnonymityChecker:
    """Finds combinations of at most ``m`` cut nodes with support below ``k``."""

    def __init__(self, itemsets: Sequence[frozenset], k: int, m: int):
        if k < 2:
            raise AlgorithmError("k must be at least 2")
        if m < 1:
            raise AlgorithmError("m must be at least 1")
        self.itemsets = list(itemsets)
        self.k = k
        self.m = m
        #: single-slot cache of the generalized itemsets for the last cut seen
        self._generalized_cut: "weakref.ref[ItemCut] | None" = None
        self._generalized_version = -1
        self._generalized: list[list[str]] = []

    def _generalized_itemsets(self, cut: ItemCut) -> list[list[str]]:
        """Every itemset mapped through the cut (cached per cut version).

        The checker is asked for violations of sizes 1..m against the same
        cut; generalizing the transactions once per cut version instead of
        once per size removes the dominant posting-union loop.
        """
        cached = self._generalized_cut() if self._generalized_cut is not None else None
        if cached is not cut or self._generalized_version != cut.version:
            self._generalized = [
                sorted(cut.generalize_itemset(itemset)) for itemset in self.itemsets
            ]
            self._generalized_cut = weakref.ref(cut)
            self._generalized_version = cut.version
        return self._generalized

    def combination_supports(
        self, cut: ItemCut, size: int
    ) -> dict[tuple[str, ...], int]:
        """Support of every node combination of exactly ``size`` that occurs."""
        supports: dict[tuple[str, ...], int] = {}
        for generalized in self._generalized_itemsets(cut):
            if len(generalized) < size:
                continue
            for combination in itertools.combinations(generalized, size):
                supports[combination] = supports.get(combination, 0) + 1
        return supports

    def violations(
        self, cut: ItemCut, size: int
    ) -> dict[tuple[str, ...], int]:
        """Node combinations of ``size`` with support in (0, k)."""
        return {
            combination: support
            for combination, support in self.combination_supports(cut, size).items()
            if 0 < support < self.k
        }

    def all_violations(self, cut: ItemCut) -> dict[tuple[str, ...], int]:
        """Violating combinations of every size from 1 to ``m``."""
        result: dict[tuple[str, ...], int] = {}
        for size in range(1, self.m + 1):
            result.update(self.violations(cut, size))
        return result

    def is_km_anonymous(self, cut: ItemCut) -> bool:
        return not self.all_violations(cut)


def greedy_km_anonymize(
    itemsets: Sequence[frozenset],
    hierarchy: Hierarchy,
    k: int,
    m: int,
    cut: ItemCut | None = None,
    apriori_order: bool = True,
) -> tuple[ItemCut, dict]:
    """Greedy full-subtree generalization until k^m-anonymity holds.

    Violating combinations are collected (by increasing size when
    ``apriori_order`` is set, mirroring the Apriori algorithm's candidate
    generation) and the cut node participating in the most violations is
    promoted to its parent, until no violation remains.  Returns the final cut
    and statistics about the search.

    If the transactions cannot be protected even by generalizing everything to
    the hierarchy root (fewer than ``k`` non-empty transactions), the cut is
    returned fully generalized and the caller decides whether to suppress.
    """
    universe: set[str] = set()
    for itemset in itemsets:
        universe.update(str(item) for item in itemset)
    if cut is None:
        cut = ItemCut(hierarchy, universe)
    checker = KmAnonymityChecker(itemsets, k, m)

    generalization_steps = 0
    sizes = range(1, m + 1) if apriori_order else [None]
    for size in sizes:
        while True:
            if size is None:
                violations = checker.all_violations(cut)
            else:
                violations = checker.violations(cut, size)
            if not violations or cut.is_fully_generalized():
                break
            # Promote the node involved in the largest number of violations;
            # prefer the most specific node on ties (cheapest promotion).
            node_scores: dict[str, int] = {}
            for combination in violations:
                for node in combination:
                    node_scores[node] = node_scores.get(node, 0) + 1
            promotable = {
                node: score
                for node, score in node_scores.items()
                if cut.hierarchy.parent(node) is not None
            }
            if not promotable:
                # Every violating node is already the hierarchy root; no
                # generalization can help (too few non-empty transactions).
                break
            target = max(
                promotable,
                key=lambda node: (promotable[node], -cut.generalization_level(node), node),
            )
            cut.generalize_node(target)
            generalization_steps += 1

    remaining = checker.all_violations(cut)
    statistics = {
        "generalization_steps": generalization_steps,
        "final_nodes": len(cut.nodes),
        "fully_generalized": cut.is_fully_generalized(),
        "unresolvable_violations": len(remaining),
    }
    return cut, statistics
