"""Segment hygiene of the persistent :class:`WorkerPool`.

PR 7 closed the pool's one resource leak: ``share()`` used to hold a strong
reference to every dataset it exported, pinning both the dataset and its
shared-memory segment for the pool's whole lifetime.  The pool now holds
datasets weakly with a ``weakref.finalize`` eviction hook — dropping the
last outside reference unlinks the segment immediately — and ``respawn``
re-exports segments a dying worker generation destroyed.
"""

from __future__ import annotations

import gc
from multiprocessing import shared_memory

import pytest

from repro.columnar.shared import SharedDatasetManifest
from repro.datasets import generate_rt_dataset
from repro.engine import WorkerPool


def make_dataset(seed: int = 11):
    return generate_rt_dataset(n_records=30, n_items=8, seed=seed)


def segment_is_gone(name: str) -> bool:
    try:
        segment = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return True
    segment.close()
    return False


class TestWeakExports:
    def test_dropping_the_dataset_evicts_the_export(self):
        with WorkerPool(max_workers=1) as pool:
            dataset = make_dataset()
            manifest = pool.share(dataset)
            name = manifest.segment
            assert pool.segment_names() == [name]

            del dataset, manifest
            gc.collect()

            assert pool.segment_names() == []
            assert segment_is_gone(name)

    def test_live_dataset_export_is_reused_not_duplicated(self):
        with WorkerPool(max_workers=1) as pool:
            dataset = make_dataset()
            first = pool.share(dataset)
            second = pool.share(dataset)
            assert first.segment == second.segment
            assert len(pool.segment_names()) == 1

    def test_many_transient_datasets_do_not_accumulate_segments(self):
        # The regression this satellite fixes: a sweep over fresh datasets
        # used to pin one segment per dataset until pool.close().
        with WorkerPool(max_workers=1) as pool:
            names = []
            for seed in range(5):
                dataset = make_dataset(seed)
                names.append(pool.share(dataset).segment)
                del dataset
            gc.collect()
            assert pool.segment_names() == []
        assert all(segment_is_gone(name) for name in names)

    def test_close_still_unlinks_exports_held_by_live_datasets(self):
        dataset = make_dataset()
        with WorkerPool(max_workers=1) as pool:
            name = pool.share(dataset).segment
        assert segment_is_gone(name)
        # The dataset outliving the pool must not resurrect the finalizer.
        del dataset
        gc.collect()

    def test_mutated_dataset_is_re_exported_and_stale_segment_unlinked(self):
        with WorkerPool(max_workers=1) as pool:
            dataset = make_dataset()
            stale = pool.share(dataset).segment
            dataset.set_value(0, "Age", 99)
            fresh = pool.share(dataset).segment
            assert fresh != stale
            assert segment_is_gone(stale)
            assert pool.segment_names() == [fresh]


class TestRespawnRefresh:
    def test_respawn_without_stale_segments_returns_no_remapper(self):
        with WorkerPool(max_workers=1) as pool:
            dataset = make_dataset()
            pool.share(dataset)
            assert pool.respawn("test") is None
            assert len(pool.segment_names()) == 1

    def test_respawn_re_exports_a_destroyed_segment_and_remaps_tasks(self):
        with WorkerPool(max_workers=1) as pool:
            dataset = make_dataset()
            manifest = pool.share(dataset)
            stale_name = manifest.segment

            # Simulate a crashed worker generation's resource tracker
            # destroying the segment out from under the pool.
            victim = shared_memory.SharedMemory(name=stale_name)
            victim.close()
            victim.unlink()

            remapper = pool.respawn("worker crash during test")
            assert remapper is not None

            remapped = remapper(("job", manifest, 3))
            assert remapped[0] == "job" and remapped[2] == 3
            fresh = remapped[1]
            assert isinstance(fresh, SharedDatasetManifest)
            assert fresh.segment != stale_name
            assert not segment_is_gone(fresh.segment)
            # Unrelated payloads pass through untouched.
            assert remapper(("no", "manifest", "here")) == ("no", "manifest", "here")
            assert pool.segment_names() == [fresh.segment]

    def test_startup_reap_attribute_exists(self):
        with WorkerPool(max_workers=1) as pool:
            assert isinstance(pool.reaped_at_startup, tuple)
