"""ρ-uncertainty: inference-proof transaction anonymization (Cao et al., PVLDB 2010).

The SECRETA paper names this algorithm as the first candidate for future
integration ("we will extend our system, by incorporating additional
algorithms, such as those in [2]"), so the reproduction ships it as an
optional extension.  It is *not* part of the registered nine algorithms (to
keep the registry faithful to the paper) but implements the same
:class:`~repro.algorithms.base.Anonymizer` interface and can be used directly
or through a custom transaction factory of the bounding methods.

Privacy model
-------------
A transaction dataset satisfies *ρ-uncertainty* when no association rule
``X → s`` with a *sensitive* item ``s`` on the right-hand side and
``s ∉ X`` has confidence above ``ρ``, for any antecedent ``X`` of at most
``max_antecedent`` (possibly zero) non-sensitive or sensitive items.  In
other words, whatever (small) set of items an adversary knows about an
individual, they cannot infer a sensitive item with probability above ρ.

This implementation uses global suppression (the mechanism of Cao et al.'s
``SuppressControl``): while a violating rule exists, it greedily suppresses
the item whose removal eliminates the most violations per occurrence lost —
preferring antecedent items so that sensitive information is retained when
possible.
"""

from __future__ import annotations

import itertools
from typing import Iterable

from repro.algorithms.base import (
    AnonymizationResult,
    Anonymizer,
    PhaseTimer,
    apply_item_mapping,
)
from repro.datasets.dataset import Dataset
from repro.exceptions import ConfigurationError
from repro.metrics.transaction import suppression_ratio, utility_loss


class RhoUncertainty(Anonymizer):
    """Suppression-based ρ-uncertainty for transaction data (extension)."""

    name = "rho-uncertainty"
    data_kind = "transaction"

    def __init__(
        self,
        rho: float,
        sensitive_items: Iterable[str],
        attribute: str | None = None,
        max_antecedent: int = 1,
    ):
        if not 0 < rho < 1:
            raise ConfigurationError("rho must lie strictly between 0 and 1")
        if max_antecedent < 0:
            raise ConfigurationError("max_antecedent must be non-negative")
        self.rho = float(rho)
        self.sensitive_items = frozenset(str(item) for item in sensitive_items)
        if not self.sensitive_items:
            raise ConfigurationError("rho-uncertainty needs at least one sensitive item")
        self.attribute = attribute
        self.max_antecedent = int(max_antecedent)

    def parameters(self) -> dict:
        return {
            "rho": self.rho,
            "sensitive_items": sorted(self.sensitive_items),
            "max_antecedent": self.max_antecedent,
            "attribute": self.attribute,
        }

    # -- rule analysis ----------------------------------------------------------
    def _violations(
        self, itemsets: list[frozenset[str]], suppressed: set[str]
    ) -> list[tuple[frozenset[str], str, float]]:
        """All rules ``X -> s`` with confidence above rho on the current data."""
        active = [frozenset(item for item in itemset if item not in suppressed)
                  for itemset in itemsets]
        n_records = sum(1 for itemset in active if itemset) or 1
        sensitive_present = {
            item for itemset in active for item in itemset
        } & self.sensitive_items

        violations: list[tuple[frozenset[str], str, float]] = []
        for sensitive in sorted(sensitive_present):
            support_s = sum(1 for itemset in active if sensitive in itemset)
            # Empty antecedent: overall frequency of the sensitive item.
            if support_s / n_records > self.rho:
                violations.append((frozenset(), sensitive, support_s / n_records))
            if self.max_antecedent == 0:
                continue
            # Antecedents drawn from items co-occurring with the sensitive one.
            co_items = sorted(
                {
                    item
                    for itemset in active
                    if sensitive in itemset
                    for item in itemset
                    if item != sensitive
                }
            )
            for size in range(1, self.max_antecedent + 1):
                for antecedent in itertools.combinations(co_items, size):
                    antecedent_set = frozenset(antecedent)
                    support_x = sum(1 for itemset in active if antecedent_set <= itemset)
                    if support_x == 0:
                        continue
                    support_xs = sum(
                        1
                        for itemset in active
                        if antecedent_set <= itemset and sensitive in itemset
                    )
                    confidence = support_xs / support_x
                    if confidence > self.rho:
                        violations.append((antecedent_set, sensitive, confidence))
        return violations

    # -- main ----------------------------------------------------------------------
    def anonymize(self, dataset: Dataset) -> AnonymizationResult:
        attribute = self.attribute or dataset.single_transaction_attribute()
        timer = PhaseTimer()
        itemsets = [record[attribute] for record in dataset]
        suppressed: set[str] = set()
        rounds = 0

        with timer.phase("suppression"):
            while True:
                violations = self._violations(itemsets, suppressed)
                if not violations:
                    break
                rounds += 1
                # Score candidate items: violations removed per occurrence lost.
                universe: set[str] = set()
                for itemset in itemsets:
                    universe.update(itemset)
                occurrence = {
                    item: sum(1 for itemset in itemsets if item in itemset)
                    for item in universe - suppressed
                }
                scores: dict[str, float] = {}
                for antecedent, sensitive, _confidence in violations:
                    involved = set(antecedent) | {sensitive}
                    for item in involved - suppressed:
                        weight = 1.0 if item not in self.sensitive_items else 0.75
                        scores[item] = scores.get(item, 0.0) + weight / max(
                            occurrence.get(item, 1), 1
                        )
                target = max(sorted(scores), key=lambda item: scores[item])
                suppressed.add(target)

        with timer.phase("apply"):
            anonymized = dataset.copy(name=f"{dataset.name}[rho-uncertainty]")
            apply_item_mapping(
                anonymized, attribute, {item: None for item in suppressed}
            )

        statistics = {
            "rho": self.rho,
            "suppressed_items": sorted(suppressed),
            "suppression_rounds": rounds,
            "suppression_ratio": suppression_ratio(dataset, anonymized, attribute=attribute),
            "utility_loss": utility_loss(dataset, anonymized, attribute=attribute),
            "residual_violations": len(self._violations(itemsets, suppressed)),
        }
        return AnonymizationResult(
            dataset=anonymized,
            algorithm=self.name,
            parameters=self.parameters(),
            runtime_seconds=timer.total,
            phase_seconds=timer.phases,
            statistics=statistics,
        )
