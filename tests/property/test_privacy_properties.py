"""Property-based tests for privacy guarantees and information-loss metrics."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.transaction._itemcut import ItemCut, greedy_km_anonymize
from repro.datasets import Attribute, Dataset, Schema
from repro.datasets.statistics import frequency_relative_error
from repro.hierarchy import build_item_hierarchy
from repro.metrics import (
    categorical_value_ncp,
    is_k_anonymous,
    is_km_anonymous,
    numeric_value_ncp,
    utility_loss,
)

ITEMS = [f"i{n}" for n in range(12)]

itemsets = st.lists(
    st.sets(st.sampled_from(ITEMS), min_size=1, max_size=5),
    min_size=4,
    max_size=40,
)
small_k = st.integers(min_value=2, max_value=4)


def make_transaction_dataset(baskets) -> Dataset:
    schema = Schema([Attribute.transaction("Items")])
    return Dataset(schema, [{"Items": sorted(basket)} for basket in baskets])


class TestKmAnonymizationProperties:
    @given(baskets=itemsets, k=small_k)
    @settings(max_examples=30, deadline=None)
    def test_greedy_cut_output_is_km_anonymous_or_reports_failure(self, baskets, k):
        dataset = make_transaction_dataset(baskets)
        hierarchy = build_item_hierarchy(ITEMS, fanout=3)
        cut, statistics = greedy_km_anonymize(
            [record["Items"] for record in dataset], hierarchy, k=k, m=2
        )
        if statistics["unresolvable_violations"]:
            # Can only happen when there are fewer than k non-empty baskets.
            assert sum(1 for basket in baskets if basket) < k
            return
        generalized = dataset.copy()
        generalized.map_column("Items", lambda items: sorted(cut.generalize_itemset(items)))
        assert is_km_anonymous(
            generalized, k=k, m=2, hierarchy=hierarchy, universe=set(ITEMS)
        )

    @given(baskets=itemsets)
    @settings(max_examples=30, deadline=None)
    def test_item_cut_remains_a_partition(self, baskets):
        hierarchy = build_item_hierarchy(ITEMS, fanout=3)
        cut = ItemCut(hierarchy, ITEMS)
        # Promote a few arbitrary nodes and check the partition invariant.
        for item in ITEMS[::3]:
            cut.generalize_node(cut.image(item))
        leaf_sets = {}
        for item in ITEMS:
            image = cut.image(item)
            assert hierarchy.is_ancestor(image, item)
            leaf_sets.setdefault(image, set(hierarchy.leaves(image)))
        covered = [leaf for leaves in leaf_sets.values() for leaf in leaves]
        assert len(covered) == len(set(covered)), "cut nodes must not overlap"
        assert set(ITEMS) <= set(covered)


class TestMetricProperties:
    @given(baskets=itemsets, suppressed=st.sets(st.sampled_from(ITEMS), max_size=6))
    @settings(max_examples=40, deadline=None)
    def test_utility_loss_is_bounded_and_monotone_in_suppression(self, baskets, suppressed):
        dataset = make_transaction_dataset(baskets)
        partially = dataset.copy()
        partially.map_column(
            "Items", lambda items: [item for item in items if item not in suppressed]
        )
        fully = dataset.copy()
        fully.map_column("Items", lambda items: [])
        partial_loss = utility_loss(dataset, partially)
        full_loss = utility_loss(dataset, fully)
        assert 0.0 <= partial_loss <= full_loss <= 1.0

    @given(
        group_size=st.integers(min_value=1, max_value=30),
        domain=st.integers(min_value=2, max_value=50),
    )
    def test_categorical_ncp_is_bounded(self, group_size, domain):
        label = "(" + ",".join(f"v{i}" for i in range(group_size)) + ")" if group_size > 1 else "v0"
        value = categorical_value_ncp(label, None, domain_size=domain)
        assert 0.0 <= value <= max(1.0, (group_size - 1) / (domain - 1))

    @given(
        low=st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        width=st.floats(min_value=0, max_value=1e6, allow_nan=False),
    )
    def test_numeric_ncp_is_bounded(self, low, width):
        label = f"[{low}-{low + width}]"
        value = numeric_value_ncp(label, None, -2e6, 2e6)
        assert 0.0 <= value <= 1.0

    @given(
        original=st.dictionaries(st.sampled_from(ITEMS), st.integers(1, 50), min_size=1),
        anonymized=st.dictionaries(st.sampled_from(ITEMS), st.integers(0, 50)),
    )
    def test_frequency_relative_error_is_non_negative(self, original, anonymized):
        errors = frequency_relative_error(original, anonymized)
        assert all(error >= 0 for error in errors.values())


class TestKAnonymityProperties:
    @given(
        ages=st.lists(st.integers(min_value=20, max_value=25), min_size=3, max_size=30),
        k=small_k,
    )
    @settings(max_examples=40, deadline=None)
    def test_fully_generalized_table_is_k_anonymous(self, ages, k):
        schema = Schema([Attribute.numeric("Age")])
        dataset = Dataset(schema, [{"Age": age} for age in ages])
        generalized = dataset.copy()
        generalized.map_column("Age", lambda _age: "[20-25]")
        assert is_k_anonymous(generalized, min(k, len(dataset)))
