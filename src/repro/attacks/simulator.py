"""Re-identification attack simulation on the columnar bitset kernels.

The attacks play the prior-knowledge adversary of the (k, k^m) model
(Poulis et al. 2013) against a concrete anonymized output:

* :func:`qi_attack` — the adversary knows the target's original
  quasi-identifier values and collects every published record whose
  generalized cells could belong to the target (the *matching set*).
* :func:`item_attack` — the adversary knows up to ``m`` original
  transaction items of the target and collects the records whose published
  itemsets could contain them, for the worst of all such item combinations.
* :func:`rt_attack` — both at once: QI knowledge narrows the candidates,
  item knowledge narrows them further.

Each attack reports per-record matching-set sizes, re-identification risks
(``1 / |matching set|``) and the *empirical* guarantee — ``k̂`` (QI / RT) or
``k̂^m`` (items) — the smallest nonempty matching set any target yields.  A
correct anonymizer must achieve ``k̂ >= k``: every published record is
truthful (its generalized cells cover its own original values) and record
``i`` of the anonymized output corresponds to record ``i`` of the original,
so a target's matching set always contains its own equivalence class.  The
conformance suite (``tests/conformance``) asserts exactly this for every
algorithm × adversarial generator pairing.

Implementation: matching sets are uint64 record bitsets.  Per QI attribute,
the coverage of every distinct original value over every distinct published
label is decided once (memoized :class:`~repro.attacks.coverage.AttributeCoverage`)
and expanded into per-value cover bitsets by OR-ing label posting rows;
per-record matching sets are then chunked fancy-gathers AND-ed across
attributes and popcounted.  Item knowledge reuses the km checker's per-item
candidate bitsets (:func:`repro.metrics.privacy_checks.candidate_matrix`):
one AND + popcount per distinct item combination, memoized across the
(typically heavily repeated) baskets.  Every function takes
``vectorized=False`` to run the per-record scalar oracle instead
(:mod:`repro.attacks.oracle`), the REP003 equivalence reference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.attacks.coverage import AttributeCoverage, best_knowledge, coverage_for
from repro.columnar.bitset import intersect_rows, popcount, popcount_rows, posting_matrix
from repro.datasets.dataset import Dataset
from repro.exceptions import DatasetError
from repro.hierarchy.hierarchy import Hierarchy
from repro.index import interpreter_for
from repro.metrics.privacy_checks import candidate_matrix
from repro.metrics.relational import quasi_identifier_attributes

#: Records per chunk in the matching-set AND passes: bounds the working-set
#: matrix to ``chunk × word_count(n)`` words instead of ``n × word_count(n)``.
CHUNK_RECORDS = 2048

#: Witness lists in an :class:`AttackResult` are capped at this many record
#: indices so reports stay small and picklable at any dataset size.
MAX_WITNESSES = 16


@dataclass(frozen=True)
class AttackResult:
    """Outcome of one simulated re-identification attack.

    ``match_sizes[i]`` is the size of the adversary's best (smallest
    nonempty) matching set for target record ``i`` — 0 when no knowledge
    about the target matches anything, i.e. the attack fails outright.
    ``empirical_k`` is the smallest nonzero matching set over all targets:
    the empirically observed privacy parameter (``k̂`` or ``k̂^m``), ``None``
    when every attack failed.  ``worst_records`` are the first
    :data:`MAX_WITNESSES` targets achieving ``empirical_k`` and
    ``worst_knowledge`` the item combination that got the first of them
    there (``None`` for the pure QI attack, or when QI knowledge alone was
    the adversary's best).  ``truncated`` flags that some target's knowledge
    enumeration hit the cap, making the reported risks lower bounds.
    """

    attack: str
    n_records: int
    match_sizes: tuple[int, ...]
    empirical_k: int | None
    mean_risk: float
    max_risk: float
    worst_records: tuple[int, ...]
    worst_knowledge: tuple[str, ...] | None = None
    truncated: bool = False

    @property
    def matched(self) -> int:
        """Number of targets the adversary found at least one candidate for."""
        return sum(1 for size in self.match_sizes if size > 0)

    def risk(self, record: int) -> float:
        """Re-identification probability of one target (0.0 when unmatched)."""
        size = self.match_sizes[record]
        return 1.0 / size if size else 0.0

    def summary(self) -> dict:
        return {
            "attack": self.attack,
            "records": self.n_records,
            "matched": self.matched,
            "empirical_k": self.empirical_k,
            "mean_risk": self.mean_risk,
            "max_risk": self.max_risk,
            "worst_records": list(self.worst_records),
            "worst_knowledge": (
                None if self.worst_knowledge is None else list(self.worst_knowledge)
            ),
            "truncated": self.truncated,
        }


def finalize_sizes(
    attack: str,
    sizes: Sequence[int],
    knowledge: dict[int, tuple[str, ...]] | None = None,
    truncated: bool = False,
) -> AttackResult:
    """Fold per-record matching-set sizes into an :class:`AttackResult`.

    Shared by the kernels and the scalar oracle so their results are equal
    as dataclasses whenever the per-record sizes (and witnesses) are.
    """
    match_sizes = tuple(int(size) for size in sizes)
    empirical: int | None = None
    for size in match_sizes:
        if size > 0 and (empirical is None or size < empirical):
            empirical = size
    worst: tuple[int, ...] = ()
    worst_knowledge: tuple[str, ...] | None = None
    if empirical is not None:
        worst = tuple(
            index for index, size in enumerate(match_sizes) if size == empirical
        )[:MAX_WITNESSES]
        if knowledge:
            worst_knowledge = knowledge.get(worst[0])
    n_records = len(match_sizes)
    mean_risk = (
        sum(1.0 / size for size in match_sizes if size) / n_records
        if n_records
        else 0.0
    )
    max_risk = 1.0 / empirical if empirical else 0.0
    return AttackResult(
        attack=attack,
        n_records=n_records,
        match_sizes=match_sizes,
        empirical_k=empirical,
        mean_risk=mean_risk,
        max_risk=max_risk,
        worst_records=worst,
        worst_knowledge=worst_knowledge,
        truncated=truncated,
    )


# -- shared input validation ---------------------------------------------------
def check_aligned(original: Dataset, anonymized: Dataset) -> None:
    """Attacks link record ``i`` to record ``i``; the datasets must align."""
    if len(original) != len(anonymized):
        raise DatasetError(
            "attack simulation requires record-aligned datasets: "
            f"original has {len(original)} records, "
            f"anonymized has {len(anonymized)}"
        )


def resolve_qi_attributes(
    original: Dataset, attributes: Sequence[str] | None
) -> list[str]:
    resolved = (
        list(attributes)
        if attributes is not None
        else quasi_identifier_attributes(original)
    )
    if not resolved:
        raise DatasetError(
            "qi attack requires at least one quasi-identifier attribute"
        )
    return resolved


def _numeric_attributes(dataset: Dataset, attributes: Sequence[str]) -> set[str]:
    return {name for name in attributes if dataset.schema[name].is_numeric}


# -- QI attack -----------------------------------------------------------------
def _qi_cover_tables(
    original: Dataset,
    anonymized: Dataset,
    attributes: Sequence[str],
    coverages: dict[str, AttributeCoverage],
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Per attribute: (per-original-value cover bitsets, per-record codes).

    ``cover[c]`` is the bitset of anonymized records whose published label
    covers distinct original value ``c``; gathering ``cover[codes[i]]``
    yields record ``i``'s single-attribute matching set.
    """
    n_records = len(anonymized)
    record_ids = np.arange(n_records, dtype=np.int64)
    tables: list[tuple[np.ndarray, np.ndarray]] = []
    for attribute in attributes:
        original_column = original.columnar(attribute)
        anonymized_column = anonymized.columnar(attribute)
        postings = posting_matrix(
            anonymized_column.codes.astype(np.int64),
            record_ids,
            len(anonymized_column.values),
            n_records,
        )
        coverage = coverages[attribute]
        cover = np.zeros(
            (max(len(original_column.values), 1), postings.shape[1]),
            dtype=np.uint64,
        )
        for code, value in enumerate(original_column.values):
            for label_code, label in enumerate(anonymized_column.values):
                if coverage.covers(label, value):
                    cover[code] |= postings[label_code]
        tables.append((cover, original_column.codes.astype(np.int64)))
    return tables


def _qi_sizes_kernel(
    original: Dataset,
    anonymized: Dataset,
    attributes: Sequence[str],
    coverages: dict[str, AttributeCoverage],
) -> list[int]:
    """Per-record QI matching-set sizes via chunked bitset AND + popcount."""
    n_records = len(anonymized)
    tables = _qi_cover_tables(original, anonymized, attributes, coverages)
    sizes = np.empty(n_records, dtype=np.int64)
    for start in range(0, n_records, CHUNK_RECORDS):
        stop = min(n_records, start + CHUNK_RECORDS)
        first_cover, first_codes = tables[0]
        accumulator = first_cover[first_codes[start:stop]]
        for cover, codes in tables[1:]:
            accumulator &= cover[codes[start:stop]]
        sizes[start:stop] = popcount_rows(accumulator)
    return [int(size) for size in sizes]


def qi_attack(
    original: Dataset,
    anonymized: Dataset,
    attributes: Sequence[str] | None = None,
    hierarchies: dict[str, Hierarchy] | None = None,
    vectorized: bool = True,
) -> AttackResult:
    """Simulate the QI-knowledge adversary against an anonymized output."""
    check_aligned(original, anonymized)
    attributes = resolve_qi_attributes(original, attributes)
    coverages = coverage_for(
        attributes, _numeric_attributes(original, attributes), hierarchies
    )
    if vectorized:
        sizes = _qi_sizes_kernel(original, anonymized, attributes, coverages)
    else:
        from repro.attacks.oracle import qi_sizes_scalar

        sizes = qi_sizes_scalar(original, anonymized, attributes, coverages)
    return finalize_sizes("qi", sizes)


# -- item attack ---------------------------------------------------------------
def _item_attack_inputs(
    original: Dataset,
    attribute: str | None,
    universe: set[str] | None,
) -> tuple[str, list[str]]:
    attribute = attribute or original.single_transaction_attribute()
    if universe is None:
        universe = original.item_universe(attribute)
    return attribute, sorted(str(item) for item in universe)


def _item_sizes_kernel(
    original: Dataset,
    anonymized: Dataset,
    m: int,
    attribute: str,
    ordered_items: Sequence[str],
    hierarchy: Hierarchy | None,
    knowledge_cap: int | None,
) -> tuple[list[int], dict[int, tuple[str, ...]], bool]:
    """Per-record worst item-knowledge matching-set sizes on candidate bitsets."""
    interpreter = interpreter_for(hierarchy, set(ordered_items))
    candidates = candidate_matrix(anonymized, attribute, interpreter, ordered_items)
    token_of = {item: token for token, item in enumerate(ordered_items)}
    support_memo: dict[tuple[str, ...], int] = {}

    def support_of(combo: tuple[str, ...]) -> int:
        support = support_memo.get(combo)
        if support is None:
            rows = np.fromiter(
                (token_of[item] for item in combo), dtype=np.int64, count=len(combo)
            )
            support = popcount(intersect_rows(candidates, rows))
            support_memo[combo] = support
        return support

    basket_memo: dict[frozenset, tuple[int, tuple[str, ...] | None, bool]] = {}
    sizes: list[int] = []
    knowledge: dict[int, tuple[str, ...]] = {}
    truncated = False
    for index, record in enumerate(original):
        basket = frozenset(
            str(item) for item in record[attribute] if str(item) in token_of
        )
        outcome = basket_memo.get(basket)
        if outcome is None:
            outcome = best_knowledge(basket, m, support_of, cap=knowledge_cap)
            basket_memo[basket] = outcome
        best, witness, hit_cap = outcome
        sizes.append(best)
        if witness is not None:
            knowledge[index] = witness
        truncated = truncated or hit_cap
    return sizes, knowledge, truncated


def item_attack(
    original: Dataset,
    anonymized: Dataset,
    m: int,
    attribute: str | None = None,
    hierarchy: Hierarchy | None = None,
    universe: set[str] | None = None,
    knowledge_cap: int | None = None,
    vectorized: bool = True,
) -> AttackResult:
    """Simulate the m-item-knowledge adversary against an anonymized output.

    ``universe`` is the adversary's item vocabulary (default: the original
    dataset's universe); knowledge combinations are drawn from each target's
    *original* basket restricted to it.
    """
    if m < 1:
        raise DatasetError("m must be at least 1")
    check_aligned(original, anonymized)
    attribute, ordered_items = _item_attack_inputs(original, attribute, universe)
    if vectorized:
        sizes, knowledge, truncated = _item_sizes_kernel(
            original, anonymized, m, attribute, ordered_items, hierarchy, knowledge_cap
        )
    else:
        from repro.attacks.oracle import item_sizes_scalar

        sizes, knowledge, truncated = item_sizes_scalar(
            original, anonymized, m, attribute, ordered_items, hierarchy, knowledge_cap
        )
    return finalize_sizes("item", sizes, knowledge, truncated)


# -- combined RT attack --------------------------------------------------------
def _rt_sizes_kernel(
    original: Dataset,
    anonymized: Dataset,
    m: int,
    attributes: Sequence[str],
    coverages: dict[str, AttributeCoverage],
    attribute: str,
    ordered_items: Sequence[str],
    hierarchy: Hierarchy | None,
    knowledge_cap: int | None,
) -> tuple[list[int], dict[int, tuple[str, ...]], bool]:
    """QI matching bitsets intersected with per-combination item candidates."""
    n_records = len(anonymized)
    tables = _qi_cover_tables(original, anonymized, attributes, coverages)
    interpreter = interpreter_for(hierarchy, set(ordered_items))
    candidates = candidate_matrix(anonymized, attribute, interpreter, ordered_items)
    token_of = {item: token for token, item in enumerate(ordered_items)}
    combo_bits: dict[tuple[str, ...], np.ndarray] = {}

    def bits_of(combo: tuple[str, ...]) -> np.ndarray:
        bits = combo_bits.get(combo)
        if bits is None:
            rows = np.fromiter(
                (token_of[item] for item in combo), dtype=np.int64, count=len(combo)
            )
            bits = intersect_rows(candidates, rows)
            combo_bits[combo] = bits
        return bits

    sizes: list[int] = []
    knowledge: dict[int, tuple[str, ...]] = {}
    truncated = False
    for start in range(0, n_records, CHUNK_RECORDS):
        stop = min(n_records, start + CHUNK_RECORDS)
        first_cover, first_codes = tables[0]
        accumulator = first_cover[first_codes[start:stop]]
        for cover, codes in tables[1:]:
            accumulator &= cover[codes[start:stop]]
        for index in range(start, stop):
            qi_bits = accumulator[index - start]
            basket = frozenset(
                str(item)
                for item in original[index][attribute]
                if str(item) in token_of
            )
            best, witness, hit_cap = best_knowledge(
                basket,
                m,
                lambda combo: popcount(qi_bits & bits_of(combo)),
                cap=knowledge_cap,
                initial=popcount(qi_bits),
            )
            sizes.append(best)
            if witness is not None:
                knowledge[index] = witness
            truncated = truncated or hit_cap
    return sizes, knowledge, truncated


def rt_attack(
    original: Dataset,
    anonymized: Dataset,
    m: int,
    relational_attributes: Sequence[str] | None = None,
    transaction_attribute: str | None = None,
    hierarchies: dict[str, Hierarchy] | None = None,
    item_hierarchy: Hierarchy | None = None,
    universe: set[str] | None = None,
    knowledge_cap: int | None = None,
    vectorized: bool = True,
) -> AttackResult:
    """Simulate the combined QI + m-item adversary of the (k, k^m) model.

    The adversary's matching set for a target is the QI matching set
    intersected with the candidates of its best item combination; with no
    useful item knowledge the QI matching set itself is the attack.
    """
    if m < 1:
        raise DatasetError("m must be at least 1")
    check_aligned(original, anonymized)
    attributes = resolve_qi_attributes(original, relational_attributes)
    coverages = coverage_for(
        attributes, _numeric_attributes(original, attributes), hierarchies
    )
    attribute, ordered_items = _item_attack_inputs(
        original, transaction_attribute, universe
    )
    if vectorized:
        sizes, knowledge, truncated = _rt_sizes_kernel(
            original,
            anonymized,
            m,
            attributes,
            coverages,
            attribute,
            ordered_items,
            item_hierarchy,
            knowledge_cap,
        )
    else:
        from repro.attacks.oracle import rt_sizes_scalar

        sizes, knowledge, truncated = rt_sizes_scalar(
            original,
            anonymized,
            m,
            attributes,
            coverages,
            attribute,
            ordered_items,
            item_hierarchy,
            knowledge_cap,
        )
    return finalize_sizes("rt", sizes, knowledge, truncated)


def simulate_attacks(
    original: Dataset,
    anonymized: Dataset,
    m: int = 2,
    relational_attributes: Sequence[str] | None = None,
    transaction_attribute: str | None = None,
    hierarchies: dict[str, Hierarchy] | None = None,
    item_hierarchy: Hierarchy | None = None,
    universe: set[str] | None = None,
    knowledge_cap: int | None = None,
    vectorized: bool = True,
) -> dict[str, AttackResult]:
    """Run every attack the dataset's schema supports.

    ``"qi"`` when the original dataset has quasi-identifier relational
    attributes, ``"item"`` when it has a transaction attribute, and ``"rt"``
    when it has both.  The engine gates attacks on the *configuration*
    instead (a transaction-only anonymization leaves the relational side
    identifiable by design); this schema-driven entry point serves the
    conformance suite and ad-hoc analysis.
    """
    check_aligned(original, anonymized)
    has_relational = bool(
        relational_attributes
        if relational_attributes is not None
        else quasi_identifier_attributes(original)
    )
    transaction = transaction_attribute or (
        original.schema.transaction_names[0]
        if original.schema.transaction_names
        else None
    )
    results: dict[str, AttackResult] = {}
    if has_relational:
        results["qi"] = qi_attack(
            original,
            anonymized,
            attributes=relational_attributes,
            hierarchies=hierarchies,
            vectorized=vectorized,
        )
    if transaction is not None:
        results["item"] = item_attack(
            original,
            anonymized,
            m,
            attribute=transaction,
            hierarchy=item_hierarchy,
            universe=universe,
            knowledge_cap=knowledge_cap,
            vectorized=vectorized,
        )
    if has_relational and transaction is not None:
        results["rt"] = rt_attack(
            original,
            anonymized,
            m,
            relational_attributes=relational_attributes,
            transaction_attribute=transaction,
            hierarchies=hierarchies,
            item_hierarchy=item_hierarchy,
            universe=universe,
            knowledge_cap=knowledge_cap,
            vectorized=vectorized,
        )
    return results
