"""Tests for automatic hierarchy construction."""

import pytest

from repro.datasets import toy_rt_dataset
from repro.exceptions import HierarchyError
from repro.hierarchy import (
    ROOT_LABEL,
    build_categorical_hierarchy,
    build_hierarchies_for_dataset,
    build_item_hierarchy,
    build_numeric_hierarchy,
    format_interval,
    interval_bounds,
    parse_interval,
)


class TestIntervalHelpers:
    def test_format_interval(self):
        assert format_interval(20, 40) == "[20-40]"
        assert format_interval(1.5, 2.25) == "[1.5-2.25]"

    def test_parse_interval(self):
        assert parse_interval("[20-40]") == (20.0, 40.0)
        assert parse_interval(" [ 1.5 - 2.5 ] ") == (1.5, 2.5)
        assert parse_interval("not-an-interval") is None
        assert parse_interval("42") is None

    def test_parse_interval_round_trip(self):
        assert parse_interval(format_interval(17, 90)) == (17.0, 90.0)


class TestCategoricalBuilder:
    def test_all_values_become_leaves(self):
        values = [f"v{i}" for i in range(10)]
        hierarchy = build_categorical_hierarchy(values, fanout=3)
        assert sorted(hierarchy.leaves()) == sorted(values)
        assert hierarchy.root.label == ROOT_LABEL

    def test_fanout_bounds_children(self):
        hierarchy = build_categorical_hierarchy([f"v{i}" for i in range(27)], fanout=3)
        for node in hierarchy.iter_nodes():
            if not node.is_leaf:
                assert len(node.children) <= 3

    def test_small_domain_attaches_directly_to_root(self):
        hierarchy = build_categorical_hierarchy(["a", "b"], fanout=3)
        assert hierarchy.height == 1
        assert hierarchy.parent("a") == ROOT_LABEL

    def test_deduplicates_and_ignores_none(self):
        hierarchy = build_categorical_hierarchy(["a", "a", None, "b"], fanout=2)
        assert sorted(hierarchy.leaves()) == ["a", "b"]

    def test_invalid_fanout_or_empty_domain(self):
        with pytest.raises(HierarchyError):
            build_categorical_hierarchy(["a"], fanout=1)
        with pytest.raises(HierarchyError):
            build_categorical_hierarchy([], fanout=2)

    def test_generalization_reaches_root(self):
        values = [f"v{i:02d}" for i in range(20)]
        hierarchy = build_categorical_hierarchy(values, fanout=4)
        assert hierarchy.generalize_to_level("v00", hierarchy.height) == ROOT_LABEL


class TestNumericBuilder:
    def test_leaves_are_values_and_internal_nodes_intervals(self):
        hierarchy = build_numeric_hierarchy(range(0, 100, 5), fanout=4)
        assert "0" in hierarchy
        assert hierarchy.node("0").interval == (0.0, 0.0)
        root_interval = hierarchy.node(ROOT_LABEL).interval
        assert root_interval == (0.0, 95.0)

    def test_internal_labels_parse_as_intervals(self):
        hierarchy = build_numeric_hierarchy(range(32), fanout=4)
        for node in hierarchy.iter_nodes():
            if not node.is_leaf and not node.is_root:
                assert parse_interval(node.label) is not None

    def test_interval_nesting_is_consistent(self):
        hierarchy = build_numeric_hierarchy(range(64), fanout=4)
        for node in hierarchy.iter_nodes():
            if node.parent is not None and node.parent.interval and node.interval:
                low, high = node.interval
                parent_low, parent_high = node.parent.interval
                assert parent_low <= low <= high <= parent_high

    def test_small_domain(self):
        hierarchy = build_numeric_hierarchy([1, 2, 3], fanout=4)
        assert hierarchy.height == 1
        assert hierarchy.parent("2") == ROOT_LABEL

    def test_empty_domain_rejected(self):
        with pytest.raises(HierarchyError):
            build_numeric_hierarchy([], fanout=3)


class TestItemAndDatasetBuilders:
    def test_item_hierarchy_is_categorical_over_items(self):
        hierarchy = build_item_hierarchy(["milk", "beer", "bread"], fanout=2)
        assert sorted(hierarchy.leaves()) == ["beer", "bread", "milk"]

    def test_build_for_dataset_covers_quasi_identifiers(self):
        dataset = toy_rt_dataset()
        hierarchies = build_hierarchies_for_dataset(dataset, fanout=3)
        assert set(hierarchies) == {"Age", "Education", "Items"}
        assert sorted(hierarchies["Items"].leaves()) == sorted(dataset.item_universe())
        assert hierarchies["Age"].node(ROOT_LABEL).interval is not None

    def test_build_for_dataset_attribute_selection(self):
        dataset = toy_rt_dataset()
        hierarchies = build_hierarchies_for_dataset(dataset, attributes=["Age"])
        assert list(hierarchies) == ["Age"]


class TestIntervalBounds:
    def test_bounds_from_hierarchy_node(self):
        hierarchy = build_numeric_hierarchy(range(16), fanout=4)
        assert interval_bounds(hierarchy, ROOT_LABEL) == (0.0, 15.0)

    def test_bounds_from_label(self):
        assert interval_bounds(None, "[5-9]") == (5.0, 9.0)
        assert interval_bounds(None, "7") == (7.0, 7.0)
        assert interval_bounds(None, "Doctorate") is None
