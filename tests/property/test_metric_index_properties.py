"""Property-based equivalence tests for the interpretation-index rewrite.

The index subsystem (:mod:`repro.index`) only *memoizes* pure computations,
so every metric must match a brute-force re-derivation, and the COAT/PCTA
outputs must be byte-identical with and without posting-union caching.  The
brute-force references below mirror the pre-index metric implementations
(with the root-label universe fix applied) using only
:func:`repro.metrics.interpretation.label_leaves`.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import Coat, Pcta
from repro.datasets import Attribute, Dataset, Schema
from repro.exceptions import AlgorithmError
from repro.index import InvertedIndex
from repro.metrics import (
    estimated_item_frequencies,
    label_leaves,
    suppression_ratio,
    utility_loss,
)
from repro.policies.privacy import PrivacyPolicy
from repro.policies.utility import UtilityPolicy

ITEMS = [f"i{n}" for n in range(10)]

itemsets = st.lists(
    st.sets(st.sampled_from(ITEMS), min_size=1, max_size=4),
    min_size=3,
    max_size=25,
)

#: item -> published label: intact, a group label, the root, or suppression.
mappings = st.dictionaries(
    st.sampled_from(ITEMS),
    st.one_of(
        st.none(),
        st.just("*"),
        st.sets(st.sampled_from(ITEMS), min_size=2, max_size=4).map(
            lambda items: "(" + ",".join(sorted(items)) + ")"
        ),
    ),
    max_size=len(ITEMS),
)


def make_dataset(baskets) -> Dataset:
    schema = Schema([Attribute.transaction("Items")])
    return Dataset(schema, [{"Items": sorted(basket)} for basket in baskets])


def apply_mapping(dataset: Dataset, mapping) -> Dataset:
    anonymized = dataset.copy()
    for index, record in enumerate(dataset):
        labels = [
            mapping.get(item, item)
            for item in record["Items"]
            if mapping.get(item, item) is not None
        ]
        anonymized.set_value(index, "Items", labels)
    return anonymized


# -- brute-force references (pre-index hot-path logic) --------------------------
def brute_force_utility_loss(original: Dataset, anonymized: Dataset) -> float:
    universe = original.item_universe("Items")
    universe_size = len(universe)
    total_items = sum(len(record["Items"]) for record in original)
    if total_items == 0:
        return 0.0
    loss = 0.0
    for original_record, anonymized_record in zip(original, anonymized):
        target_labels = anonymized_record["Items"]
        covered = set()
        for label in target_labels:
            covered |= label_leaves(str(label), None, universe=universe)
        covered &= universe
        for item in original_record["Items"]:
            if item not in covered:
                loss += 1.0
                continue
            best = 1.0
            for label in target_labels:
                leaves = label_leaves(str(label), None, universe=universe)
                if item in leaves:
                    if universe_size <= 1:
                        cost = 0.0
                    else:
                        cost = max(0, len(leaves) - 1) / (universe_size - 1)
                    best = min(best, cost)
            loss += best
    return loss / total_items


def brute_force_suppression_ratio(original: Dataset, anonymized: Dataset) -> float:
    universe = original.item_universe("Items")
    total = 0
    suppressed = 0
    for original_record, anonymized_record in zip(original, anonymized):
        covered = set()
        for label in anonymized_record["Items"]:
            covered |= label_leaves(str(label), None, universe=universe)
        covered &= universe
        for item in original_record["Items"]:
            total += 1
            if item not in covered:
                suppressed += 1
    return suppressed / total if total else 0.0


def brute_force_estimated_frequencies(anonymized: Dataset, universe) -> dict:
    estimates = {item: 0.0 for item in universe}
    for record in anonymized:
        for label in record["Items"]:
            leaves = label_leaves(str(label), None, universe=universe) & set(universe)
            if not leaves:
                continue
            weight = 1.0 / len(leaves)
            for item in leaves:
                estimates[item] += weight
    return estimates


class TestMetricEquivalence:
    @given(baskets=itemsets, mapping=mappings)
    @settings(max_examples=60, deadline=None)
    def test_utility_loss_matches_brute_force(self, baskets, mapping):
        original = make_dataset(baskets)
        anonymized = apply_mapping(original, mapping)
        assert utility_loss(original, anonymized) == pytest.approx(
            brute_force_utility_loss(original, anonymized)
        )

    @given(baskets=itemsets, mapping=mappings)
    @settings(max_examples=60, deadline=None)
    def test_suppression_ratio_matches_brute_force(self, baskets, mapping):
        original = make_dataset(baskets)
        anonymized = apply_mapping(original, mapping)
        assert suppression_ratio(original, anonymized) == pytest.approx(
            brute_force_suppression_ratio(original, anonymized)
        )

    @given(baskets=itemsets, mapping=mappings)
    @settings(max_examples=60, deadline=None)
    def test_estimated_frequencies_match_brute_force(self, baskets, mapping):
        original = make_dataset(baskets)
        anonymized = apply_mapping(original, mapping)
        universe = original.item_universe("Items")
        fast = estimated_item_frequencies(anonymized, universe)
        slow = brute_force_estimated_frequencies(anonymized, universe)
        assert set(fast) == set(slow)
        for item in fast:
            assert fast[item] == pytest.approx(slow[item])


# -- algorithm output equivalence (cached vs. uncached posting unions) ----------
class UncachedCoat(Coat):
    @staticmethod
    def _build_index(dataset, attribute):
        return InvertedIndex.from_dataset(dataset, attribute, cached=False)


class UncachedPcta(Pcta):
    @staticmethod
    def _build_index(dataset, attribute):
        return InvertedIndex.from_dataset(dataset, attribute, cached=False)


constraint_sets = st.lists(
    st.sets(st.sampled_from(ITEMS), min_size=1, max_size=2),
    min_size=1,
    max_size=5,
)

#: Disjoint utility groups: chunk the universe into consecutive pairs.
UTILITY_GROUPS = [ITEMS[n : n + 2] for n in range(0, len(ITEMS), 2)]


def run_or_error(anonymizer, dataset):
    """The anonymized rows, or the AlgorithmError message when the run fails.

    COAT can legitimately fail on adversarial inputs (generalizing for one
    constraint may re-violate an already-satisfied one); cached and uncached
    execution must then fail identically.
    """
    try:
        return anonymizer.anonymize(dataset).dataset.to_rows()
    except AlgorithmError as error:
        return str(error)


class TestAlgorithmEquivalence:
    @given(baskets=itemsets, constraints=constraint_sets, k=st.integers(2, 4))
    @settings(max_examples=25, deadline=None)
    def test_coat_output_identical_without_union_cache(self, baskets, constraints, k):
        dataset = make_dataset(baskets)
        privacy = PrivacyPolicy(constraints, k=k)
        utility = UtilityPolicy(UTILITY_GROUPS)
        cached = run_or_error(Coat(privacy, utility), dataset)
        uncached = run_or_error(UncachedCoat(privacy, utility), dataset)
        assert cached == uncached

    @given(baskets=itemsets, constraints=constraint_sets, k=st.integers(2, 4))
    @settings(max_examples=25, deadline=None)
    def test_pcta_output_identical_without_union_cache(self, baskets, constraints, k):
        dataset = make_dataset(baskets)
        privacy = PrivacyPolicy(constraints, k=k)
        cached = run_or_error(Pcta(privacy), dataset)
        uncached = run_or_error(UncachedPcta(privacy), dataset)
        assert cached == uncached
