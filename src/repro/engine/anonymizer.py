"""The Anonymization Module: turn a configuration into an executed algorithm.

This is the backend component that SECRETA instantiates (possibly several
times, in parallel) to service anonymization requests: given a dataset, the
prepared resources (hierarchies, policies) and a configuration, it constructs
the concrete algorithm object — a single relational or transaction algorithm,
or a bounding method combining one of each — runs it, and returns the
:class:`~repro.algorithms.base.AnonymizationResult`.
"""

from __future__ import annotations

from repro.algorithms.base import AnonymizationResult, Anonymizer
from repro.algorithms.registry import get_spec
from repro.algorithms.relational.cluster import ClusterAnonymizer
from repro.algorithms.relational.fullsubtree import FullSubtreeBottomUp
from repro.algorithms.relational.incognito import Incognito
from repro.algorithms.relational.topdown import TopDownSpecialization
from repro.algorithms.rt.bounding import RtBoundingAnonymizer
from repro.algorithms.transaction.apriori import AprioriAnonymizer
from repro.algorithms.transaction.coat import Coat
from repro.algorithms.transaction.lra import LraAnonymizer
from repro.algorithms.transaction.pcta import Pcta
from repro.algorithms.transaction.vpa import VpaAnonymizer
from repro.datasets.dataset import Dataset
from repro.engine.config import AnonymizationConfig
from repro.engine.resources import ExperimentResources
from repro.exceptions import ConfigurationError

_RELATIONAL_CLASSES = {
    "incognito": Incognito,
    "top-down": TopDownSpecialization,
    "cluster": ClusterAnonymizer,
    "full-subtree": FullSubtreeBottomUp,
}
_TRANSACTION_CLASSES = {
    "apriori": AprioriAnonymizer,
    "lra": LraAnonymizer,
    "vpa": VpaAnonymizer,
}


class AnonymizationModule:
    """Builds and executes algorithms for one dataset and resource set."""

    def __init__(self, dataset: Dataset, resources: ExperimentResources) -> None:
        self.dataset = dataset
        self.resources = resources

    # -- construction -----------------------------------------------------------
    def _relational_attributes(self, config: AnonymizationConfig) -> list[str] | None:
        if config.relational_attributes is not None:
            return list(config.relational_attributes)
        return None

    def build_relational(self, config: AnonymizationConfig) -> Anonymizer:
        name = config.relational_algorithm
        if name not in _RELATIONAL_CLASSES:
            raise ConfigurationError(f"unknown relational algorithm {name!r}")
        cls = _RELATIONAL_CLASSES[name]
        return cls(
            config.k,
            self.resources.hierarchies,
            attributes=self._relational_attributes(config),
            **config.extra.get("relational", {}),
        )

    def build_transaction(self, config: AnonymizationConfig) -> Anonymizer:
        name = config.transaction_algorithm
        attribute = config.transaction_attribute
        if name == "coat":
            return Coat(
                self.resources.privacy_policy,
                self.resources.utility_policy,
                attribute=attribute,
                **config.extra.get("transaction", {}),
            )
        if name == "pcta":
            return Pcta(
                self.resources.privacy_policy,
                attribute=attribute,
                **config.extra.get("transaction", {}),
            )
        if name in _TRANSACTION_CLASSES:
            cls = _TRANSACTION_CLASSES[name]
            return cls(
                config.k,
                config.m,
                hierarchy=self.resources.item_hierarchy,
                attribute=attribute,
                **config.extra.get("transaction", {}),
            )
        raise ConfigurationError(f"unknown transaction algorithm {name!r}")

    def build_rt(self, config: AnonymizationConfig) -> RtBoundingAnonymizer:
        spec = get_spec(config.bounding_method)
        if spec.kind != "rt":
            raise ConfigurationError(
                f"{config.bounding_method!r} is not a bounding method"
            )
        relational = self.build_relational(config)

        def transaction_factory(_subset: Dataset) -> Anonymizer:
            return self.build_transaction(config)

        return spec.cls(
            k=config.k,
            m=config.m,
            delta=config.delta,
            relational_algorithm=relational,
            transaction_factory=transaction_factory,
            hierarchies=self.resources.hierarchies,
            item_hierarchy=self.resources.item_hierarchy,
            relational_attributes=self._relational_attributes(config),
            transaction_attribute=config.transaction_attribute,
            **config.extra.get("rt", {}),
        )

    def build_algorithm(self, config: AnonymizationConfig) -> Anonymizer:
        """Instantiate the algorithm (or combination) a configuration describes."""
        mode = config.mode
        if mode == "relational":
            return self.build_relational(config)
        if mode == "transaction":
            return self.build_transaction(config)
        return self.build_rt(config)

    # -- execution ------------------------------------------------------------------
    def run(self, config: AnonymizationConfig) -> AnonymizationResult:
        """Prepare resources for ``config``, build the algorithm and execute it."""
        self.resources.ensure_for(self.dataset, config)
        algorithm = self.build_algorithm(config)
        result = algorithm.anonymize(self.dataset)
        result.parameters.setdefault("configuration", config.display_label)
        return result
