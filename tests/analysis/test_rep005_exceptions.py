"""REP005: exception discipline fixtures."""

from __future__ import annotations

from lint_harness import new_codes

from repro.analysis.manifest import InvariantManifest

MANIFEST = InvariantManifest(
    exception_scope=("src/pkg",),
    allowed_handlers=("src/pkg/cleanup.py::best_effort",),
)

SWALLOWED = """
    def swallow():
        try:
            work()
        except Exception:
            pass
"""

BARE_SWALLOWED = """
    def swallow():
        try:
            work()
        except:
            return None
"""

CONVERTED = """
    def convert():
        try:
            work()
        except Exception as error:
            raise DatasetError("work failed") from error
"""

RERAISED = """
    def reraise():
        try:
            work()
        except Exception:
            log()
            raise
"""

NARROW = """
    def narrow():
        try:
            work()
        except (ValueError, KeyError):
            return None
"""

ALLOWED_SITE = """
    def best_effort(segment):
        try:
            segment.unlink()
        except Exception:
            pass
"""

RUNTIME_ASSERT = """
    def pick(candidates):
        best = max(candidates, default=None)
        assert best is not None
        return best
"""


class TestRep005:
    def test_swallowing_broad_except_is_flagged(self, harness):
        findings = harness.findings(
            "src/pkg/mod.py", SWALLOWED, manifest=MANIFEST, select=["REP005"]
        )
        assert new_codes(findings) == ["REP005"]

    def test_bare_except_is_flagged(self, harness):
        findings = harness.findings(
            "src/pkg/mod.py", BARE_SWALLOWED, manifest=MANIFEST, select=["REP005"]
        )
        assert new_codes(findings) == ["REP005"]

    def test_conversion_with_raise_from_is_clean(self, harness):
        assert (
            harness.findings(
                "src/pkg/mod.py", CONVERTED, manifest=MANIFEST, select=["REP005"]
            )
            == []
        )

    def test_plain_reraise_is_clean(self, harness):
        assert (
            harness.findings(
                "src/pkg/mod.py", RERAISED, manifest=MANIFEST, select=["REP005"]
            )
            == []
        )

    def test_narrow_handler_is_clean(self, harness):
        assert (
            harness.findings(
                "src/pkg/mod.py", NARROW, manifest=MANIFEST, select=["REP005"]
            )
            == []
        )

    def test_allow_listed_cleanup_site_is_exempt(self, harness):
        assert (
            harness.findings(
                "src/pkg/cleanup.py", ALLOWED_SITE, manifest=MANIFEST, select=["REP005"]
            )
            == []
        )

    def test_out_of_scope_module_is_ignored(self, harness):
        assert (
            harness.findings(
                "tools/script.py", SWALLOWED, manifest=MANIFEST, select=["REP005"]
            )
            == []
        )

    def test_runtime_assert_is_flagged(self, harness):
        findings = harness.findings(
            "src/pkg/mod.py", RUNTIME_ASSERT, manifest=MANIFEST, select=["REP005"]
        )
        assert new_codes(findings) == ["REP005"]
        assert "assert" in findings[0].message

    def test_suppression_with_reason_is_honored(self, harness):
        source = RUNTIME_ASSERT.replace(
            "assert best is not None",
            "assert best is not None  "
            "# repro: allow[REP005] -- fixture: documented debug invariant",
        )
        findings = harness.findings(
            "src/pkg/mod.py", source, manifest=MANIFEST, select=["REP005"]
        )
        assert len(findings) == 1
        assert findings[0].suppressed
        assert new_codes(findings) == []
