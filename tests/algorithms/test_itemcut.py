"""Tests for the shared item-cut machinery of the hierarchy-based algorithms."""

import pytest

from repro.algorithms.transaction._itemcut import (
    ItemCut,
    KmAnonymityChecker,
    greedy_km_anonymize,
)
from repro.exceptions import AlgorithmError
from repro.hierarchy import HierarchyBuilder, build_item_hierarchy


@pytest.fixture
def hierarchy():
    return build_item_hierarchy([f"i{n}" for n in range(8)], fanout=2)


@pytest.fixture
def itemsets():
    return [
        frozenset({"i0", "i1"}),
        frozenset({"i0", "i2"}),
        frozenset({"i1", "i2"}),
        frozenset({"i3"}),
        frozenset({"i4", "i5"}),
        frozenset({"i6", "i7"}),
        frozenset({"i0", "i1", "i2"}),
        frozenset({"i2", "i3"}),
    ]


class TestItemCut:
    def test_initial_mapping_is_identity(self, hierarchy):
        cut = ItemCut(hierarchy, ["i0", "i1"])
        assert cut.image("i0") == "i0"
        assert cut.nodes == {"i0", "i1"}

    def test_group_like_node_labels_resolve_from_the_hierarchy(self):
        # Regression: a hierarchy node whose label *looks like* an item-group
        # label, e.g. "(a,b)", must be resolved via its actual subtree (here
        # covering c as well), not parsed from the label text.
        builder = HierarchyBuilder(attribute="Items")
        builder.add("(a,b)", "*")
        for leaf in ("a", "b", "c"):
            builder.add(leaf, "(a,b)")
        cut = ItemCut(builder.build(), ["a", "b", "c"])
        assert cut.generalize_node("a") == "(a,b)"
        assert cut.mapping == {"a": "(a,b)", "b": "(a,b)", "c": "(a,b)"}
        assert cut.nodes == {"(a,b)"}  # still a partition of the universe

    def test_unknown_items_rejected(self, hierarchy):
        with pytest.raises(AlgorithmError):
            ItemCut(hierarchy, ["not-an-item"])

    def test_generalize_node_promotes_whole_sibling_group(self, hierarchy, itemsets):
        cut = ItemCut(hierarchy, [f"i{n}" for n in range(8)])
        parent = cut.generalize_node("i0")
        assert parent == hierarchy.parent("i0")
        promoted = {item for item in cut.items if cut.image(item) == parent}
        assert promoted == set(hierarchy.leaves(parent))

    def test_generalize_itemset_deduplicates(self, hierarchy):
        cut = ItemCut(hierarchy, [f"i{n}" for n in range(8)])
        cut.generalize_node("i0")
        generalized = cut.generalize_itemset({"i0", "i1"})
        assert len(generalized) == 1

    def test_root_generalization_is_idempotent(self, hierarchy):
        cut = ItemCut(hierarchy, [f"i{n}" for n in range(8)])
        for item in list(cut.items):
            while cut.image(item) != hierarchy.root.label:
                cut.generalize_node(cut.image(item))
        assert cut.is_fully_generalized()
        assert cut.generalize_node(hierarchy.root.label) == hierarchy.root.label

    def test_copy_is_independent(self, hierarchy):
        cut = ItemCut(hierarchy, [f"i{n}" for n in range(8)])
        clone = cut.copy()
        cut.generalize_node("i0")
        assert clone.image("i0") == "i0"


class TestChecker:
    def test_single_item_violations(self, hierarchy, itemsets):
        cut = ItemCut(hierarchy, [f"i{n}" for n in range(8)])
        checker = KmAnonymityChecker(itemsets, k=3, m=1)
        violations = checker.violations(cut, 1)
        # i4..i7 appear only once; i3 appears twice.
        assert ("i4",) in violations
        assert ("i3",) in violations
        assert ("i0",) not in violations

    def test_pair_violations(self, hierarchy, itemsets):
        cut = ItemCut(hierarchy, [f"i{n}" for n in range(8)])
        checker = KmAnonymityChecker(itemsets, k=2, m=2)
        violations = checker.violations(cut, 2)
        assert ("i2", "i3") in violations

    def test_invalid_parameters(self, itemsets):
        with pytest.raises(AlgorithmError):
            KmAnonymityChecker(itemsets, k=1, m=1)
        with pytest.raises(AlgorithmError):
            KmAnonymityChecker(itemsets, k=2, m=0)


class TestGreedy:
    def test_result_is_km_anonymous(self, hierarchy, itemsets):
        cut, statistics = greedy_km_anonymize(itemsets, hierarchy, k=2, m=2)
        checker = KmAnonymityChecker(itemsets, k=2, m=2)
        assert checker.is_km_anonymous(cut)
        assert statistics["unresolvable_violations"] == 0
        assert statistics["generalization_steps"] > 0

    def test_already_anonymous_data_is_untouched(self, hierarchy):
        itemsets = [frozenset({"i0"}), frozenset({"i0"}), frozenset({"i0", "i1"}),
                    frozenset({"i0", "i1"})]
        cut, statistics = greedy_km_anonymize(itemsets, hierarchy, k=2, m=2)
        assert statistics["generalization_steps"] == 0
        assert cut.image("i0") == "i0"

    def test_unprotectable_data_is_reported(self, hierarchy):
        itemsets = [frozenset({"i0"})]  # a single non-empty transaction, k=2
        cut, statistics = greedy_km_anonymize(itemsets, hierarchy, k=2, m=1)
        assert statistics["unresolvable_violations"] > 0
