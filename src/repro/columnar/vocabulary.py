"""Item vocabulary: a bidirectional item ↔ token-id mapping.

Tokenizing the item universe once turns every downstream kernel — posting
bitsets, CSR token columns, cost/weight vectors — into integer array work.
Tokens are assigned in sorted item order so that a vocabulary is a pure
function of the item set (two datasets with the same universe tokenize
identically).
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np


class ItemVocabulary:
    """Immutable ``item → token id`` mapping over a sorted item universe."""

    __slots__ = ("_items", "_tokens")

    def __init__(self, items: Iterable[str]) -> None:
        self._items: tuple[str, ...] = tuple(sorted({str(item) for item in items}))
        self._tokens: dict[str, int] = {
            item: token for token, item in enumerate(self._items)
        }

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[str]:
        return iter(self._items)

    def __contains__(self, item: object) -> bool:
        return item in self._tokens

    def __repr__(self) -> str:
        return f"ItemVocabulary(items={len(self._items)})"

    @property
    def items(self) -> tuple[str, ...]:
        """All items in token order (``items[token]`` inverts :meth:`token`)."""
        return self._items

    def token(self, item: str) -> int | None:
        """The token id of ``item`` (``None`` for unknown items)."""
        return self._tokens.get(str(item))

    def item(self, token: int) -> str:
        """The item of a token id."""
        return self._items[token]

    def tokens_for(self, items: Iterable[str]) -> np.ndarray:
        """Token ids of the known members of ``items`` (unknown items dropped)."""
        lookup = self._tokens
        return np.fromiter(
            (
                token
                for token in (lookup.get(str(item)) for item in items)
                if token is not None
            ),
            dtype=np.int64,
        )

    def universe(self) -> set[str]:
        """A fresh mutable set of all items (the dataset's item universe)."""
        return set(self._items)
