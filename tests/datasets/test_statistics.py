"""Tests for attribute statistics."""

import math

import pytest

from repro.datasets import (
    attribute_histogram,
    dataset_summary,
    frequency_relative_error,
    numeric_histogram,
    toy_rt_dataset,
    value_frequencies,
)
from repro.exceptions import DatasetError


@pytest.fixture
def dataset():
    return toy_rt_dataset()


class TestValueFrequencies:
    def test_categorical_counts(self, dataset):
        frequencies = value_frequencies(dataset, "Education")
        assert frequencies["Bachelors"] == 2
        assert frequencies["Masters"] == 2
        assert sum(frequencies.values()) == len(dataset)

    def test_transaction_counts_are_item_supports(self, dataset):
        frequencies = value_frequencies(dataset, "Items")
        assert frequencies["bread"] == 4
        assert frequencies["wine"] == 4
        assert frequencies["milk"] == 4
        assert frequencies["beer"] == 3

    def test_numeric_counts(self, dataset):
        frequencies = value_frequencies(dataset, "Age")
        assert frequencies[25] == 1
        assert len(frequencies) == len(dataset)


class TestHistograms:
    def test_numeric_histogram_covers_all_values(self, dataset):
        histogram = numeric_histogram(dataset, "Age", bins=4)
        assert len(histogram["counts"]) == 4
        assert len(histogram["edges"]) == 5
        assert sum(histogram["counts"]) == len(dataset)

    def test_numeric_histogram_requires_numeric(self, dataset):
        with pytest.raises(DatasetError):
            numeric_histogram(dataset, "Education")

    def test_attribute_histogram_dispatches_by_kind(self, dataset):
        numeric = attribute_histogram(dataset, "Age", bins=3)
        categorical = attribute_histogram(dataset, "Education")
        transaction = attribute_histogram(dataset, "Items")
        assert numeric["kind"] == "numeric"
        assert categorical["kind"] == "categorical"
        assert transaction["kind"] == "transaction"
        assert categorical["labels"][0] in {"Bachelors", "Masters", "HS-grad", "Doctorate"}

    def test_categorical_histogram_sorted_by_count(self, dataset):
        histogram = attribute_histogram(dataset, "Items")
        assert histogram["counts"] == sorted(histogram["counts"], reverse=True)


class TestSummary:
    def test_summary_structure(self, dataset):
        summary = dataset_summary(dataset)
        assert summary["records"] == len(dataset)
        assert summary["attributes"]["Age"]["kind"] == "numeric"
        assert summary["attributes"]["Age"]["min"] == 25
        assert summary["attributes"]["Education"]["distinct"] == 4
        assert summary["attributes"]["Items"]["universe"] == 4
        assert summary["attributes"]["Items"]["avg_items"] > 0


class TestFrequencyRelativeError:
    def test_identical_distributions_have_zero_error(self):
        original = {"a": 10, "b": 5}
        assert frequency_relative_error(original, dict(original)) == {"a": 0.0, "b": 0.0}

    def test_relative_error_values(self):
        errors = frequency_relative_error({"a": 10}, {"a": 5})
        assert errors["a"] == pytest.approx(0.5)

    def test_value_missing_from_original_is_infinite(self):
        errors = frequency_relative_error({"a": 1}, {"a": 1, "b": 3})
        assert math.isinf(errors["b"])

    def test_value_missing_from_both_sides(self):
        errors = frequency_relative_error({"a": 4}, {})
        assert errors["a"] == 1.0
