"""REP009 — interprocedural resource escape.

REP001 checks that a ``SharedMemory(create=True)`` call sits in a scope
with a *syntactically visible* guard; that check goes blind the moment the
handle crosses a function boundary.  REP009 runs the real analysis: every
acquisition (shared-memory segments, ``mkstemp`` temp files, manifest-listed
acquisition calls, and project helpers whose summary says they return a
fresh resource) is tracked through the function's control-flow graph — with
exception edges — until it reaches a cleanup sink on **every** path.

Sinks are ``close``/``unlink``-style methods, the manifest's
``cleanup_sinks`` callables, ``weakref.finalize`` registration, context
managers, and resolved project callees whose summary releases the
parameter.  A handle stored into ``self.<attr>`` transfers ownership to the
instance, which is fine exactly when the owning class has a cleanup path
for that attribute.  A raising path between acquisition and the sink — even
when the sink lives in a helper — is a leak.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterable

from repro.analysis.core import Finding, Rule, register
from repro.analysis.dataflow import (
    ResourceAnalysis,
    ResourceModel,
    binding_key,
    project_summaries,
    resource_model,
)
from repro.analysis.graph import FunctionInfo, ProjectGraph

if TYPE_CHECKING:
    from repro.analysis.core import Project
    from repro.analysis.dataflow import SummaryTable


@register
class InterproceduralResourceEscape(Rule):
    code = "REP009"
    name = "resource-escape"
    summary = "acquired resources must reach a cleanup sink on every path, across calls"
    explanation = (
        "A SharedMemory(create=True) segment or mkstemp temp file is a "
        "kernel/filesystem object that outlives the process unless released. "
        "REP009 follows each acquisition through the function's control-flow "
        "graph, including the exception edges, and through resolved repro.* "
        "calls via per-function summaries: a helper that releases its "
        "parameter on every path discharges the caller's obligation, a "
        "weakref.finalize registration or context manager counts as an "
        "immediate guard, and storing the handle on self hands ownership to "
        "the instance provided the class has a cleanup path for that "
        "attribute.  What remains is a real leak: some path — usually a "
        "raising one — on which the handle never reaches close/unlink.  Fix "
        "the control flow (try/finally around the risky region, or register "
        "the finalizer before it) rather than suppressing."
    )

    def finalize(self, project: "Project") -> Iterable[Finding]:
        manifest = project.manifest
        scope = tuple(manifest.resource_scope)
        if not scope:
            return
        graph = project.graph()
        summaries = project_summaries(project)
        model = resource_model(manifest)
        for fid, info in graph.functions.items():
            if not info.module.startswith(scope):
                continue
            if not self._has_acquisition(graph, summaries, model, fid):
                continue
            yield from self._check_function(
                project, graph, summaries, model, info
            )

    def _has_acquisition(
        self,
        graph: ProjectGraph,
        summaries: "SummaryTable",
        model: ResourceModel,
        fid: str,
    ) -> bool:
        for site in graph.call_sites(fid):
            if site.constructs is not None:
                continue
            if model.is_acquisition(site.call, summaries.get(site.callee)):
                return True
        return False

    def _check_function(
        self,
        project: "Project",
        graph: ProjectGraph,
        summaries: "SummaryTable",
        model: ResourceModel,
        info: FunctionInfo,
    ) -> Iterable[Finding]:
        module = project.module(info.module)
        if module is None:
            return
        outcome = ResourceAnalysis(
            info, graph, summaries, model, track_params=False
        ).run()
        for token, call in outcome.acquisitions.items():
            if call is None or not outcome.leaked(token):
                continue
            attr = outcome.adopted.get(token)
            if attr is not None and self._class_cleans(
                graph, summaries, model, info, attr
            ):
                continue
            held = sorted(outcome.exit_bindings.get(token, ()))
            where = f" (held as {', '.join(held)})" if held else ""
            yield module.finding(
                self,
                call,
                f"resource acquired here can exit {info.qualname}() without "
                f"reaching a cleanup sink{where}; a raising path skips the "
                f"release — guard with try/finally, a context manager, or a "
                f"weakref.finalize registered before the risky region",
            )

    def _class_cleans(
        self,
        graph: ProjectGraph,
        summaries: "SummaryTable",
        model: ResourceModel,
        info: FunctionInfo,
        attr: str,
    ) -> bool:
        """Whether ``info``'s class has any cleanup path for ``self.<attr>``."""
        if not info.owner_class:
            return False
        class_id = f"{info.module}::{info.owner_class}"
        target = f"self.{attr}"
        for method in graph.methods_of(class_id):
            for site in graph.call_sites(method.id):
                call = site.call
                values = [*call.args, *(kw.value for kw in call.keywords)]
                sinkish = site.name in model.cleanup_sinks or site.name == "finalize"
                if sinkish and isinstance(call.func, ast.Attribute):
                    if binding_key(call.func.value) == target:
                        return True
                if sinkish and any(binding_key(v) == target for v in values):
                    return True
                summary = summaries.get(site.callee)
                if summary is not None and summary.releases:
                    if any(binding_key(v) == target for v in values):
                        return True
        return False


__all__ = ["InterproceduralResourceEscape"]
