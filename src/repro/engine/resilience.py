"""Fault-tolerant task execution: policies, retries, timeouts, degradation.

The pre-PR-7 fan-out was a bare ``executor.map``: one crashed or hung worker
killed the whole sweep, and the exception that surfaced did not even say
which task failed.  This module is the execution discipline the engine's
COAT/PCTA/clustering sweeps run under instead:

* **per-task futures** — every task is submitted individually, so one
  failure is one task's problem and every other result survives;
* :class:`ExecutionPolicy` — bounded retries with exponential backoff and
  deterministic jitter, a per-task timeout, and a degradation ladder
  (``process → thread → sequential``) for tasks that repeatedly kill their
  workers;
* **crash recovery** — a ``BrokenProcessPool`` (worker crash, SIGKILL, OOM)
  or a task timeout respawns the executor through the
  :class:`ProcessControl` hook, re-exports any shared-memory segment that
  went stale, and replays only the unfinished tasks;
* :class:`RunReport` — the structured account of what actually happened:
  per-task attempts with durations and error chains, executor respawns,
  ladder degradations and the backend each task finally completed on.

Failures are classified into four outcomes.  ``crash`` and ``timeout`` are
*hard*: they indict the worker process, count toward the degradation ladder
and are always retried.  ``corrupt`` (a result the policy's validator
rejects, or a :class:`~repro.engine.faults.Corrupted` marker) is retried
within the attempt budget.  ``error`` (an ordinary worker exception) is
deterministic in this codebase's pure workers, so it fails fast by default —
wrapped in :class:`~repro.exceptions.TaskError` with the task index, attempt
count and original exception chained — unless ``retry_errors`` is set.

Every retry loop here is bounded by the policy (``max_attempts`` per ladder
rung, at most ``len(ladder)`` rungs); the REP007 linter rule keeps it that
way.
"""

from __future__ import annotations

import hashlib
import json
import pickle
import time
from concurrent.futures import Future, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Protocol, Sequence

from repro.engine.faults import Corrupted, FaultPlan, faulted_call
from repro.exceptions import ConfigurationError, TaskError

#: The degradation ladder's rungs, strongest isolation first.
BACKENDS = ("process", "thread", "sequential")

#: Outcomes that indict the worker process rather than the task's own code.
HARD_OUTCOMES = frozenset({"crash", "timeout"})


@dataclass(frozen=True)
class ExecutionPolicy:
    """How hard the engine tries before declaring a task failed.

    Parameters
    ----------
    task_timeout:
        Seconds of dedicated wait per attempt before the task is declared
        hung and its worker reclaimed (``None`` disables the timeout).
    max_attempts:
        Attempt budget *per ladder rung*; across the whole ladder a task is
        tried at most ``max_attempts * len(ladder)`` times.
    backoff_base, backoff_factor, backoff_max:
        Exponential backoff before retry *n* sleeps
        ``min(backoff_max, backoff_base * backoff_factor**n)`` seconds,
        scaled by deterministic jitter.
    backoff_jitter:
        Fraction (0..1) of the delay that jitter may remove.  The jitter is
        a hash of ``(seed, task index, attempt)`` — reproducible, yet
        de-synchronised across tasks.
    seed:
        Jitter seed; same seed, same delays.
    retry_errors:
        Retry ordinary worker exceptions too.  Off by default: the engine's
        workers are deterministic, so an exception would simply recur.
    degrade_after:
        Hard failures (crash/timeout) on a rung before the task is demoted
        to the next rung of ``ladder``.
    ladder:
        The backends a task may fall through, in order.  Execution starts at
        the caller's backend and only moves toward ``sequential``.
    validate_result:
        Optional predicate; a result it rejects counts as a ``corrupt``
        attempt and is retried.  Runs in the orchestrating process.
    fault_plan:
        Deterministic fault injection for chaos tests
        (:mod:`repro.engine.faults`); ``None`` in production.
    """

    task_timeout: float | None = None
    max_attempts: int = 3
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 2.0
    backoff_jitter: float = 0.25
    seed: int = 0
    retry_errors: bool = False
    degrade_after: int = 2
    ladder: tuple[str, ...] = BACKENDS
    validate_result: Callable[[Any], bool] | None = None
    fault_plan: FaultPlan | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts!r}"
            )
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise ConfigurationError(
                f"task_timeout must be positive or None, got {self.task_timeout!r}"
            )
        if self.degrade_after < 1:
            raise ConfigurationError(
                f"degrade_after must be >= 1, got {self.degrade_after!r}"
            )
        if self.backoff_base < 0 or self.backoff_factor < 1 or self.backoff_max < 0:
            raise ConfigurationError(
                "backoff_base/backoff_max must be >= 0 and backoff_factor >= 1"
            )
        if not 0 <= self.backoff_jitter <= 1:
            raise ConfigurationError(
                f"backoff_jitter must be within [0, 1], got {self.backoff_jitter!r}"
            )
        unknown = [rung for rung in self.ladder if rung not in BACKENDS]
        if unknown or not self.ladder:
            raise ConfigurationError(
                f"ladder must be a non-empty subset of {BACKENDS}, got {self.ladder!r}"
            )

    def backoff_delay(self, task_index: int, attempt: int) -> float:
        """Deterministic backoff before retry ``attempt`` of ``task_index``."""
        raw = min(self.backoff_max, self.backoff_base * self.backoff_factor**attempt)
        if raw <= 0:
            return 0.0
        digest = hashlib.blake2s(
            f"{self.seed}:{task_index}:{attempt}".encode(), digest_size=8
        ).digest()
        fraction = int.from_bytes(digest, "big") / 2**64
        return raw * (1.0 - self.backoff_jitter * fraction)

    def rungs_from(self, backend: str) -> tuple[str, ...]:
        """The effective ladder when execution starts on ``backend``."""
        if backend not in BACKENDS:
            raise ConfigurationError(
                f"unknown backend {backend!r}; expected one of {BACKENDS}"
            )
        position = BACKENDS.index(backend)
        return (backend,) + tuple(
            rung for rung in BACKENDS[position + 1 :] if rung in self.ladder
        )


#: The policy the pool applies when the caller does not hand one over.
DEFAULT_POLICY = ExecutionPolicy()


# -- run reporting -----------------------------------------------------------
@dataclass
class TaskAttempt:
    """One attempt of one task: where it ran and how it ended."""

    attempt: int  # 0-based ordinal across all backends
    backend: str
    outcome: str  # "ok" | "error" | "timeout" | "crash" | "corrupt"
    duration_seconds: float
    error: str = ""
    #: ``repr`` of the ``__cause__``/``__context__`` chain, outermost first.
    error_chain: tuple[str, ...] = ()

    def to_dict(self) -> dict[str, Any]:
        return {
            "attempt": self.attempt,
            "backend": self.backend,
            "outcome": self.outcome,
            "duration_seconds": self.duration_seconds,
            "error": self.error,
            "error_chain": list(self.error_chain),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "TaskAttempt":
        return cls(
            attempt=int(data["attempt"]),
            backend=str(data["backend"]),
            outcome=str(data["outcome"]),
            duration_seconds=float(data["duration_seconds"]),
            error=str(data.get("error", "")),
            error_chain=tuple(data.get("error_chain", ())),
        )


@dataclass
class TaskReport:
    """Everything one task went through on its way to a result."""

    index: int
    attempts: list[TaskAttempt] = field(default_factory=list)
    #: Times the task was resubmitted without being charged an attempt
    #: (its executor died while the task was merely queued or in flight).
    replays: int = 0
    final_backend: str = ""
    completed: bool = False
    #: How the durable checkpoint store saw this task: ``""`` (no store),
    #: ``"hit"`` (served from disk), ``"miss"`` (computed and persisted) or
    #: ``"corrupt"`` (a damaged cell was detected and recomputed).
    checkpoint: str = ""

    @property
    def retries(self) -> int:
        return max(0, len(self.attempts) - 1)

    @property
    def outcomes(self) -> list[str]:
        return [attempt.outcome for attempt in self.attempts]

    def to_dict(self) -> dict[str, Any]:
        return {
            "index": self.index,
            "attempts": [attempt.to_dict() for attempt in self.attempts],
            "replays": self.replays,
            "final_backend": self.final_backend,
            "completed": self.completed,
            "checkpoint": self.checkpoint,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "TaskReport":
        return cls(
            index=int(data["index"]),
            attempts=[
                TaskAttempt.from_dict(attempt)
                for attempt in data.get("attempts", ())
            ],
            replays=int(data.get("replays", 0)),
            final_backend=str(data.get("final_backend", "")),
            completed=bool(data.get("completed", False)),
            checkpoint=str(data.get("checkpoint", "")),
        )


@dataclass
class RunReport:
    """The structured account of one resilient fan-out."""

    tasks: list[TaskReport] = field(default_factory=list)
    backend: str = ""  # the backend the run started on
    respawns: int = 0
    degradations: int = 0
    wall_seconds: float = 0.0
    #: Structured warnings, e.g. checkpoint cells that were found damaged
    #: (torn/truncated/bit-rotted) and recomputed instead of served.
    warnings: list[str] = field(default_factory=list)

    def task(self, index: int) -> TaskReport:
        for task in self.tasks:
            if task.index == index:
                return task
        raise ConfigurationError(f"no task {index} in this report")

    @property
    def total_attempts(self) -> int:
        return sum(len(task.attempts) for task in self.tasks)

    @property
    def total_retries(self) -> int:
        return sum(task.retries for task in self.tasks)

    @property
    def faulted_tasks(self) -> list[int]:
        """Indices that needed more than one attempt (or a replay)."""
        return [
            task.index
            for task in self.tasks
            if task.retries or task.replays or not task.completed
        ]

    def checkpoint_counts(self) -> dict[str, int]:
        """Checkpoint statuses across tasks: hits, misses, corrupt-recomputes."""
        counts = {"hit": 0, "miss": 0, "corrupt": 0}
        for task in self.tasks:
            if task.checkpoint in counts:
                counts[task.checkpoint] += 1
        return counts

    def summary(self) -> dict[str, Any]:
        return {
            "tasks": len(self.tasks),
            "backend": self.backend,
            "total_attempts": self.total_attempts,
            "total_retries": self.total_retries,
            "replays": sum(task.replays for task in self.tasks),
            "respawns": self.respawns,
            "degradations": self.degradations,
            "faulted_tasks": self.faulted_tasks,
            "final_backends": sorted(
                {task.final_backend for task in self.tasks if task.final_backend}
            ),
            "wall_seconds": self.wall_seconds,
            "checkpoints": self.checkpoint_counts(),
            "warnings": len(self.warnings),
        }

    def to_dict(self) -> dict[str, Any]:
        return {
            "tasks": [task.to_dict() for task in self.tasks],
            "backend": self.backend,
            "respawns": self.respawns,
            "degradations": self.degradations,
            "wall_seconds": self.wall_seconds,
            "warnings": list(self.warnings),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "RunReport":
        return cls(
            tasks=[TaskReport.from_dict(task) for task in data.get("tasks", ())],
            backend=str(data.get("backend", "")),
            respawns=int(data.get("respawns", 0)),
            degradations=int(data.get("degradations", 0)),
            wall_seconds=float(data.get("wall_seconds", 0.0)),
            warnings=[str(warning) for warning in data.get("warnings", ())],
        )

    def to_json(self, *, indent: int | None = None) -> str:
        """Serialize losslessly; ``from_json`` reconstructs an equal report."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "RunReport":
        return cls.from_dict(json.loads(text))


# -- backend controls --------------------------------------------------------
class ProcessControl(Protocol):
    """What the engine needs from a process pool: submission and rebirth."""

    def submit(self, fn: Callable[..., Any], *args: Any) -> "Future[Any]":
        """Submit one call to the pool's current executor."""

    def respawn(self, reason: str) -> Callable[[Any], Any] | None:
        """Tear the executor down (reclaiming crashed/hung workers), respawn
        it lazily, and return a task remapper that swaps re-exported
        shared-memory manifests into unfinished task payloads (or ``None``
        when nothing went stale)."""


class _ThreadControl:
    """Thread-rung control: an abandonable single-use thread pool.

    A hung thread cannot be killed, so ``respawn`` abandons the executor
    (non-blocking shutdown) and lazily builds a fresh one; the leaked thread
    finishes or idles harmlessly.
    """

    def __init__(self, max_workers: int) -> None:
        self._max_workers = max_workers
        self._executor: ThreadPoolExecutor | None = None

    def submit(self, fn: Callable[..., Any], *args: Any) -> "Future[Any]":
        if self._executor is None:
            self._executor = ThreadPoolExecutor(max_workers=self._max_workers)
        return self._executor.submit(fn, *args)

    def respawn(self, reason: str) -> Callable[[Any], Any] | None:
        executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=False, cancel_futures=True)
        return None

    def close(self) -> None:
        executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=False, cancel_futures=True)


# -- task state --------------------------------------------------------------
@dataclass
class _TaskState:
    index: int
    task: Any
    report: TaskReport
    rung: int = 0  # index into the effective ladder
    rung_attempts: int = 0
    hard_failures: int = 0  # crash/timeout count on the current rung
    total_attempts: int = 0
    done: bool = False
    result: Any = None
    last_error: BaseException | None = None

    @property
    def last_outcome(self) -> str:
        return self.report.attempts[-1].outcome if self.report.attempts else ""


def _error_chain(error: BaseException) -> tuple[str, ...]:
    chain: list[str] = []
    current: BaseException | None = error
    while current is not None and len(chain) < 8:
        chain.append(repr(current))
        current = current.__cause__ or current.__context__
    return tuple(chain)


def _sleep_backoff(policy: ExecutionPolicy, task_index: int, attempt: int) -> None:
    """The one sanctioned backoff sleep (see REP007): policy-bounded and
    deterministically jittered."""
    delay = policy.backoff_delay(task_index, attempt)
    if delay > 0:
        time.sleep(delay)


def _translate_pickling_error(error: BaseException) -> None:
    """Raise the engine's typed error for task/result pickling failures.

    Unpicklable payloads surface as ``PicklingError``, ``TypeError``
    ("cannot pickle ...") or ``AttributeError`` ("Can't pickle local object
    ..."), depending on the offending object; a worker's own ``TypeError``
    must pass through untouched.
    """
    if not isinstance(error, (pickle.PicklingError, TypeError, AttributeError)):
        return
    if isinstance(error, pickle.PicklingError) or "pickle" in str(error).lower():
        raise ConfigurationError(
            f"mode='process' could not pickle a task or result ({error}); "
            f"ship shared datasets via WorkerPool.share() and keep task "
            f"payloads to plain picklable values"
        ) from error


def _record(
    state: _TaskState,
    backend: str,
    outcome: str,
    started: float,
    error: BaseException | None,
) -> None:
    state.report.attempts.append(
        TaskAttempt(
            attempt=state.total_attempts,
            backend=backend,
            outcome=outcome,
            duration_seconds=time.perf_counter() - started,
            error=repr(error) if error is not None else "",
            error_chain=_error_chain(error) if error is not None else (),
        )
    )
    state.total_attempts += 1
    state.rung_attempts += 1
    state.last_error = error
    if outcome in HARD_OUTCOMES:
        state.hard_failures += 1
    if outcome == "ok":
        state.done = True
        state.report.completed = True
        state.report.final_backend = backend


def _task_error(state: _TaskState, backend: str, detail: str) -> TaskError:
    return TaskError(
        f"task {state.index} failed on the {backend} backend after "
        f"{state.total_attempts} attempt(s) ({detail}); outcomes: "
        f"{state.report.outcomes}",
        task_index=state.index,
        attempts=state.total_attempts,
        backend=backend,
    )


def _call_arguments(
    worker: Callable[[Any], Any], state: _TaskState, policy: ExecutionPolicy
) -> tuple[Callable[..., Any], tuple[Any, ...]]:
    """The (callable, args) actually submitted for this attempt: the bare
    worker on the no-fault path, the fault wrapper under a plan."""
    if policy.fault_plan is None:
        return worker, (state.task,)
    return faulted_call, (
        worker,
        state.task,
        state.index,
        state.total_attempts,
        policy.fault_plan,
    )


def _accept(
    state: _TaskState,
    value: Any,
    policy: ExecutionPolicy,
    backend: str,
    started: float,
) -> None:
    """Classify a returned value: store it, or charge a ``corrupt`` attempt."""
    corrupt = isinstance(value, Corrupted) or (
        policy.validate_result is not None and not policy.validate_result(value)
    )
    if corrupt:
        _record(state, backend, "corrupt", started, None)
        return
    state.result = value
    _record(state, backend, "ok", started, None)


def _settle(
    state: _TaskState,
    policy: ExecutionPolicy,
    backend: str,
    has_next_rung: bool,
    report: RunReport,
) -> None:
    """Decide a failed task's fate after an attempt: retry, demote or raise."""
    hard = state.last_outcome in HARD_OUTCOMES
    exhausted = state.rung_attempts >= policy.max_attempts
    if hard and has_next_rung and (state.hard_failures >= policy.degrade_after or exhausted):
        state.rung += 1
        state.rung_attempts = 0
        state.hard_failures = 0
        report.degradations += 1
        return
    if exhausted:
        raise _task_error(
            state, backend, f"attempt budget exhausted ({state.last_outcome})"
        ) from state.last_error


# -- the engine --------------------------------------------------------------
def execute_tasks(
    tasks: Sequence[Any],
    worker: Callable[[Any], Any],
    policy: ExecutionPolicy,
    *,
    backend: str = "sequential",
    process_control: ProcessControl | None = None,
    max_workers: int | None = None,
    report: RunReport | None = None,
) -> list[Any]:
    """Run ``worker`` over ``tasks`` under ``policy``, preserving order.

    ``backend`` is the rung execution starts on; tasks that repeatedly kill
    their workers fall down the policy's ladder toward ``sequential``.
    Process execution needs a ``process_control`` (the pool's respawn hook).
    When ``report`` is given it is filled in place — the caller keeps it.
    """
    if backend == "process" and process_control is None:
        raise ConfigurationError(
            "process execution needs a process_control (a WorkerPool)"
        )
    run_report = report if report is not None else RunReport()
    if not run_report.backend:
        run_report.backend = backend
    started_run = time.perf_counter()
    states = [
        _TaskState(index=index, task=task, report=TaskReport(index=index))
        for index, task in enumerate(tasks)
    ]
    run_report.tasks.extend(state.report for state in states)
    rungs = policy.rungs_from(backend)
    try:
        for rung_index, rung in enumerate(rungs):
            rung_states = [
                state
                for state in states
                if not state.done and state.rung == rung_index
            ]
            if not rung_states:
                continue
            has_next = rung_index + 1 < len(rungs)
            if rung == "sequential":
                _run_sequential_rung(
                    rung_states, worker, policy, run_report, has_next
                )
            elif rung == "thread":
                control = _ThreadControl(
                    max_workers=max_workers or len(rung_states)
                )
                try:
                    _run_pooled_rung(
                        rung_states, worker, policy, control, run_report,
                        "thread", rung_index, has_next,
                    )
                finally:
                    control.close()
            else:
                if process_control is None:  # pragma: no cover - guarded above
                    raise ConfigurationError("process rung without a pool")
                _run_pooled_rung(
                    rung_states, worker, policy, process_control, run_report,
                    "process", rung_index, has_next,
                )
    finally:
        run_report.wall_seconds += time.perf_counter() - started_run
    return [state.result for state in states]


def _run_pooled_rung(
    rung_states: list[_TaskState],
    worker: Callable[[Any], Any],
    policy: ExecutionPolicy,
    control: ProcessControl,
    report: RunReport,
    backend: str,
    rung_index: int,
    has_next_rung: bool,
) -> None:
    """Drive one executor-backed rung to completion (or demotion).

    A state demoted by :func:`_settle` leaves ``pending`` on the next
    refresh (its ``rung`` no longer matches ``rung_index``) and is picked up
    by the caller's next ladder iteration.
    """

    def remaining() -> list[_TaskState]:
        return [
            state
            for state in rung_states
            if not state.done and state.rung == rung_index
        ]

    pending = remaining()
    while pending:
        futures = _submit_round(pending, worker, policy, control, report)
        interrupted = False
        for position, (state, future) in enumerate(futures):
            if state.done:
                continue
            started = time.perf_counter()
            try:
                value = future.result(timeout=policy.task_timeout)
            except BrokenProcessPool as error:
                _record(state, backend, "crash", started, error)
                _interrupt_round(
                    "worker process died", futures[position + 1 :], control, report
                )
                interrupted = True
            except FutureTimeoutError as error:
                future.cancel()
                _record(state, backend, "timeout", started, error)
                _interrupt_round(
                    "task timed out; reclaiming its worker",
                    futures[position + 1 :],
                    control,
                    report,
                )
                interrupted = True
            except ConfigurationError:
                _cancel_all(futures)
                raise
            except Exception as error:  # noqa: BLE001 - classified below
                _translate_pickling_error(error)
                _record(state, backend, "error", started, error)
                if not policy.retry_errors:
                    _cancel_all(futures)
                    raise _task_error(state, backend, "worker raised") from error
            else:
                _accept(state, value, policy, backend, started)
            if not state.done:
                _settle(state, policy, backend, has_next_rung, report)
            if interrupted:
                break
        pending = remaining()


def _submit_round(
    pending: list[_TaskState],
    worker: Callable[[Any], Any],
    policy: ExecutionPolicy,
    control: ProcessControl,
    report: RunReport,
) -> list[tuple[_TaskState, "Future[Any]"]]:
    """Submit every pending task once, backing off retries deterministically.

    A pool that is already broken at submission time is respawned and the
    round retried; the loop is bounded because a second breakage without any
    intervening submission means the respawn itself cannot produce a working
    pool, which surfaces as the final ``BrokenProcessPool``.
    """
    for state in pending:
        if state.total_attempts:
            _sleep_backoff(policy, state.index, state.total_attempts - 1)
    futures: list[tuple[_TaskState, "Future[Any]"]] = []
    for round_attempt in (0, 1):
        try:
            for state in pending[len(futures) :]:
                fn, args = _call_arguments(worker, state, policy)
                futures.append((state, control.submit(fn, *args)))
            return futures
        except BrokenProcessPool:
            if round_attempt:
                raise
            for state, _future in futures:
                state.report.replays += 1
            futures.clear()
            report.respawns += 1
            remap = control.respawn("executor broken at submission")
            _apply_remap(remap, pending)
    return futures


def _interrupt_round(
    reason: str,
    rest: list[tuple[_TaskState, "Future[Any]"]],
    control: ProcessControl,
    report: RunReport,
) -> None:
    """Handle an executor loss mid-round: respawn it, remap stale manifests
    and book a replay (not an attempt) for every other in-flight task."""
    report.respawns += 1
    remap = control.respawn(reason)
    survivors = [state for state, _future in rest if not state.done]
    for state in survivors:
        state.report.replays += 1
    _apply_remap(remap, survivors)


def _cancel_all(futures: list[tuple[_TaskState, "Future[Any]"]]) -> None:
    for _state, future in futures:
        future.cancel()


def _apply_remap(
    remap: Callable[[Any], Any] | None, states: Sequence[_TaskState]
) -> None:
    if remap is None:
        return
    for state in states:
        state.task = remap(state.task)


def _run_sequential_rung(
    rung_states: list[_TaskState],
    worker: Callable[[Any], Any],
    policy: ExecutionPolicy,
    report: RunReport,
    has_next_rung: bool,
) -> None:
    """The ladder's floor: in-process execution with bounded retries.

    No timeout is enforced here — there is no worker left to reclaim — and a
    crash at this rung would be a crash of the orchestrator itself.
    """
    for state in rung_states:
        while not state.done:
            if state.total_attempts:
                _sleep_backoff(policy, state.index, state.total_attempts - 1)
            started = time.perf_counter()
            fn, args = _call_arguments(worker, state, policy)
            try:
                value = fn(*args)
            except ConfigurationError:
                raise
            except Exception as error:  # noqa: BLE001 - classified below
                _record(state, "sequential", "error", started, error)
                if not policy.retry_errors:
                    raise _task_error(
                        state, "sequential", "worker raised"
                    ) from error
            else:
                _accept(state, value, policy, "sequential", started)
            if not state.done:
                _settle(state, policy, "sequential", has_next_rung, report)
